//! [`TraceWriter`]: the recording side — a [`BoundaryTap`] that encodes
//! every observed transition into the `.jtrace` wire format.

use std::cell::RefCell;
use std::rc::Rc;

use minijni::{BoundaryTap, JniArg, JniError, JniRet, ManagedOutcome, UbOutcome, UbSituation};
use minijvm::{EnvToken, GcStats, JRef, JValue, Jvm, MethodId, RefKind, ThreadId};

use crate::format::{flags_to_byte, tag, CallStatus, Encoder};

/// Short label for a UB situation kind (the wire representation).
pub fn situation_kind(s: &UbSituation<'_>) -> &'static str {
    match s {
        UbSituation::RefFault { .. } => "ref-fault",
        UbSituation::PinFault { .. } => "pin-fault",
        UbSituation::BadEntityId { .. } => "bad-entity-id",
        UbSituation::TypeConfusion { .. } => "type-confusion",
        UbSituation::ExceptionPending { .. } => "exception-pending",
        UbSituation::CriticalViolation { .. } => "critical-violation",
        UbSituation::EnvMismatch { .. } => "env-mismatch",
        UbSituation::FinalFieldWrite { .. } => "final-field-write",
        UbSituation::NullArgument { .. } => "null-argument",
    }
}

/// The JNI function a UB situation arose in.
pub fn situation_func<'a>(s: &'a UbSituation<'a>) -> &'a str {
    match s {
        UbSituation::RefFault { func, .. }
        | UbSituation::PinFault { func, .. }
        | UbSituation::BadEntityId { func }
        | UbSituation::TypeConfusion { func, .. }
        | UbSituation::ExceptionPending { func }
        | UbSituation::CriticalViolation { func }
        | UbSituation::EnvMismatch { func }
        | UbSituation::FinalFieldWrite { func }
        | UbSituation::NullArgument { func, .. } => &func.name,
    }
}

fn status_of<T>(result: &Result<T, JniError>) -> CallStatus {
    match result {
        Ok(_) => CallStatus::Ok,
        Err(JniError::Exception) => CallStatus::Exception,
        Err(JniError::Death(_)) => CallStatus::Death,
        Err(JniError::Detected(_)) => CallStatus::Detected,
    }
}

/// A recording [`BoundaryTap`]: install on a [`minijni::Vm`] via
/// `set_tap`, run the program, then call [`TraceWriter::finish`] for the
/// trace bytes.
///
/// Install as `Rc<RefCell<TraceWriter>>` (see [`TraceWriter::shared`]) so
/// the harness keeps a handle to retrieve the trace after the run.
#[derive(Debug)]
pub struct TraceWriter {
    enc: Encoder,
}

impl Default for TraceWriter {
    fn default() -> Self {
        TraceWriter::new()
    }
}

impl TraceWriter {
    /// Creates an empty trace (header only).
    pub fn new() -> TraceWriter {
        TraceWriter {
            enc: Encoder::new(),
        }
    }

    /// Wraps a writer for installation as a tap while keeping a handle.
    pub fn shared() -> Rc<RefCell<TraceWriter>> {
        Rc::new(RefCell::new(TraceWriter::new()))
    }

    /// Appends a `key = value` annotation.
    pub fn meta(&mut self, key: &str, value: &str) {
        self.enc.istr(key);
        self.enc.istr(value);
        self.enc.end_record(tag::META);
    }

    /// Records every class past the first `baseline` registry entries, in
    /// definition order. Replaying these definitions in order reproduces
    /// the run's `ClassId`/`MethodId`/`FieldId` numbering exactly.
    pub fn def_classes(&mut self, jvm: &Jvm, baseline: usize) {
        let reg = jvm.registry();
        for id in reg.class_ids().skip(baseline) {
            let def = reg.class(id);
            self.enc.istr(def.name());
            let superclass = def
                .superclass()
                .map(|s| reg.class(s).name().to_string())
                .unwrap_or_default();
            self.enc.istr(&superclass);
            self.enc.byte(u8::from(def.is_interface()));
            self.enc.varint(def.fields().len() as u64);
            for &fid in def.fields() {
                let fi = reg.field(fid).expect("registry field");
                self.enc.istr(&fi.name);
                self.enc.istr(&fi.ty.descriptor());
                self.enc.byte(flags_to_byte(fi.flags));
            }
            self.enc.varint(def.methods().len() as u64);
            for &mid in def.methods() {
                let mi = reg.method(mid).expect("registry method");
                self.enc.istr(&mi.name);
                self.enc.istr(&mi.sig.descriptor());
                self.enc.byte(flags_to_byte(mi.flags));
                let kind = match mi.body {
                    minijvm::MethodBody::Native(_) => 0u8,
                    minijvm::MethodBody::Managed(_) => 1,
                    minijvm::MethodBody::Abstract => 2,
                };
                self.enc.byte(kind);
            }
            self.enc.end_record(tag::DEF_CLASS);
        }
    }

    /// Records a setup-spawned thread.
    pub fn spawn_thread(&mut self, thread: ThreadId) {
        self.enc.varint(u64::from(thread.0));
        self.enc.end_record(tag::SPAWN_THREAD);
    }

    /// Records a setup-time allocation (an entry-point argument): what to
    /// allocate at replay and the reference the original run obtained.
    /// Null and non-local references are skipped (entry args in this
    /// repo's harnesses are fresh locals).
    pub fn seed(&mut self, jvm: &Jvm, r: JRef) {
        if r.kind() != RefKind::Local {
            return;
        }
        let Ok(Some(oop)) = jvm.resolve_ignoring_thread(r) else {
            return;
        };
        self.enc.varint(u64::from(r.owner().0));
        if let Some(class) = jvm.class_of_mirror(oop) {
            self.enc.byte(2);
            let name = jvm.registry().class(class).name().to_string();
            self.enc.istr(&name);
        } else if let Some(text) = jvm.string_value(oop) {
            self.enc.byte(1);
            self.enc.istr(&text);
        } else {
            self.enc.byte(0);
            let name = jvm.registry().class(jvm.class_of(oop)).name().to_string();
            self.enc.istr(&name);
        }
        self.enc.jref(r);
        self.enc.end_record(tag::SEED_REF);
    }

    /// Records a bridged observability event (rendered text).
    pub fn obs_event(&mut self, thread: u16, text: &str) {
        self.enc.varint(u64::from(thread));
        self.enc.istr(text);
        self.enc.end_record(tag::OBS_EVENT);
    }

    /// Records a Python/C boundary crossing.
    pub fn py_call(&mut self, thread: u16, func: &str, ptrs: &[u64]) {
        self.enc.varint(u64::from(thread));
        self.enc.istr(func);
        self.enc.varint(ptrs.len() as u64);
        for &p in ptrs {
            self.enc.varint(p);
        }
        self.enc.end_record(tag::PY_CALL);
    }

    /// Seals the trace: appends the `End` record (count + FNV-1a checksum)
    /// and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.enc.finish()
    }
}

impl BoundaryTap for TraceWriter {
    fn jni_enter(
        &mut self,
        thread: ThreadId,
        presented: EnvToken,
        func: minijni::FuncId,
        args: &[JniArg],
    ) {
        self.enc.varint(u64::from(thread.0));
        self.enc.varint(u64::from(presented.0));
        self.enc.varint(u64::from(func.0));
        self.enc.varint(args.len() as u64);
        for a in args {
            self.enc.jarg(a);
        }
        self.enc.end_record(tag::JNI_ENTER);
    }

    fn jni_exit(
        &mut self,
        thread: ThreadId,
        func: minijni::FuncId,
        result: &Result<JniRet, JniError>,
    ) {
        self.enc.varint(u64::from(thread.0));
        self.enc.varint(u64::from(func.0));
        self.enc.byte(status_of(result).to_u8());
        self.enc.end_record(tag::JNI_EXIT);
    }

    fn native_enter(&mut self, thread: ThreadId, method: MethodId, args: &[JValue]) {
        self.enc.varint(u64::from(thread.0));
        self.enc.varint(method.index() as u64);
        self.enc.varint(args.len() as u64);
        for v in args {
            self.enc.jvalue(v);
        }
        self.enc.end_record(tag::NATIVE_ENTER);
    }

    fn native_exit(
        &mut self,
        thread: ThreadId,
        method: MethodId,
        result: &Result<JValue, JniError>,
    ) {
        self.enc.varint(u64::from(thread.0));
        self.enc.varint(method.index() as u64);
        let status = status_of(result);
        self.enc.byte(status.to_u8());
        if let Ok(v) = result {
            self.enc.jvalue(v);
        }
        self.enc.end_record(tag::NATIVE_EXIT);
    }

    fn managed_enter(&mut self, thread: ThreadId, method: MethodId, args: &[JValue]) {
        self.enc.varint(u64::from(thread.0));
        self.enc.varint(method.index() as u64);
        self.enc.varint(args.len() as u64);
        for v in args {
            self.enc.jvalue(v);
        }
        self.enc.end_record(tag::MANAGED_ENTER);
    }

    fn managed_exit(&mut self, thread: ThreadId, method: MethodId, outcome: &ManagedOutcome) {
        self.enc.varint(u64::from(thread.0));
        self.enc.varint(method.index() as u64);
        match outcome {
            ManagedOutcome::Return(v) => {
                self.enc.byte(0);
                self.enc.jvalue(v);
            }
            ManagedOutcome::Threw { class, message } => {
                self.enc.byte(1);
                self.enc.istr(class);
                self.enc.istr(message);
            }
            ManagedOutcome::Died => self.enc.byte(2),
            ManagedOutcome::Detected => self.enc.byte(3),
        }
        self.enc.end_record(tag::MANAGED_EXIT);
    }

    fn gc_point(&mut self, thread: ThreadId, stats: &GcStats) {
        self.enc.varint(u64::from(thread.0));
        self.enc.varint(stats.live as u64);
        self.enc.varint(stats.collected as u64);
        self.enc.varint(stats.weak_cleared as u64);
        self.enc.end_record(tag::GC_POINT);
    }

    fn vendor_ub(&mut self, thread: ThreadId, situation: &UbSituation<'_>, outcome: &UbOutcome) {
        self.enc.varint(u64::from(thread.0));
        let kind = situation_kind(situation);
        let func = situation_func(situation).to_string();
        self.enc.istr(kind);
        self.enc.istr(&func);
        match outcome {
            UbOutcome::Proceed => self.enc.byte(0),
            UbOutcome::Crash(msg) => {
                self.enc.byte(1);
                self.enc.istr(msg);
            }
            UbOutcome::Npe => self.enc.byte(2),
            UbOutcome::Deadlock(msg) => {
                self.enc.byte(3);
                self.enc.istr(msg);
            }
        }
        self.enc.end_record(tag::VENDOR_UB);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Decoder, TraceRecord};

    #[test]
    fn writer_round_trips_basic_records() {
        let mut w = TraceWriter::new();
        w.meta("program", "demo");
        w.spawn_thread(ThreadId(1));
        w.py_call(0, "PyList_Append", &[0x1000, 0x2000]);
        BoundaryTap::native_enter(&mut w, ThreadId(0), MethodId::forged(3), &[JValue::Int(7)]);
        BoundaryTap::native_exit(
            &mut w,
            ThreadId(0),
            MethodId::forged(3),
            &Ok(JValue::Long(-9)),
        );
        let bytes = w.finish();
        let mut dec = Decoder::new(&bytes).unwrap();
        let mut records = Vec::new();
        while let Some(r) = dec.next_record().unwrap() {
            records.push(r);
        }
        assert_eq!(
            records[0],
            TraceRecord::Meta {
                key: "program".into(),
                value: "demo".into()
            }
        );
        assert_eq!(records[1], TraceRecord::SpawnThread { thread: 1 });
        assert_eq!(
            records[2],
            TraceRecord::PyCall {
                thread: 0,
                func: "PyList_Append".into(),
                ptrs: vec![0x1000, 0x2000]
            }
        );
        assert_eq!(
            records[3],
            TraceRecord::NativeEnter {
                thread: 0,
                method: 3,
                args: vec![JValue::Int(7)]
            }
        );
        assert_eq!(
            records[4],
            TraceRecord::NativeExit {
                thread: 0,
                method: 3,
                status: CallStatus::Ok,
                ret: Some(JValue::Long(-9)),
            }
        );
    }

    #[test]
    fn identical_writes_are_byte_identical() {
        let write = || {
            let mut w = TraceWriter::new();
            w.meta("program", "twice");
            BoundaryTap::gc_point(
                &mut w,
                ThreadId(0),
                &GcStats {
                    live: 5,
                    collected: 2,
                    weak_cleared: 1,
                },
            );
            w.finish()
        };
        assert_eq!(write(), write());
    }
}
