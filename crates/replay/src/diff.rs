//! Differential verdict checking: replay one trace under N checker
//! configurations and diff the verdicts — the mechanism behind the
//! Table 1 matrix and Figure 9's three-way disagreement.

use crate::format::TraceError;
use crate::reader::Trace;
use crate::replay::{replay_trace, standard_configs, ReplayConfig, ReplayOutcome};

/// The result of replaying one trace under several configurations.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The recorded program's name.
    pub program: String,
    /// One outcome per configuration, in the order given.
    pub outcomes: Vec<ReplayOutcome>,
}

impl DiffReport {
    /// `true` when every configuration produced the same behaviour.
    pub fn agree(&self) -> bool {
        self.outcomes
            .windows(2)
            .all(|w| w[0].behavior == w[1].behavior)
    }

    /// The number of distinct behaviours observed.
    pub fn distinct_behaviors(&self) -> usize {
        let mut seen = Vec::new();
        for o in &self.outcomes {
            if !seen.contains(&o.behavior) {
                seen.push(o.behavior);
            }
        }
        seen.len()
    }

    /// Renders the verdict table as aligned text.
    pub fn render(&self) -> String {
        let width = self
            .outcomes
            .iter()
            .map(|o| o.label.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = format!("{}:\n", self.program);
        for o in &self.outcomes {
            out.push_str(&format!(
                "  {:<width$}  {}\n",
                o.label,
                o.verdict_signature(),
            ));
        }
        out.push_str(&format!(
            "  => {}\n",
            if self.agree() {
                "all configurations agree".to_string()
            } else {
                format!("{}-way disagreement", self.distinct_behaviors())
            }
        ));
        out
    }
}

/// Replays a parsed trace under the given configurations.
///
/// # Errors
///
/// As for [`replay_trace`].
pub fn diff_trace(trace: &Trace, configs: &[ReplayConfig]) -> Result<DiffReport, TraceError> {
    let mut outcomes = Vec::with_capacity(configs.len());
    for config in configs {
        outcomes.push(replay_trace(trace, config)?);
    }
    Ok(DiffReport {
        program: trace.program().to_string(),
        outcomes,
    })
}

/// Replays trace bytes under the five standard Table 1 configurations.
///
/// # Errors
///
/// As for [`Trace::parse`] and [`replay_trace`].
pub fn diff_standard(bytes: &[u8]) -> Result<DiffReport, TraceError> {
    let trace = Trace::parse(bytes)?;
    diff_trace(&trace, &standard_configs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{program_by_name, record_program};
    use jinn_microbench::Behavior;
    use jinn_vendors::Vendor;

    #[test]
    fn exception_state_reproduces_figure_9_disagreement() {
        // Figure 9 (Sec 6.3): the pending-exception microbenchmark makes
        // HotSpot -Xcheck warn, J9 -Xcheck abort the VM, and Jinn throw —
        // a three-way disagreement reproduced from the trace alone.
        let p = program_by_name("ExceptionState").expect("pitfall 1 scenario");
        let bytes = record_program(&p);
        let trace = crate::reader::Trace::parse(&bytes).unwrap();
        let report = diff_trace(
            &trace,
            &[
                ReplayConfig::Xcheck(Vendor::HotSpot),
                ReplayConfig::Xcheck(Vendor::J9),
                ReplayConfig::Jinn(Vendor::HotSpot),
            ],
        )
        .unwrap();
        assert_eq!(report.outcomes[0].behavior, Behavior::Warning, "{report:?}");
        assert_eq!(report.outcomes[1].behavior, Behavior::Error, "{report:?}");
        assert_eq!(
            report.outcomes[2].behavior,
            Behavior::JinnException,
            "{report:?}"
        );
        assert_eq!(report.distinct_behaviors(), 3);
        assert!(!report.agree());
        assert!(report.render().contains("3-way disagreement"));
    }
}
