//! [`Trace`]: a fully-decoded `.jtrace` file, split into its setup
//! section (metadata, classes, threads, seeds) and its event stream.

use std::collections::BTreeMap;

use crate::format::{ClassRec, Decoder, SeedRec, TraceError, TraceRecord, FORMAT_VERSION};

/// A decoded trace, validated end to end (checksum and record count).
#[derive(Debug, Clone)]
pub struct Trace {
    /// `key = value` annotations, in record order.
    pub meta: Vec<(String, String)>,
    /// Class definitions past the core baseline, in definition order.
    pub classes: Vec<ClassRec>,
    /// Threads spawned during setup, in spawn order.
    pub threads: Vec<u16>,
    /// Entry-argument allocations, in allocation order.
    pub seeds: Vec<SeedRec>,
    /// The boundary-event stream (everything after setup).
    pub events: Vec<TraceRecord>,
    /// Format version the trace was written with.
    pub version: u16,
}

impl Trace {
    /// Parses and validates a complete trace.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] on malformed, truncated, or corrupted input.
    pub fn parse(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut dec = Decoder::new(bytes)?;
        let version = dec.version();
        let mut trace = Trace {
            meta: Vec::new(),
            classes: Vec::new(),
            threads: Vec::new(),
            seeds: Vec::new(),
            events: Vec::new(),
            version,
        };
        while let Some(record) = dec.next_record()? {
            match record {
                TraceRecord::Meta { key, value } => trace.meta.push((key, value)),
                TraceRecord::DefClass(c) => trace.classes.push(c),
                TraceRecord::SpawnThread { thread } => trace.threads.push(thread),
                TraceRecord::Seed(s) => trace.seeds.push(s),
                other => trace.events.push(other),
            }
        }
        Ok(trace)
    }

    /// Looks up a metadata value by key (first match).
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The recorded program name (`program` metadata), or `"?"`.
    pub fn program(&self) -> &str {
        self.meta_value("program").unwrap_or("?")
    }

    /// Counts of each event kind, for `replay stats`.
    pub fn event_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for e in &self.events {
            let key = match e {
                TraceRecord::JniEnter { .. } => "jni-enter",
                TraceRecord::JniExit { .. } => "jni-exit",
                TraceRecord::NativeEnter { .. } => "native-enter",
                TraceRecord::NativeExit { .. } => "native-exit",
                TraceRecord::ManagedEnter { .. } => "managed-enter",
                TraceRecord::ManagedExit { .. } => "managed-exit",
                TraceRecord::GcPoint { .. } => "gc-point",
                TraceRecord::VendorUb { .. } => "vendor-ub",
                TraceRecord::ObsEvent { .. } => "obs-event",
                TraceRecord::PyCall { .. } => "py-call",
                TraceRecord::Meta { .. }
                | TraceRecord::DefClass(_)
                | TraceRecord::SpawnThread { .. }
                | TraceRecord::Seed(_) => "setup",
            };
            *counts.entry(key).or_default() += 1;
        }
        counts
    }

    /// The set of JNI functions the recorded program actually called —
    /// the trace-derived call-site manifest.
    pub fn called_functions(&self) -> std::collections::BTreeSet<String> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceRecord::JniEnter { func, .. } => {
                    Some(minijni::FuncId(*func).name().to_string())
                }
                _ => None,
            })
            .collect()
    }

    /// A human-readable multi-line summary, for the `stats` subcommand.
    pub fn summary(&self, byte_len: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "program: {} (format v{}, {} bytes)\n",
            self.program(),
            self.version,
            byte_len
        ));
        for (k, v) in &self.meta {
            if k != "program" {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        out.push_str(&format!(
            "setup: {} classes, {} spawned threads, {} seeds\n",
            self.classes.len(),
            self.threads.len(),
            self.seeds.len()
        ));
        out.push_str(&format!("events: {}\n", self.events.len()));
        for (kind, n) in self.event_counts() {
            out.push_str(&format!("  {kind:>14}: {n}\n"));
        }
        out
    }
}

/// Runs the static discharge pass over the eleven machines with the
/// trace's own call-site manifest ([`Trace::called_functions`]) — the
/// post-hoc audit of which machine transitions could have been compiled
/// out for this exact recording. The serving daemon surfaces this per
/// session; `replay stats --json` prints it per file.
pub fn trace_discharge(trace: &Trace) -> jinn_core::DischargeReport {
    let manifest = jinn_core::WorkloadManifest::new(trace.program(), trace.called_functions());
    jinn_core::discharge(&jinn_spec::machines(), &manifest)
}

/// Asserts that the reader and a trace agree on the format version —
/// the CI drift check calls this against every corpus file.
///
/// # Errors
///
/// [`TraceError::UnsupportedVersion`] when the stored version differs
/// from [`FORMAT_VERSION`]; header errors as for parsing.
pub fn check_version(bytes: &[u8]) -> Result<u16, TraceError> {
    let dec = Decoder::new(bytes)?;
    let v = dec.version();
    if v != FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion(v));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use minijni::BoundaryTap;
    use minijvm::{JValue, MethodId, ThreadId};

    #[test]
    fn parse_splits_setup_from_events() {
        let mut w = TraceWriter::new();
        w.meta("program", "split");
        w.meta("leaks", "false");
        w.spawn_thread(ThreadId(1));
        BoundaryTap::native_enter(&mut w, ThreadId(0), MethodId::forged(0), &[]);
        BoundaryTap::native_exit(&mut w, ThreadId(0), MethodId::forged(0), &Ok(JValue::Void));
        let bytes = w.finish();
        let t = Trace::parse(&bytes).unwrap();
        assert_eq!(t.program(), "split");
        assert_eq!(t.meta_value("leaks"), Some("false"));
        assert_eq!(t.threads, vec![1]);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.event_counts()["native-enter"], 1);
        assert!(t.summary(bytes.len()).contains("program: split"));
        assert_eq!(check_version(&bytes).unwrap(), FORMAT_VERSION);
    }
}
