//! # jinn-replay
//!
//! Deterministic trace record/replay with differential verdict checking.
//!
//! The Jinn workflow (Sections 5 and 6 of the paper) judges the same
//! buggy program under many configurations: two vendor VMs, their
//! `-Xcheck:jni` modes, and the synthesized Jinn checker — the Table 1
//! matrix. Running each configuration live is slow and, worse, each run
//! is a *different* execution. This crate makes the comparison
//! apples-to-apples by splitting it in two:
//!
//! 1. **Record** ([`record_program`]): run the program once on a
//!    maximally-permissive VM ([`RecordVendor`], which proceeds through
//!    every undefined-behaviour situation) with a [`TraceWriter`] tapped
//!    into the Interpose seam. Every JNI and Python/C boundary crossing —
//!    full arguments, results, GC points, vendor-UB outcomes — lands in a
//!    compact self-describing binary trace (see `TRACE_FORMAT.md`).
//! 2. **Replay** ([`replay_trace`]): rebuild the entity world from the
//!    trace's setup section and re-feed the recorded calls through any
//!    checker stack — a bare vendor, `-Xcheck:jni`, or Jinn under any
//!    [`jinn_core::JinnConfig`] ablation. Because every ID in the
//!    substrate is allocation-order-deterministic, replaying the
//!    definitions and calls in recorded order reproduces the execution
//!    exactly; only the *verdict* varies with the configuration.
//!
//! The differential harness ([`diff_trace`]) replays one trace under N
//! configurations and diffs the verdicts, reproducing Figure 9's
//! three-way disagreement (HotSpot warns, J9 aborts, Jinn throws) from a
//! single recorded execution.
//!
//! Traces are timestamp-free and the encoder interns strings in first-use
//! order, so recording the same program twice yields byte-identical
//! files — the property the golden corpus under `tests/corpus/` depends
//! on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod diff;
pub mod format;
pub mod reader;
pub mod record;
pub mod replay;
pub mod stream;
pub mod writer;

pub use bridge::{append_obs_events, PyTraceWriter};
pub use diff::{diff_standard, diff_trace, DiffReport};
pub use format::{
    fnv1a, fnv1a_with, BodyKind, CallStatus, ClassRec, FieldRec, ManagedRec, MethodRec, SeedKind,
    SeedRec, StreamDecoder, TraceError, TraceRecord, UbRec, FORMAT_VERSION, MAGIC,
};
pub use reader::{check_version, trace_discharge, Trace};
pub use record::{
    case_studies, microbench_programs, program_by_name, program_names, record_program, Program,
    RecordVendor,
};
pub use replay::{
    replay_bytes, replay_trace, replay_trace_observed, run_live_replay, standard_configs,
    EventFeed, LiveFeeder, ReplayConfig, ReplayOutcome,
};
pub use stream::{
    decode_stream, encode_frame, encode_ingest, stream_preamble, verify_seal_declaration, Frame,
    FrameDecoder, FrameError, SealMismatch, MAX_CONTROL_STRING, MAX_FRAME_PAYLOAD,
    MAX_MANIFEST_FUNCTIONS, STREAM_MAGIC, STREAM_VERSION,
};
pub use writer::TraceWriter;
