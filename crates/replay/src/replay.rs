//! The replay driver: rebuild the recorded world, re-feed the recorded
//! boundary calls through a freshly-configured JNI stack, and classify
//! the outcome with the microbenchmark harness's Table 1 vocabulary.
//!
//! Determinism rests on three invariants of the substrate:
//!
//! 1. every id (`ClassId`, `MethodId`, `FieldId`, local-reference
//!    slot/generation, heap positions) is assigned in allocation order,
//!    so re-executing the recorded definitions/allocations in order
//!    reproduces the original ids exactly;
//! 2. native bodies only interact with the VM through the JNI, so a body
//!    can be *replaced* by a script that re-issues its recorded JNI
//!    calls verbatim;
//! 3. undefined-behaviour outcomes and checker verdicts are functions of
//!    (vendor model, checker config, boundary history) — replaying one
//!    maximal trace under a different configuration re-decides them,
//!    which is exactly the differential question of Table 1.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use jinn_core::JinnConfig;
use jinn_microbench::Behavior;
use jinn_vendors::Vendor;
use minijni::{FuncId, JniEnv};
use minijni::{JniArg, JniError, ReportAction, RunOutcome, Session, Vm};
use minijvm::{EnvToken, FieldType, JValue, MethodId, ThreadId};

use crate::format::{BodyKind, CallStatus, ManagedRec, SeedKind, TraceError, TraceRecord};
use crate::reader::Trace;

/// Which stack to replay a trace under — the rows of Table 1, plus
/// arbitrary Jinn ablations.
#[derive(Debug, Clone)]
pub enum ReplayConfig {
    /// Production vendor, no checker.
    Default(Vendor),
    /// The vendor's `-Xcheck:jni` implementation.
    Xcheck(Vendor),
    /// Jinn with all eleven machines.
    Jinn(Vendor),
    /// Jinn with a custom configuration (ablations, pedantic mode).
    JinnAblated(Vendor, JinnConfig),
}

impl ReplayConfig {
    /// The underlying vendor model.
    pub fn vendor(&self) -> Vendor {
        match self {
            ReplayConfig::Default(v)
            | ReplayConfig::Xcheck(v)
            | ReplayConfig::Jinn(v)
            | ReplayConfig::JinnAblated(v, _) => *v,
        }
    }

    /// Column label, matching the microbenchmark harness where possible.
    pub fn label(&self) -> String {
        match self {
            ReplayConfig::Default(v) => format!("{v}"),
            ReplayConfig::Xcheck(v) => format!("{v} -Xcheck:jni"),
            ReplayConfig::Jinn(v) => format!("Jinn on {v}"),
            ReplayConfig::JinnAblated(v, cfg) => {
                format!("Jinn on {v} (-{})", cfg.disabled_machines.join(",-"))
            }
        }
    }

    /// Parses a CLI-style label: `hotspot`, `j9`, `xcheck:hotspot`,
    /// `xcheck:j9`, `jinn`, `jinn:j9`.
    pub fn parse(s: &str) -> Option<ReplayConfig> {
        match s.to_ascii_lowercase().as_str() {
            "hotspot" | "default" | "default:hotspot" => {
                Some(ReplayConfig::Default(Vendor::HotSpot))
            }
            "j9" | "default:j9" => Some(ReplayConfig::Default(Vendor::J9)),
            "xcheck" | "xcheck:hotspot" => Some(ReplayConfig::Xcheck(Vendor::HotSpot)),
            "xcheck:j9" => Some(ReplayConfig::Xcheck(Vendor::J9)),
            "jinn" | "jinn:hotspot" => Some(ReplayConfig::Jinn(Vendor::HotSpot)),
            "jinn:j9" => Some(ReplayConfig::Jinn(Vendor::J9)),
            _ => None,
        }
    }
}

/// The five standard configurations of the evaluation (Table 1 columns).
pub fn standard_configs() -> Vec<ReplayConfig> {
    vec![
        ReplayConfig::Default(Vendor::HotSpot),
        ReplayConfig::Default(Vendor::J9),
        ReplayConfig::Xcheck(Vendor::HotSpot),
        ReplayConfig::Xcheck(Vendor::J9),
        ReplayConfig::Jinn(Vendor::HotSpot),
    ]
}

/// What replaying a trace under one configuration produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The configuration's label.
    pub label: String,
    /// Classified behaviour, Table 1 vocabulary.
    pub behavior: Behavior,
    /// Primary diagnosis message, if any tool produced one.
    pub message: Option<String>,
    /// The session log.
    pub log: Vec<String>,
    /// Recorded JNI calls re-issued.
    pub events_replayed: u64,
    /// Replay mismatches observed (unexpected seed ids, exhausted
    /// queues). Zero on a faithful trace; post-bug divergence under a
    /// *stricter* config than the recorder is normal and not counted.
    pub divergences: u64,
    /// Every checker violation surfaced during the run: the in-flight
    /// checker exception (if any) plus all shutdown-time reports, in
    /// detection order. The verdict store in `jinn-serve` indexes these
    /// individually; [`ReplayOutcome::behavior`] summarizes them.
    pub violations: Vec<minijni::Violation>,
}

impl ReplayOutcome {
    /// A compact verdict string for diffing: behaviour plus message.
    pub fn verdict_signature(&self) -> String {
        match &self.message {
            Some(m) => format!("{}: {m}", self.behavior),
            None => self.behavior.to_string(),
        }
    }
}

/// One recorded native-body activation: the JNI calls it issued, in
/// order, and how it finished.
#[derive(Debug, Clone, Default)]
struct NativeFrame {
    calls: Vec<CallRec>,
    ret: Option<JValue>,
}

/// One recorded `Call:C→Java` with the presented env token.
#[derive(Debug, Clone)]
struct CallRec {
    presented: u32,
    func: u16,
    args: Vec<JniArg>,
}

/// Mutable replay state shared with the scripted method bodies.
#[derive(Debug, Default)]
struct ReplayState {
    native_frames: HashMap<u32, VecDeque<NativeFrame>>,
    managed_outcomes: HashMap<u32, VecDeque<ManagedRec>>,
    events_replayed: u64,
    divergences: u64,
}

/// A top-level program entry observed in the trace.
#[derive(Debug, Clone)]
struct TopEntry {
    thread: u16,
    method: u32,
    args: Vec<JValue>,
}

enum Ctx {
    Native { method: u32, frame: NativeFrame },
    Managed,
    Jni,
}

/// Structural pass: fold the flat event stream into per-method FIFO
/// queues of scripted activations, plus the list of top-level entries.
fn build_queues(trace: &Trace) -> Result<(ReplayState, Vec<TopEntry>), TraceError> {
    let mut state = ReplayState::default();
    let mut tops = Vec::new();
    let mut stack: Vec<Ctx> = Vec::new();

    for event in &trace.events {
        match event {
            TraceRecord::NativeEnter {
                thread,
                method,
                args,
            } => {
                if stack.is_empty() {
                    tops.push(TopEntry {
                        thread: *thread,
                        method: *method,
                        args: args.clone(),
                    });
                }
                stack.push(Ctx::Native {
                    method: *method,
                    frame: NativeFrame::default(),
                });
            }
            TraceRecord::NativeExit {
                method,
                status,
                ret,
                ..
            } => {
                let Some(Ctx::Native {
                    method: m,
                    mut frame,
                }) = stack.pop()
                else {
                    return Err(TraceError::Corrupt("unbalanced NativeExit".into()));
                };
                if m != *method {
                    return Err(TraceError::Corrupt(format!(
                        "NativeExit method {method} does not match enter {m}"
                    )));
                }
                if *status == CallStatus::Ok {
                    frame.ret = *ret;
                }
                state.native_frames.entry(m).or_default().push_back(frame);
            }
            TraceRecord::JniEnter {
                presented,
                func,
                args,
                ..
            } => {
                let rec = CallRec {
                    presented: *presented,
                    func: *func,
                    args: args.clone(),
                };
                match stack
                    .iter_mut()
                    .rev()
                    .find(|c| matches!(c, Ctx::Native { .. }))
                {
                    Some(Ctx::Native { frame, .. }) => frame.calls.push(rec),
                    _ => {
                        return Err(TraceError::Corrupt(
                            "JniEnter outside any native body".into(),
                        ))
                    }
                }
                stack.push(Ctx::Jni);
            }
            TraceRecord::JniExit { .. } => {
                if !matches!(stack.pop(), Some(Ctx::Jni)) {
                    return Err(TraceError::Corrupt("unbalanced JniExit".into()));
                }
            }
            TraceRecord::ManagedEnter { .. } => stack.push(Ctx::Managed),
            TraceRecord::ManagedExit {
                method, outcome, ..
            } => {
                if !matches!(stack.pop(), Some(Ctx::Managed)) {
                    return Err(TraceError::Corrupt("unbalanced ManagedExit".into()));
                }
                state
                    .managed_outcomes
                    .entry(*method)
                    .or_default()
                    .push_back(outcome.clone());
            }
            // Substrate diagnostics: informative, not re-driven (the
            // replayed VM re-makes these decisions itself).
            TraceRecord::GcPoint { .. }
            | TraceRecord::VendorUb { .. }
            | TraceRecord::ObsEvent { .. }
            | TraceRecord::PyCall { .. } => {}
            TraceRecord::Meta { .. }
            | TraceRecord::DefClass(_)
            | TraceRecord::SpawnThread { .. }
            | TraceRecord::Seed(_) => {
                return Err(TraceError::Corrupt("setup record in event stream".into()))
            }
        }
    }
    Ok((state, tops))
}

fn make_native_body(state: Rc<RefCell<ReplayState>>, method: u32) -> minijni::NativeFn {
    Rc::new(move |env: &mut JniEnv<'_>, _args: &[JValue]| {
        let frame = state
            .borrow_mut()
            .native_frames
            .get_mut(&method)
            .and_then(VecDeque::pop_front);
        let Some(frame) = frame else {
            state.borrow_mut().divergences += 1;
            return Ok(JValue::Void);
        };
        let own = env.presented_env();
        for call in &frame.calls {
            env.set_presented_env(EnvToken(call.presented));
            let result = env.invoke(FuncId(call.func), call.args.clone());
            state.borrow_mut().events_replayed += 1;
            // Ok, or an exception now pending: keep issuing the recorded
            // calls — the recorded body did, and the driver's final
            // pending-exception check reproduces the Java-side rethrow
            // identically. Only death/detection stops the body.
            if let Err(e @ (JniError::Death(_) | JniError::Detected(_))) = result {
                env.set_presented_env(own);
                return Err(e);
            }
        }
        env.set_presented_env(own);
        Ok(frame.ret.unwrap_or(JValue::Void))
    })
}

fn make_managed_body(state: Rc<RefCell<ReplayState>>, method: u32) -> minijni::ManagedFn {
    Rc::new(move |env: &mut JniEnv<'_>, _args: &[JValue]| {
        let rec = state
            .borrow_mut()
            .managed_outcomes
            .get_mut(&method)
            .and_then(VecDeque::pop_front);
        match rec {
            Some(ManagedRec::Return(v)) => Ok(v),
            Some(ManagedRec::Threw { class, message }) => Err(env.java_throw(&class, &message)),
            Some(ManagedRec::Died | ManagedRec::Detected) | None => {
                state.borrow_mut().divergences += 1;
                Ok(JValue::Void)
            }
        }
    })
}

/// Rebuilds the recorded world inside `vm`: classes (in recorded
/// definition order, with scripted bodies), spawned threads, and seed
/// allocations. Returns the number of setup divergences.
fn rebuild_world(
    vm: &mut Vm,
    trace: &Trace,
    state: &Rc<RefCell<ReplayState>>,
) -> Result<u64, TraceError> {
    let native_state = Rc::clone(state);
    let managed_state = Rc::clone(state);
    rebuild_world_with(
        vm,
        trace,
        &mut move |m| make_native_body(Rc::clone(&native_state), m),
        &mut move |m| make_managed_body(Rc::clone(&managed_state), m),
    )
}

/// [`rebuild_world`] with caller-supplied scripted-body factories, so
/// the buffered driver (queues prebuilt from the whole trace) and the
/// live driver (bodies that block on an [`EventFeed`]) share one world
/// reconstruction — identical ids, identical divergence accounting.
fn rebuild_world_with(
    vm: &mut Vm,
    trace: &Trace,
    native_body: &mut dyn FnMut(u32) -> minijni::NativeFn,
    managed_body: &mut dyn FnMut(u32) -> minijni::ManagedFn,
) -> Result<u64, TraceError> {
    let mut divergences = 0u64;
    let mut next_method = vm.jvm().registry().method_count() as u32;

    for class in &trace.classes {
        if class.name.starts_with('[') {
            // Array classes replay through the registry's array-class
            // cache; the name is the element descriptor wrapped in `[`.
            let ty = FieldType::parse(&class.name).map_err(|e| {
                TraceError::Corrupt(format!("bad array class `{}`: {e}", class.name))
            })?;
            let FieldType::Array(elem) = ty else {
                return Err(TraceError::Corrupt(format!(
                    "class `{}` is not an array descriptor",
                    class.name
                )));
            };
            vm.jvm_mut().registry_mut().array_class(*elem);
            continue;
        }
        // Register scripted bodies first (code indices), then define the
        // class so method ids come out in recorded order.
        let mut bodies = Vec::with_capacity(class.methods.len());
        for m in &class.methods {
            let body = match m.kind {
                BodyKind::Native => {
                    let idx = vm.add_native_code(native_body(next_method));
                    minijvm::MethodBody::Native(Some(idx))
                }
                BodyKind::Managed => {
                    let idx = vm.add_managed_code(managed_body(next_method));
                    minijvm::MethodBody::Managed(idx)
                }
                BodyKind::Abstract => minijvm::MethodBody::Abstract,
            };
            next_method += 1;
            bodies.push(body);
        }
        let mut builder = vm.jvm_mut().registry_mut().define(&class.name);
        if class.is_interface {
            builder = builder.as_interface();
        } else if let Some(sup) = &class.superclass {
            builder = builder.superclass(sup.clone());
        }
        for f in &class.fields {
            builder = builder.field(&f.name, &f.desc, f.flags);
        }
        for (m, body) in class.methods.iter().zip(bodies) {
            builder = builder.method(&m.name, &m.desc, m.flags, body);
        }
        builder
            .build()
            .map_err(|e| TraceError::Corrupt(format!("class `{}`: {e}", class.name)))?;
    }

    if let Some(period) = trace.meta_value("gc_period").and_then(|v| v.parse().ok()) {
        vm.jvm_mut().set_auto_gc_period(Some(period));
    }

    for &expected in &trace.threads {
        let got = vm.jvm_mut().spawn_thread();
        if got.0 != expected {
            divergences += 1;
        }
    }

    for seed in &trace.seeds {
        let oop = match &seed.kind {
            SeedKind::Text(s) => vm.jvm_mut().alloc_string(s),
            SeedKind::Object(class) => {
                let Some(id) = vm.jvm().find_class(class) else {
                    divergences += 1;
                    continue;
                };
                vm.jvm_mut().alloc_object(id)
            }
            SeedKind::Mirror(class) => {
                let Some(id) = vm.jvm().find_class(class) else {
                    divergences += 1;
                    continue;
                };
                vm.jvm_mut().mirror_oop(id)
            }
        };
        let r = vm.jvm_mut().new_local(ThreadId(seed.thread), oop);
        if r != seed.expected {
            divergences += 1;
        }
    }
    Ok(divergences)
}

/// Replays a parsed trace under one configuration.
///
/// # Errors
///
/// [`TraceError::Corrupt`] when the event stream is structurally invalid
/// (unbalanced enters/exits, setup records mid-stream, unknown classes).
pub fn replay_trace(trace: &Trace, config: &ReplayConfig) -> Result<ReplayOutcome, TraceError> {
    replay_trace_inner(trace, config, None)
}

/// Like [`replay_trace`], but with a live [`jinn_obs::Recorder`] wired
/// into the replayed session *before* the checker stack attaches, so
/// FSM-transition and verdict events from the re-judged execution land
/// in the caller's ring. This is the `jinn-serve` seam: each ingest
/// worker hands the daemon's per-session recorder in and reads event
/// summaries back out of it.
///
/// # Errors
///
/// As for [`replay_trace`].
pub fn replay_trace_observed(
    trace: &Trace,
    config: &ReplayConfig,
    recorder: &jinn_obs::Recorder,
) -> Result<ReplayOutcome, TraceError> {
    replay_trace_inner(trace, config, Some(recorder))
}

fn replay_trace_inner(
    trace: &Trace,
    config: &ReplayConfig,
    recorder: Option<&jinn_obs::Recorder>,
) -> Result<ReplayOutcome, TraceError> {
    let (state, tops) = build_queues(trace)?;
    let state = Rc::new(RefCell::new(state));

    let mut vm = config.vendor().vm();
    let setup_divergences = rebuild_world(&mut vm, trace, &state)?;
    state.borrow_mut().divergences += setup_divergences;

    let mut session = Session::new(vm);
    if let Some(rec) = recorder {
        session.set_recorder(rec.clone());
    }
    match config {
        ReplayConfig::Default(_) => {}
        ReplayConfig::Xcheck(v) => session.attach(v.xcheck()),
        ReplayConfig::Jinn(_) => {
            jinn_core::install(&mut session);
        }
        ReplayConfig::JinnAblated(_, cfg) => {
            jinn_core::install_with_config(&mut session, cfg.clone());
        }
    }

    let name = trace.program().to_string();
    let mut outcomes = Vec::new();
    for top in &tops {
        let thread = ThreadId(top.thread);
        {
            let mut env = session.env(thread);
            env.enter_java_frame(format!("{name}.main({name}.java:5)"));
        }
        // The recorded entry arguments: replayed seeds reproduce the same
        // JRefs, so re-presenting them re-registers identical callee
        // locals and keeps slot allocation in lock-step with the trace.
        let outcome =
            session.run_native(thread, MethodId::forged(u64::from(top.method)), &top.args);
        {
            let mut env = session.env(thread);
            env.exit_java_frame();
        }
        let fatal = !matches!(outcome, RunOutcome::Completed(_));
        outcomes.push(outcome);
        if fatal {
            break;
        }
    }
    let shutdown_reports = session.shutdown();
    let log = session.take_log();
    drop(session);

    let (behavior, message, violations) =
        classify_outcomes(trace, config, &outcomes, &shutdown_reports, &log)?;

    let state = state.borrow();
    Ok(ReplayOutcome {
        label: config.label(),
        behavior,
        message,
        log,
        events_replayed: state.events_replayed,
        divergences: state.divergences,
        violations,
    })
}

/// Classification — the microbenchmark harness's algorithm, verbatim,
/// so replayed verdicts are comparable with live Table 1 cells. Shared
/// by the buffered driver and the live (streaming) driver: the two must
/// map identical run outcomes to identical verdicts.
fn classify_outcomes(
    trace: &Trace,
    config: &ReplayConfig,
    outcomes: &[RunOutcome],
    shutdown_reports: &[minijni::Report],
    log: &[String],
) -> Result<(Behavior, Option<String>, Vec<minijni::Violation>), TraceError> {
    let leaks = trace.meta_value("leaks") == Some("true");
    let is_default = matches!(config, ReplayConfig::Default(_));
    let mut behavior = Behavior::Running;
    let mut message = None;

    let final_outcome = outcomes
        .last()
        .ok_or_else(|| TraceError::Corrupt("trace has no top-level entries".into()))?;
    let jinn_shutdown = shutdown_reports
        .iter()
        .find(|r| r.action == ReportAction::ThrowException);
    let warn_shutdown = shutdown_reports
        .iter()
        .find(|r| r.action == ReportAction::Warn);
    let has_warnings = log.iter().any(|l| l.contains("WARNING")) || warn_shutdown.is_some();

    match final_outcome {
        RunOutcome::CheckerException(v) => {
            behavior = Behavior::JinnException;
            message = Some(v.message.clone());
        }
        RunOutcome::UncaughtException(desc) if desc.contains("JNIAssertionFailure") => {
            behavior = Behavior::JinnException;
            message = Some(desc.clone());
        }
        RunOutcome::Died(d) if d.kind == minijvm::DeathKind::FatalError => {
            behavior = Behavior::Error;
            message = Some(d.message.clone());
        }
        _ => {}
    }
    if behavior == Behavior::Running {
        if let Some(r) = jinn_shutdown {
            behavior = Behavior::JinnException;
            message = Some(r.violation.message.clone());
        } else if has_warnings {
            behavior = Behavior::Warning;
            message = log
                .iter()
                .find(|l| l.contains("WARNING"))
                .cloned()
                .or_else(|| warn_shutdown.map(|r| r.violation.message.clone()));
        } else {
            match final_outcome {
                RunOutcome::UncaughtException(desc) if desc.contains("NullPointerException") => {
                    behavior = Behavior::Npe;
                    message = Some(desc.clone());
                }
                RunOutcome::Died(d) if d.kind == minijvm::DeathKind::Deadlock => {
                    behavior = Behavior::Deadlock;
                    message = Some(d.message.clone());
                }
                RunOutcome::Died(d) if d.kind == minijvm::DeathKind::Crash => {
                    behavior = Behavior::Crash;
                    message = Some(d.message.clone());
                }
                _ => {
                    behavior = if leaks && is_default {
                        Behavior::Leak
                    } else {
                        Behavior::Running
                    };
                }
            }
        }
    }

    let mut violations: Vec<minijni::Violation> = outcomes
        .iter()
        .filter_map(|o| match o {
            RunOutcome::CheckerException(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    violations.extend(shutdown_reports.iter().map(|r| r.violation.clone()));
    Ok((behavior, message, violations))
}

/// Replays raw trace bytes under one configuration (parse + replay).
///
/// # Errors
///
/// As for [`Trace::parse`] and [`replay_trace`].
pub fn replay_bytes(bytes: &[u8], config: &ReplayConfig) -> Result<ReplayOutcome, TraceError> {
    let trace = Trace::parse(bytes)?;
    replay_trace(&trace, config)
}

// ---------------------------------------------------------------------------
// Live (streaming) replay
// ---------------------------------------------------------------------------
//
// The buffered driver above folds a *complete* event stream into
// per-method activation queues, then executes. The live driver runs the
// same execution against queues that are still being filled: an ingest
// thread pushes decoded records into an [`EventFeed`] through a
// [`LiveFeeder`], while [`run_live_replay`] — on its own thread, because
// `Session`/`Vm` hold `Rc` bodies and never cross threads — blocks on
// the feed exactly where the buffered driver would have popped a
// prebuilt queue.
//
// **Parity discipline.** The buffered fold queues a native activation at
// its `NativeExit` (exit order); the live fold must publish it at
// `NativeEnter` so its calls can execute while the trace is still
// arriving (enter order). The two orders agree exactly when activations
// of the same method never overlap — so the feeder treats same-method
// overlap as a structural anomaly, along with every condition the
// buffered fold rejects and the one it silently tolerates (an activation
// still open at end-of-trace, whose calls the buffered driver would
// *not* have executed). An anomalous feed is poisoned; the caller
// discards the speculative outcome and re-judges from its retained
// records through the buffered path, which is the soundness valve that
// makes the speculative execution unobservable.

/// A recorded call pulled from a live activation, or the activation's
/// recorded return once its calls are exhausted.
enum LiveCall {
    /// The next recorded JNI call to re-issue.
    Call(CallRec),
    /// Activation closed (its `NativeExit` arrived) with this return
    /// value; `None` also stands in for a poisoned/unclosed activation,
    /// mirroring the buffered driver's missing-frame `Void`.
    Done(Option<JValue>),
}

/// One native activation being streamed: calls appended by the feeder,
/// consumed by the scripted body, closed by `NativeExit`.
#[derive(Debug, Default)]
struct LiveActivation {
    calls: VecDeque<CallRec>,
    closed: bool,
    ret: Option<JValue>,
}

#[derive(Debug, Default)]
struct FeedInner {
    /// Arena of activations; ids index into it and are never reused.
    activations: Vec<LiveActivation>,
    /// Per-method activation ids in enter order (see parity discipline).
    ready: HashMap<u32, VecDeque<usize>>,
    /// Per-method managed outcomes in exit order — the same order the
    /// buffered fold queues them in.
    managed: HashMap<u32, VecDeque<ManagedRec>>,
    /// Top-level entries in stream order.
    tops: VecDeque<TopEntry>,
    /// No more records will arrive (seal, abort, or poison).
    finished: bool,
}

/// The producer/consumer channel between an ingest thread and a live
/// replay executor. All waits are on one condvar: the feed carries a
/// handful of small queues, and the executor blocks only when it has
/// genuinely caught up with the stream.
#[derive(Debug, Default)]
pub struct EventFeed {
    inner: Mutex<FeedInner>,
    cond: Condvar,
}

/// Feed state is plain owned data; a panicking holder cannot break its
/// structural invariants, so poison recovery is safe (and required — a
/// panicked executor must not wedge the ingest thread).
fn feed_lock(feed: &EventFeed) -> MutexGuard<'_, FeedInner> {
    feed.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

impl EventFeed {
    /// An empty feed.
    pub fn new() -> EventFeed {
        EventFeed::default()
    }

    /// Marks the feed finished: every blocked consumer drains (missing
    /// data reads as closed/absent, which the live bodies translate to
    /// the buffered driver's divergence behaviour). Used for seal,
    /// abort, and poison alike — after an anomaly the executor's result
    /// is discarded, so draining fast is all that matters.
    pub fn finish(&self) {
        feed_lock(self).finished = true;
        self.cond.notify_all();
    }

    fn pop_top(&self) -> Option<TopEntry> {
        let mut inner = feed_lock(self);
        loop {
            if let Some(top) = inner.tops.pop_front() {
                return Some(top);
            }
            if inner.finished {
                return None;
            }
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn pop_activation(&self, method: u32) -> Option<usize> {
        let mut inner = feed_lock(self);
        loop {
            if let Some(id) = inner.ready.get_mut(&method).and_then(VecDeque::pop_front) {
                return Some(id);
            }
            if inner.finished {
                return None;
            }
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn next_call(&self, id: usize) -> LiveCall {
        let mut inner = feed_lock(self);
        loop {
            let act = &mut inner.activations[id];
            if let Some(call) = act.calls.pop_front() {
                return LiveCall::Call(call);
            }
            if act.closed {
                return LiveCall::Done(act.ret.take());
            }
            if inner.finished {
                return LiveCall::Done(None);
            }
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn pop_managed(&self, method: u32) -> Option<ManagedRec> {
        let mut inner = feed_lock(self);
        loop {
            if let Some(rec) = inner.managed.get_mut(&method).and_then(VecDeque::pop_front) {
                return Some(rec);
            }
            if inner.finished {
                return None;
            }
            inner = self
                .cond
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The producer-side fold: pushes decoded event records into an
/// [`EventFeed`], maintaining the same context stack as the buffered
/// fold ([`build_queues`]) and rejecting — as anomalies — both its
/// structural errors and the streaming-specific overlap cases the
/// buffered path would order differently.
pub struct LiveFeeder {
    feed: Arc<EventFeed>,
    stack: Vec<FoldCtx>,
    /// Open activations per method, for overlap detection.
    open_native: HashMap<u32, u32>,
}

enum FoldCtx {
    Native { method: u32, id: usize },
    Managed,
    Jni,
}

impl LiveFeeder {
    /// A feeder for `feed`.
    pub fn new(feed: Arc<EventFeed>) -> LiveFeeder {
        LiveFeeder {
            feed,
            stack: Vec::new(),
            open_native: HashMap::new(),
        }
    }

    /// Folds one event record into the feed.
    ///
    /// # Errors
    ///
    /// A human-readable anomaly reason when the record cannot be
    /// streamed soundly — structurally invalid, a setup record after
    /// events began, or same-method overlapping activations. The caller
    /// must stop feeding, poison the feed ([`EventFeed::finish`]), and
    /// fall back to a buffered re-judge of its retained records.
    pub fn push(&mut self, event: &TraceRecord) -> Result<(), String> {
        match event {
            TraceRecord::NativeEnter {
                thread,
                method,
                args,
            } => {
                let open = self.open_native.entry(*method).or_insert(0);
                if *open > 0 {
                    // Enter-order consumption would diverge from the
                    // buffered fold's exit-order queues.
                    return Err(format!("overlapping native activations of method {method}"));
                }
                *open += 1;
                let mut inner = feed_lock(&self.feed);
                let id = inner.activations.len();
                inner.activations.push(LiveActivation::default());
                if self.stack.is_empty() {
                    inner.tops.push_back(TopEntry {
                        thread: *thread,
                        method: *method,
                        args: args.clone(),
                    });
                }
                inner.ready.entry(*method).or_default().push_back(id);
                drop(inner);
                self.feed.cond.notify_all();
                self.stack.push(FoldCtx::Native {
                    method: *method,
                    id,
                });
            }
            TraceRecord::NativeExit {
                method,
                status,
                ret,
                ..
            } => {
                let Some(FoldCtx::Native { method: m, id }) = self.stack.pop() else {
                    return Err("unbalanced NativeExit".into());
                };
                if m != *method {
                    return Err(format!(
                        "NativeExit method {method} does not match enter {m}"
                    ));
                }
                *self.open_native.entry(m).or_insert(1) -= 1;
                let mut inner = feed_lock(&self.feed);
                let act = &mut inner.activations[id];
                if *status == CallStatus::Ok {
                    act.ret = *ret;
                }
                act.closed = true;
                drop(inner);
                self.feed.cond.notify_all();
            }
            TraceRecord::JniEnter {
                presented,
                func,
                args,
                ..
            } => {
                let target = self
                    .stack
                    .iter()
                    .rev()
                    .find_map(|c| match c {
                        FoldCtx::Native { id, .. } => Some(*id),
                        _ => None,
                    })
                    .ok_or_else(|| "JniEnter outside any native body".to_string())?;
                let mut inner = feed_lock(&self.feed);
                inner.activations[target].calls.push_back(CallRec {
                    presented: *presented,
                    func: *func,
                    args: args.clone(),
                });
                drop(inner);
                self.feed.cond.notify_all();
                self.stack.push(FoldCtx::Jni);
            }
            TraceRecord::JniExit { .. } => {
                if !matches!(self.stack.pop(), Some(FoldCtx::Jni)) {
                    return Err("unbalanced JniExit".into());
                }
            }
            TraceRecord::ManagedEnter { .. } => self.stack.push(FoldCtx::Managed),
            TraceRecord::ManagedExit {
                method, outcome, ..
            } => {
                if !matches!(self.stack.pop(), Some(FoldCtx::Managed)) {
                    return Err("unbalanced ManagedExit".into());
                }
                let mut inner = feed_lock(&self.feed);
                inner
                    .managed
                    .entry(*method)
                    .or_default()
                    .push_back(outcome.clone());
                drop(inner);
                self.feed.cond.notify_all();
            }
            // Substrate diagnostics: informative, not re-driven.
            TraceRecord::GcPoint { .. }
            | TraceRecord::VendorUb { .. }
            | TraceRecord::ObsEvent { .. }
            | TraceRecord::PyCall { .. } => {}
            TraceRecord::Meta { .. }
            | TraceRecord::DefClass(_)
            | TraceRecord::SpawnThread { .. }
            | TraceRecord::Seed(_) => return Err("setup record in event stream".into()),
        }
        Ok(())
    }

    /// Closes the producer side at end-of-trace and marks the feed
    /// finished regardless of the outcome.
    ///
    /// # Errors
    ///
    /// An anomaly reason when an activation is still open — the buffered
    /// fold silently drops such an activation's calls, but the live
    /// executor may already have run them, so the caller must fall back.
    pub fn finish(&mut self) -> Result<(), String> {
        self.feed.finish();
        if self.stack.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} activation(s) still open at end of trace",
                self.stack.len()
            ))
        }
    }
}

/// Executor-local replay counters (the live analogue of the counter half
/// of [`ReplayState`], kept `Rc` so per-call updates stay lock-free).
#[derive(Debug, Default)]
struct LiveCounters {
    events_replayed: u64,
    divergences: u64,
}

fn make_live_native_body(
    feed: Arc<EventFeed>,
    counters: Rc<RefCell<LiveCounters>>,
    method: u32,
) -> minijni::NativeFn {
    Rc::new(move |env: &mut JniEnv<'_>, _args: &[JValue]| {
        let Some(id) = feed.pop_activation(method) else {
            counters.borrow_mut().divergences += 1;
            return Ok(JValue::Void);
        };
        let own = env.presented_env();
        loop {
            match feed.next_call(id) {
                LiveCall::Call(call) => {
                    env.set_presented_env(EnvToken(call.presented));
                    let result = env.invoke(FuncId(call.func), call.args);
                    counters.borrow_mut().events_replayed += 1;
                    // Same rule as the buffered body: exceptions keep the
                    // recorded calls coming, only death/detection stops.
                    if let Err(e @ (JniError::Death(_) | JniError::Detected(_))) = result {
                        env.set_presented_env(own);
                        return Err(e);
                    }
                }
                LiveCall::Done(ret) => {
                    env.set_presented_env(own);
                    return Ok(ret.unwrap_or(JValue::Void));
                }
            }
        }
    })
}

fn make_live_managed_body(
    feed: Arc<EventFeed>,
    counters: Rc<RefCell<LiveCounters>>,
    method: u32,
) -> minijni::ManagedFn {
    Rc::new(
        move |env: &mut JniEnv<'_>, _args: &[JValue]| match feed.pop_managed(method) {
            Some(ManagedRec::Return(v)) => Ok(v),
            Some(ManagedRec::Threw { class, message }) => Err(env.java_throw(&class, &message)),
            Some(ManagedRec::Died | ManagedRec::Detected) | None => {
                counters.borrow_mut().divergences += 1;
                Ok(JValue::Void)
            }
        },
    )
}

/// Drives a replay against a still-arriving event stream: the world is
/// rebuilt from `setup` (the trace's setup section, with no events),
/// scripted bodies block on `feed`, and the run completes once the feed
/// finishes and the recorded entries have been executed. Call on a
/// dedicated thread — the replay substrate is single-threaded by design.
///
/// The returned outcome is **speculative** until the caller has verified
/// the stream's seal declaration and checked that no feeder anomaly
/// occurred; on either failure it must be discarded unobserved.
///
/// # Errors
///
/// As for [`replay_trace`] over the equivalent complete trace.
pub fn run_live_replay(
    setup: &Trace,
    config: &ReplayConfig,
    recorder: Option<&jinn_obs::Recorder>,
    feed: &Arc<EventFeed>,
) -> Result<ReplayOutcome, TraceError> {
    let counters = Rc::new(RefCell::new(LiveCounters::default()));

    let mut vm = config.vendor().vm();
    let native_feed = Arc::clone(feed);
    let native_counters = Rc::clone(&counters);
    let managed_feed = Arc::clone(feed);
    let managed_counters = Rc::clone(&counters);
    let setup_divergences = rebuild_world_with(
        &mut vm,
        setup,
        &mut move |m| {
            make_live_native_body(Arc::clone(&native_feed), Rc::clone(&native_counters), m)
        },
        &mut move |m| {
            make_live_managed_body(Arc::clone(&managed_feed), Rc::clone(&managed_counters), m)
        },
    )?;
    counters.borrow_mut().divergences += setup_divergences;

    let mut session = Session::new(vm);
    if let Some(rec) = recorder {
        session.set_recorder(rec.clone());
    }
    match config {
        ReplayConfig::Default(_) => {}
        ReplayConfig::Xcheck(v) => session.attach(v.xcheck()),
        ReplayConfig::Jinn(_) => {
            jinn_core::install(&mut session);
        }
        ReplayConfig::JinnAblated(_, cfg) => {
            jinn_core::install_with_config(&mut session, cfg.clone());
        }
    }

    let name = setup.program().to_string();
    let mut outcomes = Vec::new();
    while let Some(top) = feed.pop_top() {
        let thread = ThreadId(top.thread);
        {
            let mut env = session.env(thread);
            env.enter_java_frame(format!("{name}.main({name}.java:5)"));
        }
        let outcome =
            session.run_native(thread, MethodId::forged(u64::from(top.method)), &top.args);
        {
            let mut env = session.env(thread);
            env.exit_java_frame();
        }
        let fatal = !matches!(outcome, RunOutcome::Completed(_));
        outcomes.push(outcome);
        if fatal {
            // The buffered driver stops at the first fatal entry; later
            // tops stay unconsumed and are dropped with the feed.
            break;
        }
    }
    let shutdown_reports = session.shutdown();
    let log = session.take_log();
    drop(session);

    let (behavior, message, violations) =
        classify_outcomes(setup, config, &outcomes, &shutdown_reports, &log)?;

    let counters = counters.borrow();
    Ok(ReplayOutcome {
        label: config.label(),
        behavior,
        message,
        log,
        events_replayed: counters.events_replayed,
        divergences: counters.divergences,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{program_by_name, record_program};

    #[test]
    fn figure1_replay_matrix_matches_live_runs() {
        let p = program_by_name("LocalRefDangling").expect("figure 1 scenario");
        let bytes = record_program(&p);
        let trace = Trace::parse(&bytes).unwrap();

        let jinn = replay_trace(&trace, &ReplayConfig::Jinn(Vendor::HotSpot)).unwrap();
        assert_eq!(jinn.behavior, Behavior::JinnException, "{jinn:?}");
        assert_eq!(jinn.divergences, 0, "{jinn:?}");
        assert!(jinn.events_replayed > 0);

        let hs = replay_trace(&trace, &ReplayConfig::Default(Vendor::HotSpot)).unwrap();
        assert_eq!(hs.behavior, Behavior::Crash, "{hs:?}");
    }

    /// Streams a parsed trace's events through a [`LiveFeeder`] on this
    /// thread while the executor runs on another, then returns the live
    /// outcome.
    fn live_replay(trace: &Trace, config: &ReplayConfig) -> Result<ReplayOutcome, TraceError> {
        let feed = Arc::new(EventFeed::new());
        let mut setup = trace.clone();
        setup.events = Vec::new();
        let exec_feed = Arc::clone(&feed);
        let exec_config = config.clone();
        let executor =
            std::thread::spawn(move || run_live_replay(&setup, &exec_config, None, &exec_feed));
        let mut feeder = LiveFeeder::new(Arc::clone(&feed));
        for event in &trace.events {
            feeder.push(event).expect("corpus traces stream cleanly");
        }
        feeder.finish().expect("corpus traces balance");
        executor.join().expect("executor must not panic")
    }

    #[test]
    fn live_replay_matches_buffered_verdicts() {
        let configs = [
            ReplayConfig::Jinn(Vendor::HotSpot),
            ReplayConfig::Default(Vendor::HotSpot),
            ReplayConfig::Xcheck(Vendor::J9),
        ];
        for name in ["LocalRefDangling", "GlobalDangling", "MonitorLeak"] {
            let p = program_by_name(name).expect("known scenario");
            let bytes = record_program(&p);
            let trace = Trace::parse(&bytes).unwrap();
            for config in &configs {
                let buffered = replay_trace(&trace, config).unwrap();
                let live = live_replay(&trace, config).unwrap();
                assert_eq!(
                    live.verdict_signature(),
                    buffered.verdict_signature(),
                    "{name} under {}",
                    config.label()
                );
                assert_eq!(live.behavior, buffered.behavior);
                assert_eq!(live.events_replayed, buffered.events_replayed, "{name}");
                assert_eq!(live.divergences, buffered.divergences, "{name}");
                assert_eq!(live.violations.len(), buffered.violations.len(), "{name}");
                assert_eq!(live.log, buffered.log, "{name}");
            }
        }
    }

    #[test]
    fn live_feeder_rejects_what_streaming_cannot_order() {
        // Same-method overlap: enter-order consumption would diverge
        // from the buffered fold's exit-order queues.
        let feed = Arc::new(EventFeed::new());
        let mut feeder = LiveFeeder::new(Arc::clone(&feed));
        let enter = TraceRecord::NativeEnter {
            thread: 0,
            method: 7,
            args: vec![],
        };
        feeder.push(&enter).unwrap();
        let err = feeder.push(&enter).unwrap_err();
        assert!(err.contains("overlapping"), "{err}");

        // An activation still open at end-of-trace: the buffered driver
        // would have dropped its calls, the live executor may have run
        // them.
        let feed = Arc::new(EventFeed::new());
        let mut feeder = LiveFeeder::new(Arc::clone(&feed));
        feeder
            .push(&TraceRecord::NativeEnter {
                thread: 0,
                method: 1,
                args: vec![],
            })
            .unwrap();
        let err = feeder.finish().unwrap_err();
        assert!(err.contains("still open"), "{err}");

        // Setup records mid-stream poison the fold like the buffered one.
        let feed = Arc::new(EventFeed::new());
        let mut feeder = LiveFeeder::new(feed);
        let err = feeder
            .push(&TraceRecord::SpawnThread { thread: 3 })
            .unwrap_err();
        assert!(err.contains("setup record"), "{err}");
    }

    #[test]
    fn ablated_jinn_misses_the_machine_it_lost() {
        let p = program_by_name("LocalRefDangling").unwrap();
        let bytes = record_program(&p);
        let trace = Trace::parse(&bytes).unwrap();
        let cfg = JinnConfig {
            disabled_machines: vec!["local-reference"],
            ..Default::default()
        };
        let ablated =
            replay_trace(&trace, &ReplayConfig::JinnAblated(Vendor::HotSpot, cfg)).unwrap();
        assert_ne!(
            ablated.behavior,
            Behavior::JinnException,
            "without the local-reference machine the dangling ref goes undiagnosed: {ablated:?}"
        );
    }
}
