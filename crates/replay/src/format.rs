//! The `.jtrace` wire format: varint-encoded records with an inline
//! string intern table.
//!
//! A trace is `MAGIC` (`JTRC`) + a little-endian `u16` format version,
//! followed by records. Each record is a one-byte tag and a
//! tag-determined payload built from three primitives:
//!
//! * **varint** — LEB128, 7 bits per byte, low bits first;
//! * **zigzag** — signed values mapped through `(n << 1) ^ (n >> 63)`
//!   then varint-encoded;
//! * **interned string** — a varint intern-table id. Ids are assigned
//!   densely in first-use order; the defining `Intern` record is emitted
//!   inline *before* the record that first references it, so a streaming
//!   reader needs no lookahead.
//!
//! The format is deliberately **timestamp-free**: recording the same
//! deterministic run twice produces byte-identical traces, which is what
//! makes the determinism property test and the CI drift check possible.
//! The final `End` record carries the record count and an FNV-1a
//! checksum of every preceding byte.
//!
//! Versioning rule: any change to record layouts or tag numbering bumps
//! [`FORMAT_VERSION`]; readers reject versions they don't know (there is
//! no in-band negotiation — a trace is an artifact, not a protocol).

use std::collections::HashMap;
use std::fmt;

use minijni::JniArg;
use minijvm::{
    FieldId, JRef, JValue, MemberFlags, MethodId, PinId, PrimArray, RefKind, ThreadId, Visibility,
};

/// File magic: the first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"JTRC";

/// Current format version. Bump on any wire-layout change.
pub const FORMAT_VERSION: u16 = 1;

/// Record tags.
pub(crate) mod tag {
    pub const INTERN: u8 = 0x01;
    pub const META: u8 = 0x02;
    pub const DEF_CLASS: u8 = 0x03;
    pub const SPAWN_THREAD: u8 = 0x04;
    pub const SEED_REF: u8 = 0x05;
    pub const JNI_ENTER: u8 = 0x06;
    pub const JNI_EXIT: u8 = 0x07;
    pub const NATIVE_ENTER: u8 = 0x08;
    pub const NATIVE_EXIT: u8 = 0x09;
    pub const MANAGED_ENTER: u8 = 0x0A;
    pub const MANAGED_EXIT: u8 = 0x0B;
    pub const GC_POINT: u8 = 0x0C;
    pub const VENDOR_UB: u8 = 0x0D;
    pub const OBS_EVENT: u8 = 0x0E;
    pub const PY_CALL: u8 = 0x0F;
    pub const END: u8 = 0xFF;
}

/// FNV-1a offset basis — the hash of the empty byte string.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with(FNV_OFFSET, bytes)
}

/// Resumes a 64-bit FNV-1a from a previously computed running hash.
/// `fnv1a_with(fnv1a(a), b) == fnv1a(a ++ b)` — the identity that lets a
/// streaming reader checksum a trace it never holds in one allocation.
pub fn fnv1a_with(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The byte stream ended mid-record (no `End` record seen).
    Truncated,
    /// The first four bytes are not `JTRC`.
    BadMagic,
    /// The trace was written by a format version this reader rejects.
    UnsupportedVersion(u16),
    /// A structurally invalid payload (bad tag, dangling intern id…).
    Corrupt(String),
    /// The `End` record's checksum does not match the bytes.
    ChecksumMismatch {
        /// Checksum stored in the trace.
        expected: u64,
        /// Checksum computed from the bytes.
        actual: u64,
    },
    /// The `End` record's count does not match the records decoded.
    RecordCountMismatch {
        /// Count stored in the trace.
        expected: u64,
        /// Records actually decoded.
        actual: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated => f.write_str("trace truncated (no End record)"),
            TraceError::BadMagic => f.write_str("not a .jtrace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (reader speaks {FORMAT_VERSION})"
                )
            }
            TraceError::Corrupt(why) => write!(f, "corrupt trace: {why}"),
            TraceError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
                )
            }
            TraceError::RecordCountMismatch { expected, actual } => {
                write!(
                    f,
                    "record count mismatch: stored {expected}, decoded {actual}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

// ---------------------------------------------------------------------------
// Decoded records
// ---------------------------------------------------------------------------

/// How a boundary call finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStatus {
    /// Returned normally.
    Ok,
    /// Finished with a Java exception pending / propagating.
    Exception,
    /// The simulated process died.
    Death,
    /// A checker threw (never present in record-mode traces).
    Detected,
}

impl CallStatus {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            CallStatus::Ok => 0,
            CallStatus::Exception => 1,
            CallStatus::Death => 2,
            CallStatus::Detected => 3,
        }
    }

    pub(crate) fn from_u8(b: u8) -> Result<CallStatus, TraceError> {
        Ok(match b {
            0 => CallStatus::Ok,
            1 => CallStatus::Exception,
            2 => CallStatus::Death,
            3 => CallStatus::Detected,
            other => return Err(TraceError::Corrupt(format!("bad call status {other}"))),
        })
    }
}

/// What kind of body a recorded method has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyKind {
    /// A native (C) body — replayed from recorded frames.
    Native,
    /// A managed (Java) body — replayed from recorded outcomes.
    Managed,
    /// No body.
    Abstract,
}

/// A recorded method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRec {
    /// Method name.
    pub name: String,
    /// JVM descriptor, e.g. `(Ljava/lang/String;)V`.
    pub desc: String,
    /// Modifier flags.
    pub flags: MemberFlags,
    /// Body kind.
    pub kind: BodyKind,
}

/// A recorded field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldRec {
    /// Field name.
    pub name: String,
    /// JVM descriptor.
    pub desc: String,
    /// Modifier flags (`is_final` matters: pitfall 9).
    pub flags: MemberFlags,
}

/// A recorded class definition, in definition order past the core-class
/// baseline. Replaying definitions in this order reproduces every
/// `ClassId`/`MethodId`/`FieldId` of the original run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRec {
    /// Slashed class name.
    pub name: String,
    /// Superclass name (`None` only for array classes, whose hierarchy
    /// is implicit).
    pub superclass: Option<String>,
    /// Whether this is an interface.
    pub is_interface: bool,
    /// Fields in slot order.
    pub fields: Vec<FieldRec>,
    /// Methods in table order.
    pub methods: Vec<MethodRec>,
}

/// What a seed object is, classified at record time.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedKind {
    /// A plain instance of the named class.
    Object(String),
    /// A `java/lang/String` with the given text.
    Text(String),
    /// The `java/lang/Class` mirror of the named class.
    Mirror(String),
}

/// A pre-allocated argument object (the harness's `first_args`), to be
/// re-allocated at replay in recorded order so heap/handle ids line up.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRec {
    /// Owning thread of the local reference.
    pub thread: u16,
    /// What to allocate.
    pub kind: SeedKind,
    /// The reference the original run obtained — replay asserts equality.
    pub expected: JRef,
}

/// A replayable managed-body outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagedRec {
    /// Returned a value.
    Return(JValue),
    /// Threw: replay re-raises `class` with `message`.
    Threw {
        /// Slashed exception class name.
        class: String,
        /// Exception message.
        message: String,
    },
    /// Process death inside the body (not produced by record mode).
    Died,
    /// Checker throw inside the body (not produced by record mode).
    Detected,
}

/// A recorded vendor undefined-behaviour outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum UbRec {
    /// Kept running.
    Proceed,
    /// Crashed with a reason.
    Crash(String),
    /// Raised a `NullPointerException`.
    Npe,
    /// Hung with a reason.
    Deadlock(String),
}

/// One decoded trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A `key = value` annotation (program name, pitfall, gc period…).
    Meta {
        /// Key.
        key: String,
        /// Value.
        value: String,
    },
    /// A class definition (setup section).
    DefClass(ClassRec),
    /// A thread spawned during setup.
    SpawnThread {
        /// The id the spawn produced.
        thread: u16,
    },
    /// A setup-time allocation (entry-point argument).
    Seed(SeedRec),
    /// `Call:C→Java` with full arguments and the presented env token.
    JniEnter {
        /// Executing thread.
        thread: u16,
        /// The `JNIEnv*` token the C code presented.
        presented: u32,
        /// JNI function id (registry index).
        func: u16,
        /// Arguments.
        args: Vec<JniArg>,
    },
    /// `Return:Java→C`.
    JniExit {
        /// Executing thread.
        thread: u16,
        /// JNI function id.
        func: u16,
        /// How it finished.
        status: CallStatus,
    },
    /// `Call:Java→C` with the caller-view arguments.
    NativeEnter {
        /// Executing thread.
        thread: u16,
        /// Raw method id.
        method: u32,
        /// Caller-view arguments.
        args: Vec<JValue>,
    },
    /// `Return:C→Java`: the body's raw result, pre-translation.
    NativeExit {
        /// Executing thread.
        thread: u16,
        /// Raw method id.
        method: u32,
        /// How it finished.
        status: CallStatus,
        /// The returned value when `status` is [`CallStatus::Ok`].
        ret: Option<JValue>,
    },
    /// A managed body was entered (nested Java inside C).
    ManagedEnter {
        /// Executing thread.
        thread: u16,
        /// Raw method id.
        method: u32,
        /// Arguments.
        args: Vec<JValue>,
    },
    /// A managed body finished.
    ManagedExit {
        /// Executing thread.
        thread: u16,
        /// Raw method id.
        method: u32,
        /// How it finished.
        outcome: ManagedRec,
    },
    /// A garbage collection ran at a boundary safepoint.
    GcPoint {
        /// Thread whose crossing triggered the safepoint.
        thread: u16,
        /// Surviving objects.
        live: u64,
        /// Collected objects.
        collected: u64,
        /// Weak globals cleared.
        weak_cleared: u64,
    },
    /// The vendor model decided a UB situation.
    VendorUb {
        /// Executing thread.
        thread: u16,
        /// Situation kind (e.g. `ref-fault`).
        situation: String,
        /// The JNI function involved.
        func: String,
        /// The vendor's decision.
        outcome: UbRec,
    },
    /// A bridged observability event (text rendering).
    ObsEvent {
        /// Originating thread.
        thread: u16,
        /// Rendered event text.
        text: String,
    },
    /// A Python/C boundary crossing (from `minipy`'s interpose seam).
    PyCall {
        /// Python thread.
        thread: u16,
        /// C-API function name.
        func: String,
        /// Pointer arguments (simulated addresses).
        ptrs: Vec<u64>,
    },
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

fn varint_into(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn vis_to_bits(v: Visibility) -> u8 {
    match v {
        Visibility::Public => 0,
        Visibility::Protected => 1,
        Visibility::Package => 2,
        Visibility::Private => 3,
    }
}

fn vis_from_bits(b: u8) -> Visibility {
    match b {
        1 => Visibility::Protected,
        2 => Visibility::Package,
        3 => Visibility::Private,
        _ => Visibility::Public,
    }
}

pub(crate) fn flags_to_byte(flags: MemberFlags) -> u8 {
    u8::from(flags.is_static)
        | (u8::from(flags.is_final) << 1)
        | (vis_to_bits(flags.visibility) << 2)
}

pub(crate) fn flags_from_byte(b: u8) -> MemberFlags {
    MemberFlags {
        is_static: b & 1 != 0,
        is_final: b & 2 != 0,
        visibility: vis_from_bits((b >> 2) & 3),
    }
}

/// Low-level record encoder with inline interning. Records are staged in
/// a scratch buffer so an `Intern` definition triggered mid-record lands
/// *before* the record that references it.
#[derive(Debug, Default)]
pub(crate) struct Encoder {
    out: Vec<u8>,
    scratch: Vec<u8>,
    interns: HashMap<String, u64>,
    records: u64,
}

impl Encoder {
    pub(crate) fn new() -> Encoder {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        Encoder {
            out,
            scratch: Vec::new(),
            interns: HashMap::new(),
            records: 0,
        }
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.scratch.push(b);
    }

    pub(crate) fn varint(&mut self, v: u64) {
        varint_into(&mut self.scratch, v);
    }

    pub(crate) fn signed(&mut self, v: i64) {
        varint_into(&mut self.scratch, zigzag(v));
    }

    /// Writes the intern id of `s`, emitting the defining `Intern` record
    /// first when the string is new.
    pub(crate) fn istr(&mut self, s: &str) {
        let next = self.interns.len() as u64;
        let id = match self.interns.get(s) {
            Some(&id) => id,
            None => {
                self.interns.insert(s.to_string(), next);
                self.out.push(tag::INTERN);
                varint_into(&mut self.out, next);
                varint_into(&mut self.out, s.len() as u64);
                self.out.extend_from_slice(s.as_bytes());
                self.records += 1;
                next
            }
        };
        varint_into(&mut self.scratch, id);
    }

    /// Flushes the staged payload as one record with the given tag.
    pub(crate) fn end_record(&mut self, record_tag: u8) {
        self.out.push(record_tag);
        self.out.append(&mut self.scratch);
        self.records += 1;
    }

    pub(crate) fn jref(&mut self, r: JRef) {
        let kind = match r.kind() {
            RefKind::Null => 0u8,
            RefKind::Local => 1,
            RefKind::Global => 2,
            RefKind::WeakGlobal => 3,
        };
        self.byte(kind);
        if kind != 0 {
            self.varint(u64::from(r.owner().0));
            self.varint(u64::from(r.slot()));
            self.varint(u64::from(r.generation()));
        }
    }

    pub(crate) fn jvalue(&mut self, v: &JValue) {
        match v {
            JValue::Bool(b) => {
                self.byte(0);
                self.byte(u8::from(*b));
            }
            JValue::Byte(b) => {
                self.byte(1);
                self.signed(i64::from(*b));
            }
            JValue::Char(c) => {
                self.byte(2);
                self.varint(u64::from(*c));
            }
            JValue::Short(s) => {
                self.byte(3);
                self.signed(i64::from(*s));
            }
            JValue::Int(i) => {
                self.byte(4);
                self.signed(i64::from(*i));
            }
            JValue::Long(l) => {
                self.byte(5);
                self.signed(*l);
            }
            JValue::Float(f) => {
                self.byte(6);
                self.varint(u64::from(f.to_bits()));
            }
            JValue::Double(d) => {
                self.byte(7);
                self.varint(d.to_bits());
            }
            JValue::Ref(r) => {
                self.byte(8);
                self.jref(*r);
            }
            JValue::Void => self.byte(9),
        }
    }

    pub(crate) fn prims(&mut self, p: &PrimArray) {
        match p {
            PrimArray::Bool(v) => {
                self.byte(0);
                self.varint(v.len() as u64);
                for &b in v {
                    self.byte(u8::from(b));
                }
            }
            PrimArray::Byte(v) => {
                self.byte(1);
                self.varint(v.len() as u64);
                for &b in v {
                    self.signed(i64::from(b));
                }
            }
            PrimArray::Char(v) => {
                self.byte(2);
                self.varint(v.len() as u64);
                for &c in v {
                    self.varint(u64::from(c));
                }
            }
            PrimArray::Short(v) => {
                self.byte(3);
                self.varint(v.len() as u64);
                for &s in v {
                    self.signed(i64::from(s));
                }
            }
            PrimArray::Int(v) => {
                self.byte(4);
                self.varint(v.len() as u64);
                for &i in v {
                    self.signed(i64::from(i));
                }
            }
            PrimArray::Long(v) => {
                self.byte(5);
                self.varint(v.len() as u64);
                for &l in v {
                    self.signed(l);
                }
            }
            PrimArray::Float(v) => {
                self.byte(6);
                self.varint(v.len() as u64);
                for &f in v {
                    self.varint(u64::from(f.to_bits()));
                }
            }
            PrimArray::Double(v) => {
                self.byte(7);
                self.varint(v.len() as u64);
                for &d in v {
                    self.varint(d.to_bits());
                }
            }
        }
    }

    pub(crate) fn jarg(&mut self, a: &JniArg) {
        match a {
            JniArg::Ref(r) => {
                self.byte(0);
                self.jref(*r);
            }
            JniArg::Method(m) => {
                self.byte(1);
                self.varint(m.index() as u64);
            }
            JniArg::Field(fd) => {
                self.byte(2);
                self.varint(fd.index() as u64);
            }
            JniArg::Val(v) => {
                self.byte(3);
                self.jvalue(v);
            }
            JniArg::Name(s) => {
                self.byte(4);
                self.istr(s);
            }
            JniArg::Buf(p) => {
                self.byte(5);
                self.varint(u64::from(p.0));
            }
            JniArg::Args(vs) => {
                self.byte(6);
                self.varint(vs.len() as u64);
                for v in vs {
                    self.jvalue(v);
                }
            }
            JniArg::Size(s) => {
                self.byte(7);
                self.signed(*s);
            }
            JniArg::Chars(cs) => {
                self.byte(8);
                self.varint(cs.len() as u64);
                for &c in cs {
                    self.varint(u64::from(c));
                }
            }
            JniArg::Bytes(bs) => {
                self.byte(9);
                self.varint(bs.len() as u64);
                self.scratch.extend_from_slice(bs);
            }
            JniArg::Prims(p) => {
                self.byte(10);
                self.prims(p);
            }
            JniArg::Opaque => self.byte(11),
        }
    }

    /// Appends the `End` record (count + checksum) and returns the bytes.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        debug_assert!(self.scratch.is_empty(), "unflushed record");
        let count = self.records;
        let checksum = fnv1a(&self.out);
        self.out.push(tag::END);
        varint_into(&mut self.out, count);
        self.out.extend_from_slice(&checksum.to_le_bytes());
        self.out
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Streaming record decoder. [`Decoder::next_record`] yields one decoded
/// [`TraceRecord`] at a time, resolving interned strings on the fly.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    interns: Vec<String>,
    version: u16,
    records: u64,
    finished: bool,
    /// Running FNV over everything decoded *before* `bytes` — the offset
    /// basis for a whole-trace decode, a carried hash for a resumed
    /// [`StreamDecoder`] window.
    base_fnv: u64,
    /// A resumed window decodes a slice that starts mid-trace and may end
    /// before the trace does, so the trailing-bytes check after `End`
    /// moves to the stream decoder.
    streaming: bool,
}

impl<'a> Decoder<'a> {
    /// Starts decoding, validating magic and version.
    pub fn new(bytes: &'a [u8]) -> Result<Decoder<'a>, TraceError> {
        if bytes.len() < 6 {
            return Err(TraceError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        Ok(Decoder {
            bytes,
            pos: 6,
            interns: Vec::new(),
            version,
            records: 0,
            finished: false,
            base_fnv: FNV_OFFSET,
            streaming: false,
        })
    }

    /// The trace's format version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Records decoded so far (intern definitions included).
    pub fn records_decoded(&self) -> u64 {
        self.records
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        let b = *self.bytes.get(self.pos).ok_or(TraceError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        let s = self.bytes.get(self.pos..end).ok_or(TraceError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(TraceError::Corrupt("varint overflow".into()));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn signed(&mut self) -> Result<i64, TraceError> {
        Ok(unzigzag(self.varint()?))
    }

    fn u16v(&mut self) -> Result<u16, TraceError> {
        let v = self.varint()?;
        u16::try_from(v).map_err(|_| TraceError::Corrupt(format!("u16 out of range: {v}")))
    }

    fn u32v(&mut self) -> Result<u32, TraceError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| TraceError::Corrupt(format!("u32 out of range: {v}")))
    }

    fn istr(&mut self) -> Result<String, TraceError> {
        // A bare `varint()? as usize` would silently truncate intern ids on
        // 32-bit targets; go through the checked u32 path like the
        // neighbouring fields so an oversized id is a corrupt trace, not a
        // wrong string.
        let id = self.u32v()? as usize;
        self.interns
            .get(id)
            .cloned()
            .ok_or_else(|| TraceError::Corrupt(format!("dangling intern id {id}")))
    }

    fn jref(&mut self) -> Result<JRef, TraceError> {
        let kind = match self.u8()? {
            0 => return Ok(JRef::NULL),
            1 => RefKind::Local,
            2 => RefKind::Global,
            3 => RefKind::WeakGlobal,
            other => return Err(TraceError::Corrupt(format!("bad ref kind {other}"))),
        };
        let owner = ThreadId(self.u16v()?);
        let slot = self.u32v()?;
        let generation = self.u32v()?;
        Ok(JRef::from_parts(kind, owner, slot, generation))
    }

    fn jvalue(&mut self) -> Result<JValue, TraceError> {
        Ok(match self.u8()? {
            0 => JValue::Bool(self.u8()? != 0),
            1 => JValue::Byte(self.signed()? as i8),
            2 => JValue::Char(self.u16v()?),
            3 => JValue::Short(self.signed()? as i16),
            4 => JValue::Int(self.signed()? as i32),
            5 => JValue::Long(self.signed()?),
            6 => JValue::Float(f32::from_bits(self.u32v()?)),
            7 => JValue::Double(f64::from_bits(self.varint()?)),
            8 => JValue::Ref(self.jref()?),
            9 => JValue::Void,
            other => return Err(TraceError::Corrupt(format!("bad jvalue tag {other}"))),
        })
    }

    fn jvalues(&mut self) -> Result<Vec<JValue>, TraceError> {
        let n = self.varint()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(self.jvalue()?);
        }
        Ok(out)
    }

    fn prims(&mut self) -> Result<PrimArray, TraceError> {
        let kind = self.u8()?;
        let n = self.varint()? as usize;
        Ok(match kind {
            0 => {
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(self.u8()? != 0);
                }
                PrimArray::Bool(v)
            }
            1 => {
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(self.signed()? as i8);
                }
                PrimArray::Byte(v)
            }
            2 => {
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(self.u16v()?);
                }
                PrimArray::Char(v)
            }
            3 => {
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(self.signed()? as i16);
                }
                PrimArray::Short(v)
            }
            4 => {
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(self.signed()? as i32);
                }
                PrimArray::Int(v)
            }
            5 => {
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(self.signed()?);
                }
                PrimArray::Long(v)
            }
            6 => {
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(f32::from_bits(self.u32v()?));
                }
                PrimArray::Float(v)
            }
            7 => {
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(f64::from_bits(self.varint()?));
                }
                PrimArray::Double(v)
            }
            other => return Err(TraceError::Corrupt(format!("bad prim kind {other}"))),
        })
    }

    fn jarg(&mut self) -> Result<JniArg, TraceError> {
        Ok(match self.u8()? {
            0 => JniArg::Ref(self.jref()?),
            1 => JniArg::Method(MethodId::forged(self.varint()?)),
            2 => JniArg::Field(FieldId::forged(self.varint()?)),
            3 => JniArg::Val(self.jvalue()?),
            4 => JniArg::Name(self.istr()?),
            5 => JniArg::Buf(PinId(self.u32v()?)),
            6 => JniArg::Args(self.jvalues()?),
            7 => JniArg::Size(self.signed()?),
            8 => {
                let n = self.varint()? as usize;
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(self.u16v()?);
                }
                JniArg::Chars(v)
            }
            9 => {
                let n = self.varint()? as usize;
                JniArg::Bytes(self.take(n)?.to_vec())
            }
            10 => JniArg::Prims(self.prims()?),
            11 => JniArg::Opaque,
            other => return Err(TraceError::Corrupt(format!("bad arg tag {other}"))),
        })
    }

    fn status(&mut self) -> Result<CallStatus, TraceError> {
        CallStatus::from_u8(self.u8()?)
    }

    /// Decodes the next record, or `Ok(None)` at the (validated) end.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] on malformed input; checksum and record-count
    /// mismatches are detected when the `End` record is reached.
    #[allow(clippy::too_many_lines)]
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.finished {
            return Ok(None);
        }
        loop {
            let tag_pos = self.pos;
            let t = self.u8()?;
            match t {
                tag::INTERN => {
                    let id = self.varint()? as usize;
                    if id != self.interns.len() {
                        return Err(TraceError::Corrupt(format!(
                            "intern id {id} out of order (expected {})",
                            self.interns.len()
                        )));
                    }
                    let len = self.varint()? as usize;
                    let bytes = self.take(len)?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| TraceError::Corrupt("intern not UTF-8".into()))?;
                    self.interns.push(s.to_string());
                    self.records += 1;
                }
                tag::END => {
                    let expected_count = self.varint()?;
                    let checksum_bytes = self.take(8)?;
                    let expected = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
                    let actual = fnv1a_with(self.base_fnv, &self.bytes[..tag_pos]);
                    if expected != actual {
                        return Err(TraceError::ChecksumMismatch { expected, actual });
                    }
                    if expected_count != self.records {
                        return Err(TraceError::RecordCountMismatch {
                            expected: expected_count,
                            actual: self.records,
                        });
                    }
                    if !self.streaming && self.pos != self.bytes.len() {
                        // Bytes past the end record sit outside the
                        // checksum; accepting them would let an attacker
                        // smuggle arbitrary data under a valid seal. A
                        // streaming window may legitimately end before the
                        // stream does, so [`StreamDecoder`] runs this
                        // check itself at seal.
                        return Err(TraceError::Corrupt(format!(
                            "{} trailing bytes after end record",
                            self.bytes.len() - self.pos
                        )));
                    }
                    self.finished = true;
                    return Ok(None);
                }
                tag::META => {
                    let key = self.istr()?;
                    let value = self.istr()?;
                    self.records += 1;
                    return Ok(Some(TraceRecord::Meta { key, value }));
                }
                tag::DEF_CLASS => {
                    let name = self.istr()?;
                    let superclass = {
                        let s = self.istr()?;
                        if s.is_empty() {
                            None
                        } else {
                            Some(s)
                        }
                    };
                    let is_interface = self.u8()? != 0;
                    let nfields = self.varint()? as usize;
                    let mut fields = Vec::with_capacity(nfields.min(1024));
                    for _ in 0..nfields {
                        let name = self.istr()?;
                        let desc = self.istr()?;
                        let flags = flags_from_byte(self.u8()?);
                        fields.push(FieldRec { name, desc, flags });
                    }
                    let nmethods = self.varint()? as usize;
                    let mut methods = Vec::with_capacity(nmethods.min(1024));
                    for _ in 0..nmethods {
                        let name = self.istr()?;
                        let desc = self.istr()?;
                        let flags = flags_from_byte(self.u8()?);
                        let kind = match self.u8()? {
                            0 => BodyKind::Native,
                            1 => BodyKind::Managed,
                            2 => BodyKind::Abstract,
                            other => {
                                return Err(TraceError::Corrupt(format!("bad body kind {other}")))
                            }
                        };
                        methods.push(MethodRec {
                            name,
                            desc,
                            flags,
                            kind,
                        });
                    }
                    self.records += 1;
                    return Ok(Some(TraceRecord::DefClass(ClassRec {
                        name,
                        superclass,
                        is_interface,
                        fields,
                        methods,
                    })));
                }
                tag::SPAWN_THREAD => {
                    let thread = self.u16v()?;
                    self.records += 1;
                    return Ok(Some(TraceRecord::SpawnThread { thread }));
                }
                tag::SEED_REF => {
                    let thread = self.u16v()?;
                    let kind = match self.u8()? {
                        0 => SeedKind::Object(self.istr()?),
                        1 => SeedKind::Text(self.istr()?),
                        2 => SeedKind::Mirror(self.istr()?),
                        other => return Err(TraceError::Corrupt(format!("bad seed kind {other}"))),
                    };
                    let expected = self.jref()?;
                    self.records += 1;
                    return Ok(Some(TraceRecord::Seed(SeedRec {
                        thread,
                        kind,
                        expected,
                    })));
                }
                tag::JNI_ENTER => {
                    let thread = self.u16v()?;
                    let presented = self.u32v()?;
                    let func = self.u16v()?;
                    let n = self.varint()? as usize;
                    let mut args = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        args.push(self.jarg()?);
                    }
                    self.records += 1;
                    return Ok(Some(TraceRecord::JniEnter {
                        thread,
                        presented,
                        func,
                        args,
                    }));
                }
                tag::JNI_EXIT => {
                    let thread = self.u16v()?;
                    let func = self.u16v()?;
                    let status = self.status()?;
                    self.records += 1;
                    return Ok(Some(TraceRecord::JniExit {
                        thread,
                        func,
                        status,
                    }));
                }
                tag::NATIVE_ENTER => {
                    let thread = self.u16v()?;
                    let method = self.u32v()?;
                    let args = self.jvalues()?;
                    self.records += 1;
                    return Ok(Some(TraceRecord::NativeEnter {
                        thread,
                        method,
                        args,
                    }));
                }
                tag::NATIVE_EXIT => {
                    let thread = self.u16v()?;
                    let method = self.u32v()?;
                    let status = self.status()?;
                    let ret = if status == CallStatus::Ok {
                        Some(self.jvalue()?)
                    } else {
                        None
                    };
                    self.records += 1;
                    return Ok(Some(TraceRecord::NativeExit {
                        thread,
                        method,
                        status,
                        ret,
                    }));
                }
                tag::MANAGED_ENTER => {
                    let thread = self.u16v()?;
                    let method = self.u32v()?;
                    let args = self.jvalues()?;
                    self.records += 1;
                    return Ok(Some(TraceRecord::ManagedEnter {
                        thread,
                        method,
                        args,
                    }));
                }
                tag::MANAGED_EXIT => {
                    let thread = self.u16v()?;
                    let method = self.u32v()?;
                    let outcome = match self.u8()? {
                        0 => ManagedRec::Return(self.jvalue()?),
                        1 => {
                            let class = self.istr()?;
                            let message = self.istr()?;
                            ManagedRec::Threw { class, message }
                        }
                        2 => ManagedRec::Died,
                        3 => ManagedRec::Detected,
                        other => {
                            return Err(TraceError::Corrupt(format!("bad managed outcome {other}")))
                        }
                    };
                    self.records += 1;
                    return Ok(Some(TraceRecord::ManagedExit {
                        thread,
                        method,
                        outcome,
                    }));
                }
                tag::GC_POINT => {
                    let thread = self.u16v()?;
                    let live = self.varint()?;
                    let collected = self.varint()?;
                    let weak_cleared = self.varint()?;
                    self.records += 1;
                    return Ok(Some(TraceRecord::GcPoint {
                        thread,
                        live,
                        collected,
                        weak_cleared,
                    }));
                }
                tag::VENDOR_UB => {
                    let thread = self.u16v()?;
                    let situation = self.istr()?;
                    let func = self.istr()?;
                    let outcome = match self.u8()? {
                        0 => UbRec::Proceed,
                        1 => UbRec::Crash(self.istr()?),
                        2 => UbRec::Npe,
                        3 => UbRec::Deadlock(self.istr()?),
                        other => {
                            return Err(TraceError::Corrupt(format!("bad ub outcome {other}")))
                        }
                    };
                    self.records += 1;
                    return Ok(Some(TraceRecord::VendorUb {
                        thread,
                        situation,
                        func,
                        outcome,
                    }));
                }
                tag::OBS_EVENT => {
                    let thread = self.u16v()?;
                    let text = self.istr()?;
                    self.records += 1;
                    return Ok(Some(TraceRecord::ObsEvent { thread, text }));
                }
                tag::PY_CALL => {
                    let thread = self.u16v()?;
                    let func = self.istr()?;
                    let n = self.varint()? as usize;
                    let mut ptrs = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        ptrs.push(self.varint()?);
                    }
                    self.records += 1;
                    return Ok(Some(TraceRecord::PyCall { thread, func, ptrs }));
                }
                other => {
                    return Err(TraceError::Corrupt(format!(
                        "unknown record tag {other:#04x}"
                    )))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming decoder
// ---------------------------------------------------------------------------

/// A resumable record decoder over an append-only byte stream.
///
/// Feed chunks with [`StreamDecoder::feed`] as they arrive and drain
/// complete records with [`StreamDecoder::next_record`]; bytes are
/// released as soon as the record they belong to decodes, so peak
/// residency is the undecoded tail, not the trace. The intern table,
/// record count, and running FNV carry across calls, and end-checksum
/// verification happens exactly where a whole-trace [`Decoder`] would do
/// it — when the `End` record is reached — while the trailing-bytes
/// check is deferred to [`StreamDecoder::finish`] (a window may end
/// before the stream does).
///
/// Error parity with the batch path is a soundness requirement, not a
/// convenience: a stream that fails here fails with the **same**
/// [`TraceError`] a `Decoder::new` + `next_record` loop over the
/// concatenated bytes would produce, in the same record position. Any
/// error is sticky — further feeding is accepted (the running stream
/// totals keep counting for seal verification) but no longer buffered.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    /// Undecoded tail: bytes fed but not yet consumed by a record.
    buf: Vec<u8>,
    header_done: bool,
    version: u16,
    interns: Vec<String>,
    records: u64,
    /// Running FNV over every *consumed* byte (header included).
    consumed_fnv: u64,
    /// Total bytes consumed (header included).
    consumed: u64,
    finished: bool,
    /// Bytes fed after the `End` record decoded.
    trailing: u64,
    /// Total bytes ever fed (regardless of decode state).
    stream_len: u64,
    /// Running FNV over every byte ever fed.
    stream_fnv: u64,
    failed: Option<TraceError>,
}

impl StreamDecoder {
    /// An empty decoder, waiting for the 6-byte header.
    pub fn new() -> StreamDecoder {
        StreamDecoder {
            consumed_fnv: FNV_OFFSET,
            stream_fnv: FNV_OFFSET,
            ..StreamDecoder::default()
        }
    }

    /// Appends a chunk of the stream. Never fails: decode errors surface
    /// from [`StreamDecoder::next_record`] / [`StreamDecoder::finish`],
    /// and the running totals ([`StreamDecoder::stream_len`],
    /// [`StreamDecoder::stream_fnv`]) count every byte regardless so a
    /// seal declaration can always be verified.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.stream_len += chunk.len() as u64;
        self.stream_fnv = fnv1a_with(self.stream_fnv, chunk);
        if self.failed.is_some() {
            return;
        }
        if self.finished {
            self.trailing += chunk.len() as u64;
            return;
        }
        self.buf.extend_from_slice(chunk);
    }

    fn fail(&mut self, e: TraceError) -> TraceError {
        self.failed = Some(e.clone());
        // Poisoned streams never decode again; release the tail now.
        self.buf = Vec::new();
        e
    }

    /// Validates the 6-byte header once enough bytes are buffered.
    /// Returns `Ok(true)` when the header has been consumed.
    fn try_header(&mut self) -> Result<bool, TraceError> {
        if self.header_done {
            return Ok(true);
        }
        if self.buf.len() < 6 {
            return Ok(false);
        }
        if self.buf[..4] != MAGIC {
            return Err(self.fail(TraceError::BadMagic));
        }
        let version = u16::from_le_bytes([self.buf[4], self.buf[5]]);
        if version != FORMAT_VERSION {
            return Err(self.fail(TraceError::UnsupportedVersion(version)));
        }
        self.version = version;
        self.consumed_fnv = fnv1a_with(self.consumed_fnv, &self.buf[..6]);
        self.consumed += 6;
        self.buf.drain(..6);
        self.header_done = true;
        Ok(true)
    }

    /// Decodes the next complete record, or `Ok(None)` when more bytes
    /// are needed — or when the validated `End` record has been reached
    /// (disambiguate with [`StreamDecoder::is_finished`]).
    ///
    /// # Errors
    ///
    /// The same [`TraceError`] a whole-trace decode of the concatenated
    /// stream would produce at this position. Errors are sticky.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if self.finished {
            return Ok(None);
        }
        if !self.try_header()? {
            return Ok(None);
        }
        // Resume a window decoder over the undecoded tail. Every
        // `next_record` mutation is append-only (pos advances, interns
        // push, records increments), so a truncated attempt rolls back
        // exactly by restoring the three counters.
        let snap_interns = self.interns.len();
        let snap_records = self.records;
        let mut dec = Decoder {
            bytes: &self.buf,
            pos: 0,
            interns: std::mem::take(&mut self.interns),
            version: self.version,
            records: self.records,
            finished: false,
            base_fnv: self.consumed_fnv,
            streaming: true,
        };
        let outcome = dec.next_record();
        let pos = dec.pos;
        let dec_finished = dec.finished;
        self.interns = dec.interns;
        self.records = dec.records;
        match outcome {
            Ok(Some(rec)) => {
                self.consumed_fnv = fnv1a_with(self.consumed_fnv, &self.buf[..pos]);
                self.consumed += pos as u64;
                self.buf.drain(..pos);
                Ok(Some(rec))
            }
            Ok(None) => {
                debug_assert!(dec_finished, "Ok(None) without End");
                self.finished = true;
                self.trailing += (self.buf.len() - pos) as u64;
                self.consumed_fnv = fnv1a_with(self.consumed_fnv, &self.buf[..pos]);
                self.consumed += pos as u64;
                self.buf = Vec::new();
                Ok(None)
            }
            Err(TraceError::Truncated) => {
                // Mid-record chunk boundary: rewind and wait for more.
                // Intern records consumed before the cut re-decode next
                // time — correctness over elegance.
                self.interns.truncate(snap_interns);
                self.records = snap_records;
                Ok(None)
            }
            Err(e) => Err(self.fail(e)),
        }
    }

    /// Whether the validated `End` record has been decoded.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Format version from the header (`0` until the header decodes).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Undecoded tail bytes currently buffered.
    pub fn pending(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Total bytes ever fed.
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Running FNV-1a over every byte ever fed — what a seal declaration
    /// checksums.
    pub fn stream_fnv(&self) -> u64 {
        self.stream_fnv
    }

    /// Records decoded so far (intern definitions included).
    pub fn records_decoded(&self) -> u64 {
        self.records
    }

    /// Final verdict on the stream, for the seal point: drains any
    /// still-decodable records, then reports exactly what a whole-trace
    /// decode of the concatenated bytes would have reported.
    ///
    /// # Errors
    ///
    /// The sticky decode error if one occurred; [`TraceError::Truncated`]
    /// if the stream ended without a validated `End` record (including
    /// a stream shorter than the 6-byte header — batch parity);
    /// [`TraceError::Corrupt`] for bytes trailing the `End` record.
    pub fn finish(&mut self) -> Result<(), TraceError> {
        while self.next_record()?.is_some() {}
        if !self.finished {
            return Err(TraceError::Truncated);
        }
        if self.trailing > 0 {
            return Err(TraceError::Corrupt(format!(
                "{} trailing bytes after end record",
                self.trailing
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let mut enc = Encoder::new();
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            enc.varint(v);
        }
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            enc.signed(v);
        }
        enc.end_record(tag::META); // placeholder tag to flush
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes).unwrap();
        // Skip to the record payload by reading the tag by hand.
        assert_eq!(dec.u8().unwrap(), tag::META);
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            assert_eq!(dec.varint().unwrap(), v);
        }
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            assert_eq!(dec.signed().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_is_involutive() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn flags_byte_round_trips() {
        for vis in [
            Visibility::Public,
            Visibility::Protected,
            Visibility::Package,
            Visibility::Private,
        ] {
            for is_static in [false, true] {
                for is_final in [false, true] {
                    let f = MemberFlags {
                        visibility: vis,
                        is_static,
                        is_final,
                    };
                    assert_eq!(flags_from_byte(flags_to_byte(f)), f);
                }
            }
        }
    }

    #[test]
    fn truncated_and_corrupt_streams_error() {
        assert!(matches!(Decoder::new(b"JTRC"), Err(TraceError::Truncated)));
        assert!(matches!(
            Decoder::new(b"XXXX\x01\x00"),
            Err(TraceError::BadMagic)
        ));
        assert!(matches!(
            Decoder::new(b"JTRC\x63\x00"),
            Err(TraceError::UnsupportedVersion(0x63))
        ));
        // Valid header, then garbage tag.
        let mut dec = Decoder::new(b"JTRC\x01\x00\x7f").unwrap();
        assert!(matches!(dec.next_record(), Err(TraceError::Corrupt(_))));
        // Valid header, no End.
        let mut dec = Decoder::new(b"JTRC\x01\x00").unwrap();
        assert!(matches!(dec.next_record(), Err(TraceError::Truncated)));
    }

    #[test]
    fn oversized_intern_id_is_corrupt_not_truncated() {
        // A varint above u32::MAX where an intern id belongs: with the old
        // `varint()? as usize` decode, a 32-bit target would wrap this to
        // a small id and silently resolve the wrong string. It must be a
        // corrupt-trace error on every target.
        let mut bytes = b"JTRC\x01\x00".to_vec();
        varint_into(&mut bytes, u64::from(u32::MAX) + 1);
        let mut dec = Decoder::new(&bytes).unwrap();
        match dec.istr() {
            Err(TraceError::Corrupt(msg)) => {
                assert!(msg.contains("out of range"), "unexpected message: {msg}");
            }
            other => panic!("oversized intern id must be Corrupt, got {other:?}"),
        }
        // An in-range id that was never defined stays a dangling-id error.
        let mut bytes = b"JTRC\x01\x00".to_vec();
        varint_into(&mut bytes, 3);
        let mut dec = Decoder::new(&bytes).unwrap();
        match dec.istr() {
            Err(TraceError::Corrupt(msg)) => {
                assert!(msg.contains("dangling intern id 3"), "{msg}");
            }
            other => panic!("dangling intern id must be Corrupt, got {other:?}"),
        }
    }

    /// A small but representative trace: interns, multi-record payloads,
    /// and a proper End record.
    fn sample_trace() -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.istr("program");
        enc.istr("sample");
        enc.end_record(tag::META);
        enc.varint(3);
        enc.end_record(tag::SPAWN_THREAD);
        enc.istr("program");
        enc.istr("sample-again");
        enc.end_record(tag::META);
        enc.istr("pitfall");
        enc.istr("use-after-free");
        enc.end_record(tag::META);
        enc.finish()
    }

    fn batch_decode(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
        let mut dec = Decoder::new(bytes)?;
        let mut out = Vec::new();
        while let Some(rec) = dec.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    fn stream_decode(bytes: &[u8], chunk: usize) -> Result<Vec<TraceRecord>, TraceError> {
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            dec.feed(piece);
            while let Some(rec) = dec.next_record()? {
                out.push(rec);
            }
        }
        dec.finish()?;
        Ok(out)
    }

    #[test]
    fn stream_decoder_matches_batch_at_every_chunk_size() {
        let bytes = sample_trace();
        let batch = batch_decode(&bytes).expect("batch decodes");
        assert!(batch.len() >= 4);
        for chunk in [1, 2, 3, 7, 64, bytes.len()] {
            let streamed = stream_decode(&bytes, chunk).expect("stream decodes");
            assert_eq!(streamed, batch, "chunk size {chunk}");
        }
        // Running totals cover the whole stream.
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes);
        while dec.next_record().unwrap().is_some() {}
        assert!(dec.is_finished());
        assert_eq!(dec.stream_len(), bytes.len() as u64);
        assert_eq!(dec.stream_fnv(), fnv1a(&bytes));
        assert_eq!(dec.pending(), 0, "all bytes released at End");
    }

    #[test]
    fn stream_decoder_releases_bytes_as_records_decode() {
        let bytes = sample_trace();
        let mut dec = StreamDecoder::new();
        let mut high_water = 0u64;
        for piece in bytes.chunks(1) {
            dec.feed(piece);
            while dec.next_record().unwrap().is_some() {}
            high_water = high_water.max(dec.pending());
        }
        dec.finish().unwrap();
        // The tail never holds more than the largest single record.
        assert!(
            high_water < bytes.len() as u64 / 2,
            "pending high water {high_water} of {} total",
            bytes.len()
        );
    }

    #[test]
    fn stream_decoder_error_parity_with_batch() {
        let good = sample_trace();
        // Corrupt tag mid-stream, bit flips, truncations, trailing bytes:
        // the streaming decoder must fail exactly like the batch decoder.
        let mut variants: Vec<Vec<u8>> = Vec::new();
        let mut garbage_tag = good.clone();
        let mid = garbage_tag.len() / 2;
        garbage_tag.truncate(mid);
        garbage_tag.push(0x7f);
        variants.push(garbage_tag);
        for idx in [6, 10, good.len() - 3] {
            let mut flipped = good.clone();
            flipped[idx] ^= 0x40;
            variants.push(flipped);
        }
        for cut in [0, 3, 5, 6, 7, good.len() - 1] {
            variants.push(good[..cut].to_vec());
        }
        let mut trailing = good.clone();
        trailing.extend_from_slice(b"xx");
        variants.push(trailing);
        variants.push(b"XXXX\x01\x00\x02".to_vec());
        variants.push(b"JTRC\x63\x00\x02".to_vec());
        for (i, bytes) in variants.iter().enumerate() {
            let batch = batch_decode(bytes);
            for chunk in [1, 5, bytes.len().max(1)] {
                let streamed = stream_decode(bytes, chunk);
                assert_eq!(streamed, batch, "variant {i}, chunk {chunk}");
            }
        }
    }

    #[test]
    fn stream_decoder_errors_are_sticky_and_release_the_tail() {
        let bytes = b"JTRC\x01\x00\x7f".to_vec(); // header + garbage tag
        let mut dec = StreamDecoder::new();
        dec.feed(&bytes);
        let first = loop {
            match dec.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("must hit the garbage tag"),
                Err(e) => break e,
            }
        };
        assert_eq!(dec.pending(), 0, "poisoned tail released");
        dec.feed(b"more bytes");
        assert_eq!(dec.next_record(), Err(first.clone()));
        assert_eq!(dec.finish(), Err(first));
        // Stream totals keep counting for seal verification.
        assert_eq!(dec.stream_len(), bytes.len() as u64 + 10);
    }

    #[test]
    fn checksum_detects_flips() {
        let mut enc = Encoder::new();
        enc.istr("hello");
        enc.istr("world");
        enc.end_record(tag::META);
        let mut bytes = enc.finish();
        // Decodes clean.
        let mut dec = Decoder::new(&bytes).unwrap();
        assert!(matches!(
            dec.next_record().unwrap(),
            Some(TraceRecord::Meta { .. })
        ));
        assert!(dec.next_record().unwrap().is_none());
        // Flip one payload bit.
        let idx = 10;
        bytes[idx] ^= 1;
        let mut dec = Decoder::new(&bytes).unwrap();
        let mut err = None;
        loop {
            match dec.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.is_some(), "bit flip must not decode clean");
    }
}
