//! Bridges to the other substrates: the observability layer
//! ([`jinn_obs::Recorder`]) and the Python/C boundary
//! ([`minipy::PySession`]).
//!
//! Both bridges feed the same [`TraceWriter`], so a single `.jtrace`
//! file can interleave JNI boundary records with observability events
//! and Python/C calls.

use std::cell::RefCell;
use std::rc::Rc;

use jinn_obs::Recorder;
use minipy::{PyCall, PyInterpose, PyViolation, Python};

use crate::writer::TraceWriter;

/// Appends every event currently held in the recorder's trace ring to
/// the writer as `ObsEvent` records, plus metadata accounting for what
/// the ring does *not* hold: `obs.dropped` (ring overflow),
/// `obs.suppressed` (events the trace policy disabled or sampled away)
/// and `obs.sampled` (whether the trace is a policy-thinned subset —
/// consumers must not treat a sampled trace as complete). The policy
/// epoch rides along so differential runs can prove they saw the same
/// configuration.
pub fn append_obs_events(writer: &mut TraceWriter, recorder: &Recorder) {
    if !recorder.is_enabled() {
        return;
    }
    let coverage = recorder.coverage();
    let suppressed =
        coverage.suppressed_disabled + coverage.suppressed_sampled + coverage.auto_downsampled;
    writer.meta("obs.dropped", &recorder.dropped_events().to_string());
    writer.meta("obs.suppressed", &suppressed.to_string());
    writer.meta("obs.sampled", if suppressed > 0 { "true" } else { "false" });
    writer.meta("obs.policy_epoch", &coverage.policy_epoch.to_string());
    for event in recorder.events() {
        writer.obs_event(event.thread, &event.to_string());
    }
}

/// A passive [`PyInterpose`] that records every Python/C boundary
/// crossing as a `PyCall` record. It never raises violations — it is a
/// tap, not a checker — so it composes with any checker stack.
#[derive(Debug, Clone)]
pub struct PyTraceWriter {
    writer: Rc<RefCell<TraceWriter>>,
}

impl PyTraceWriter {
    /// Wraps a shared writer for attachment via
    /// [`minipy::PySession::attach`].
    pub fn new(writer: Rc<RefCell<TraceWriter>>) -> PyTraceWriter {
        PyTraceWriter { writer }
    }
}

impl PyInterpose for PyTraceWriter {
    fn name(&self) -> &str {
        "py-trace-writer"
    }

    fn pre(&mut self, _py: &Python, call: &PyCall<'_>) -> Option<PyViolation> {
        let ptrs: Vec<u64> = call.ptr_args.iter().map(|p| p.addr()).collect();
        self.writer
            .borrow_mut()
            .py_call(call.thread.0, call.spec.name, &ptrs);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceRecord;
    use crate::reader::Trace;
    use minipy::{build_string_list, PySession};

    #[test]
    fn obs_events_and_drop_count_land_in_the_trace() {
        let recorder = Recorder::enabled(4);
        for _ in 0..10 {
            recorder.event(
                0,
                jinn_obs::EventKind::JniEnter {
                    func: "GetVersion".into(),
                },
            );
        }
        let mut w = TraceWriter::new();
        w.meta("program", "obs-bridge");
        append_obs_events(&mut w, &recorder);
        let t = Trace::parse(&w.finish()).unwrap();
        assert_eq!(t.meta_value("obs.dropped"), Some("6"));
        assert_eq!(t.meta_value("obs.sampled"), Some("false"));
        assert_eq!(t.meta_value("obs.suppressed"), Some("0"));
        let obs = t
            .events
            .iter()
            .filter(|e| matches!(e, TraceRecord::ObsEvent { .. }))
            .count();
        assert_eq!(obs, 4, "ring holds the newest four events");
    }

    #[test]
    fn sampling_flag_survives_a_trace_round_trip() {
        let recorder = Recorder::enabled(64);
        // Thin "GetVersion" to 1-in-4 mid-run: the trace is now an
        // acknowledged subset and must say so after parsing back.
        recorder.set_policy(jinn_obs::TracePolicy::full().rate("GetVersion", 4));
        let func = recorder.intern("GetVersion");
        for _ in 0..16 {
            recorder.jni_enter_id(0, func);
        }
        let mut w = TraceWriter::new();
        w.meta("program", "obs-bridge-sampled");
        append_obs_events(&mut w, &recorder);
        let t = Trace::parse(&w.finish()).unwrap();
        assert_eq!(t.meta_value("obs.sampled"), Some("true"));
        assert_eq!(t.meta_value("obs.suppressed"), Some("12"));
        assert_eq!(t.meta_value("obs.policy_epoch"), Some("1"));
        let obs = t
            .events
            .iter()
            .filter(|e| matches!(e, TraceRecord::ObsEvent { .. }))
            .count();
        assert_eq!(obs, 4, "1-in-4 of sixteen enters survive");
    }

    #[test]
    fn py_boundary_crossings_are_recorded() {
        let writer = Rc::new(RefCell::new(TraceWriter::new()));
        writer.borrow_mut().meta("program", "py-bridge");
        let mut session = PySession::new();
        session.attach(Box::new(PyTraceWriter::new(writer.clone())));
        session.run(|env| build_string_list(env, &["a", "b", "c"]).map(|_| ()));
        let _ = session.shutdown();
        drop(session);
        let writer = Rc::try_unwrap(writer).expect("sole handle").into_inner();
        let t = Trace::parse(&writer.finish()).unwrap();
        let calls: Vec<&TraceRecord> = t
            .events
            .iter()
            .filter(|e| matches!(e, TraceRecord::PyCall { .. }))
            .collect();
        assert!(!calls.is_empty(), "boundary crossings recorded: {t:?}");
        assert!(t.events.iter().any(|e| matches!(
            e,
            TraceRecord::PyCall { func, .. } if func == "Py_BuildValue"
        )));
    }
}
