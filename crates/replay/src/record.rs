//! Record mode: run a program on a maximally-permissive VM with a
//! [`TraceWriter`] tapped in, producing a trace that any checker
//! configuration can later re-judge.
//!
//! Recording deliberately uses [`RecordVendor`], which answers *Proceed*
//! to every undefined-behaviour situation: the VM never dies and never
//! raises vendor NPEs, so the trace captures the program's complete
//! boundary behaviour. Replay re-decides each situation under the
//! replayed configuration's own vendor model, which is what makes one
//! trace serve every column of Table 1.

use std::cell::RefCell;
use std::rc::Rc;

use jinn_microbench::{scenarios, Scenario, Setup};
use minijni::{RunOutcome, Session, UbOutcome, UbSituation, VendorModel, Vm};
use minijvm::JValue;

use crate::writer::TraceWriter;

/// A vendor model that proceeds through every undefined-behaviour
/// situation — record mode's substrate. (The in-tree `PermissiveVendor`
/// still crashes on unresolvable references; for recording, even those
/// proceed with garbage values so the trace extends past the bug.)
#[derive(Debug, Clone, Default)]
pub struct RecordVendor;

impl VendorModel for RecordVendor {
    fn name(&self) -> &str {
        "record"
    }

    fn on_violation(&self, _situation: &UbSituation<'_>) -> UbOutcome {
        UbOutcome::Proceed
    }
}

/// A recordable program: the same shape as a microbenchmark
/// [`Scenario`], but owning its build closure so case studies (whose
/// builders capture state) fit too.
pub struct Program {
    /// Program name (becomes the `program` metadata and stack frames).
    pub name: String,
    /// Table 1 pitfall number, if applicable.
    pub pitfall: Option<u8>,
    /// The state machine the seeded bug belongs to.
    pub machine: &'static str,
    /// The error state the seeded bug triggers.
    pub error_state: &'static str,
    /// Whether the bug is a silent leak on a default VM.
    pub leaks: bool,
    /// Auto-GC period to set on the VM (boundary crossings per GC), if
    /// any. Recorded in metadata and re-applied at replay.
    pub gc_period: Option<u64>,
    /// Builds the program into a VM.
    #[allow(clippy::type_complexity)]
    pub build: Box<dyn Fn(&mut Vm) -> Setup>,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("name", &self.name)
            .field("machine", &self.machine)
            .field("error_state", &self.error_state)
            .finish_non_exhaustive()
    }
}

impl Program {
    /// Wraps a microbenchmark scenario.
    pub fn from_scenario(s: &Scenario) -> Program {
        let build = s.build;
        Program {
            name: s.name.to_string(),
            pitfall: s.pitfall,
            machine: s.machine,
            error_state: s.error_state,
            leaks: s.leaks,
            gc_period: None,
            build: Box::new(build),
        }
    }
}

/// All sixteen microbenchmarks as recordable programs.
pub fn microbench_programs() -> Vec<Program> {
    scenarios().iter().map(Program::from_scenario).collect()
}

/// The case-study programs of Section 6.4, shaped for recording.
pub fn case_studies() -> Vec<Program> {
    vec![
        Program {
            name: "JavaGnomeSignal".into(),
            pitfall: None,
            machine: "local-reference",
            error_state: "Error:Dangling",
            leaks: false,
            gc_period: None,
            build: Box::new(|vm| {
                let (bind, dispatch, bind_args) =
                    jinn_workloads::javagnome::build_signal_machinery(vm);
                Setup {
                    entries: vec![bind, dispatch],
                    first_args: bind_args,
                }
            }),
        },
        Program {
            name: "SvnInfoCallback".into(),
            pitfall: None,
            machine: "local-reference",
            error_state: "Error:Overflow",
            leaks: true,
            gc_period: None,
            build: Box::new(|vm| {
                let samples = Rc::new(RefCell::new(Vec::new()));
                let entry = jinn_workloads::subversion::build_info_callback(vm, false, samples);
                Setup {
                    entries: vec![entry],
                    first_args: Vec::new(),
                }
            }),
        },
        Program {
            name: "SvnCopySources".into(),
            pitfall: None,
            machine: "local-reference",
            error_state: "Error:Dangling",
            leaks: false,
            gc_period: None,
            build: Box::new(|vm| {
                let (entry, args) = jinn_workloads::subversion::build_copy_sources(vm);
                Setup {
                    entries: vec![entry],
                    first_args: args,
                }
            }),
        },
        Program {
            name: "SwtCallback".into(),
            pitfall: None,
            machine: "entity-typing",
            error_state: "Error:EntityTypeMismatch",
            leaks: false,
            gc_period: None,
            build: Box::new(|vm| {
                let entry = jinn_workloads::eclipse::build_swt_callback(vm);
                Setup {
                    entries: vec![entry],
                    first_args: Vec::new(),
                }
            }),
        },
    ]
}

/// Looks up a recordable program by name: the sixteen microbenchmarks
/// plus the four case studies.
pub fn program_by_name(name: &str) -> Option<Program> {
    microbench_programs()
        .into_iter()
        .chain(case_studies())
        .find(|p| p.name == name)
}

/// Names of every recordable program, in corpus order.
pub fn program_names() -> Vec<String> {
    microbench_programs()
        .iter()
        .chain(case_studies().iter())
        .map(|p| p.name.clone())
        .collect()
}

/// Records one program: builds it on a [`RecordVendor`] VM, taps a
/// [`TraceWriter`] in, drives the entries exactly like the microbenchmark
/// harness, and returns the sealed trace bytes.
pub fn record_program(program: &Program) -> Vec<u8> {
    let mut vm = Vm::new(Box::new(RecordVendor));
    let baseline = vm.jvm().registry().class_count();
    let setup = (program.build)(&mut vm);
    if program.gc_period.is_some() {
        vm.jvm_mut().set_auto_gc_period(program.gc_period);
    }

    let writer = Rc::new(RefCell::new(TraceWriter::new()));
    {
        let mut w = writer.borrow_mut();
        w.meta("program", &program.name);
        if let Some(p) = program.pitfall {
            w.meta("pitfall", &p.to_string());
        }
        w.meta("machine", program.machine);
        w.meta("error_state", program.error_state);
        w.meta("leaks", if program.leaks { "true" } else { "false" });
        if let Some(g) = program.gc_period {
            w.meta("gc_period", &g.to_string());
        }
        let entries = setup
            .entries
            .iter()
            .map(|m| m.index().to_string())
            .collect::<Vec<_>>()
            .join(",");
        w.meta("entries", &entries);
        w.def_classes(vm.jvm(), baseline);
        for t in vm.jvm().thread_ids().skip(1) {
            w.spawn_thread(t);
        }
        for v in &setup.first_args {
            if let JValue::Ref(r) = v {
                w.seed(vm.jvm(), *r);
            }
        }
    }

    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.set_tap(Some(writer.clone()));

    for (i, &entry) in setup.entries.iter().enumerate() {
        {
            let mut env = session.env(thread);
            env.enter_java_frame(format!("{}.main({}.java:5)", program.name, program.name));
        }
        let args = if i == 0 {
            setup.first_args.clone()
        } else {
            Vec::new()
        };
        let outcome = session.run_native(thread, entry, &args);
        {
            let mut env = session.env(thread);
            env.exit_java_frame();
        }
        if !matches!(outcome, RunOutcome::Completed(_)) {
            break;
        }
    }
    let _ = session.shutdown();
    session.set_tap(None);
    drop(session);

    let writer = Rc::try_unwrap(writer)
        .expect("tap detached; sole writer handle")
        .into_inner();
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::Trace;

    #[test]
    fn recording_is_deterministic_and_parses() {
        let p = program_by_name("LocalRefDangling").expect("figure 1 scenario");
        let a = record_program(&p);
        let b = record_program(&p);
        assert_eq!(a, b, "same program, byte-identical traces");
        let t = Trace::parse(&a).unwrap();
        assert_eq!(t.program(), "LocalRefDangling");
        assert!(!t.events.is_empty());
    }

    #[test]
    fn every_program_records_and_parses() {
        for p in microbench_programs().iter().chain(case_studies().iter()) {
            let bytes = record_program(p);
            let t = Trace::parse(&bytes)
                .unwrap_or_else(|e| panic!("{}: trace must parse: {e}", p.name));
            assert_eq!(t.program(), p.name, "{}", p.name);
            assert!(
                t.events
                    .iter()
                    .any(|e| matches!(e, crate::format::TraceRecord::NativeEnter { .. })),
                "{}: trace has at least one native entry",
                p.name
            );
        }
    }
}
