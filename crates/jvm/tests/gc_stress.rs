//! Deterministic GC stress tests: repeated collections over mixed object
//! graphs with every root kind active at once.

use minijvm::{FieldType, JValue, Jvm, MemberFlags, PinData, PinKind, PrimType, Slot};

#[test]
fn hundred_collections_with_mixed_roots() {
    let mut jvm = Jvm::new();
    let thread = jvm.main_thread();
    let node = jvm
        .registry_mut()
        .define("stress/Node")
        .field("next", "Lstress/Node;", MemberFlags::public())
        .field("label", "Ljava/lang/String;", MemberFlags::public())
        .build()
        .unwrap();
    let f_next = jvm
        .registry()
        .resolve_field(node, "next", "Lstress/Node;", false)
        .unwrap();
    let f_label = jvm
        .registry()
        .resolve_field(node, "label", "Ljava/lang/String;", false)
        .unwrap();

    // A ring of three nodes held by one global ref.
    let a = jvm.alloc_object(node);
    let b = jvm.alloc_object(node);
    let c = jvm.alloc_object(node);
    jvm.set_instance_field(a, f_next, Slot::Ref(Some(b)));
    jvm.set_instance_field(b, f_next, Slot::Ref(Some(c)));
    jvm.set_instance_field(c, f_next, Slot::Ref(Some(a)));
    let label = jvm.alloc_string("ring");
    jvm.set_instance_field(a, f_label, Slot::Ref(Some(label)));
    let ring = jvm.new_global(a);
    let ring_id = jvm.heap().id_of(a);

    // A weak ref to a separately-rooted string and one to garbage.
    let kept = jvm.alloc_string("kept");
    let kept_local = jvm.new_local(thread, kept);
    let weak_kept = jvm.new_weak_global(kept);
    let doomed = jvm.alloc_string("doomed");
    let weak_doomed = jvm.new_weak_global(doomed);

    // A monitor and an exception also act as roots.
    let monitored = jvm.alloc_object(node);
    jvm.monitor_enter(thread, monitored).unwrap();
    jvm.throw_new(thread, "java/lang/RuntimeException", "pending across GCs");

    // A pinned buffer (copied; not a root, must not confuse the sweep).
    let arr_id = {
        let arr = jvm.alloc_prim_array(PrimType::Int, 8);
        jvm.heap().id_of(arr)
    };
    jvm.pins_mut().acquire(
        arr_id,
        PinKind::ArrayElements,
        PinData::Prim(minijvm::PrimArray::zeroed(PrimType::Int, 8)),
    );

    for round in 0..100 {
        // Churn: allocate garbage every round.
        for i in 0..10 {
            let g = jvm.alloc_string(&format!("garbage-{round}-{i}"));
            let _ = g;
        }
        let stats = jvm.gc();
        // Ring (3 nodes + label) + kept string + monitored node +
        // pending exception (+ its message string) survive.
        assert!(stats.live >= 7, "round {round}: live {}", stats.live);

        // The ring is intact and walkable.
        let a = jvm.resolve(thread, ring).unwrap().unwrap();
        assert_eq!(jvm.heap().id_of(a), ring_id);
        let Slot::Ref(Some(b)) = jvm.get_instance_field(a, f_next) else {
            panic!()
        };
        let Slot::Ref(Some(c)) = jvm.get_instance_field(b, f_next) else {
            panic!()
        };
        let Slot::Ref(Some(back)) = jvm.get_instance_field(c, f_next) else {
            panic!()
        };
        assert_eq!(jvm.heap().id_of(back), ring_id, "ring closed");
        let Slot::Ref(Some(l)) = jvm.get_instance_field(a, f_label) else {
            panic!()
        };
        assert_eq!(jvm.string_value(l).as_deref(), Some("ring"));

        // Weak refs: the rooted one survives, the doomed one cleared.
        assert!(
            jvm.resolve(thread, weak_kept).unwrap().is_some(),
            "round {round}"
        );
        assert!(
            jvm.resolve(thread, weak_doomed).unwrap().is_none(),
            "round {round}"
        );
        // The local handle still resolves to the same string.
        let k = jvm.resolve(thread, kept_local).unwrap().unwrap();
        assert_eq!(jvm.string_value(k).as_deref(), Some("kept"));
    }

    assert_eq!(jvm.heap().collections(), 100);
    // Exception still pending with its message object alive.
    let exc = jvm.thread(thread).pending_exception().unwrap();
    assert!(jvm.describe_exception(exc).contains("pending across GCs"));
    // Termination report sees the monitor and the pin.
    let report = jvm.termination_report();
    assert_eq!(report.monitors, 1);
    assert_eq!(report.pinned_buffers, 1);
    assert_eq!(report.global_refs, 1);
    assert_eq!(report.weak_refs, 2);
}

#[test]
fn statics_root_their_referents_across_gc() {
    let mut jvm = Jvm::new();
    let holder = jvm
        .registry_mut()
        .define("stress/Statics")
        .field("CACHE", "Ljava/lang/String;", MemberFlags::public_static())
        .build()
        .unwrap();
    let f = jvm
        .registry()
        .resolve_field(holder, "CACHE", "Ljava/lang/String;", true)
        .unwrap();
    let s = jvm.alloc_string("cached statically");
    jvm.registry_mut().set_static_slot(f, Slot::Ref(Some(s)));
    for _ in 0..20 {
        jvm.gc();
    }
    let Slot::Ref(Some(oop)) = jvm.registry().static_slot(f) else {
        panic!("static reference lost");
    };
    assert_eq!(jvm.string_value(oop).as_deref(), Some("cached statically"));
    assert_eq!(jvm.heap().len(), 1, "only the cached string survives");
}

#[test]
fn ref_arrays_of_ref_arrays_survive() {
    let mut jvm = Jvm::new();
    let thread = jvm.main_thread();
    let inner_ty = FieldType::array(FieldType::object("java/lang/String"));
    let outer = jvm.alloc_ref_array(inner_ty.clone(), 3);
    let outer_ref = jvm.new_local(thread, outer);
    for i in 0..3 {
        let outer = jvm.resolve(thread, outer_ref).unwrap().unwrap();
        let inner = jvm.alloc_ref_array(FieldType::object("java/lang/String"), 2);
        let s = jvm.alloc_string(&format!("deep-{i}"));
        if let minijvm::Body::RefArray { elems } = &mut jvm.heap_mut().get_mut(inner).body {
            elems[0] = Some(s);
        }
        if let minijvm::Body::RefArray { elems } = &mut jvm.heap_mut().get_mut(outer).body {
            elems[i] = Some(inner);
        }
        jvm.gc();
    }
    // Everything reachable from the outer array survived all three GCs.
    let outer = jvm.resolve(thread, outer_ref).unwrap().unwrap();
    let minijvm::Body::RefArray { elems } = &jvm.heap().get(outer).body else {
        panic!()
    };
    let elems = elems.clone();
    for (i, inner) in elems.iter().enumerate() {
        let inner = inner.expect("inner array present");
        let minijvm::Body::RefArray { elems } = &jvm.heap().get(inner).body else {
            panic!()
        };
        let s = elems[0].expect("string present");
        assert_eq!(
            jvm.string_value(s).as_deref(),
            Some(format!("deep-{i}").as_str())
        );
    }
    let _ = JValue::Void;
}
