//! Property tests of the modified-UTF-8 codec and string plumbing.

use minijvm::{mutf8, Jvm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode = id over arbitrary UTF-16 code-unit sequences
    /// (including unpaired surrogates, which modified UTF-8 tolerates).
    #[test]
    fn utf16_roundtrip(units in proptest::collection::vec(any::<u16>(), 0..64)) {
        let encoded = mutf8::encode(&units);
        // The defining property: no embedded NUL bytes, ever.
        prop_assert!(!encoded.contains(&0));
        let decoded = mutf8::decode(&encoded).expect("own encoding is valid");
        prop_assert_eq!(decoded, units);
    }

    /// Strings roundtrip through the encoder and through the VM.
    #[test]
    fn string_roundtrip(s in "\\PC{0,32}") {
        let encoded = mutf8::encode_str(&s);
        prop_assert_eq!(mutf8::decode_to_string(&encoded).expect("valid"), s.clone());

        let mut jvm = Jvm::new();
        let oop = jvm.alloc_string(&s);
        prop_assert_eq!(jvm.string_value(oop).expect("is a string"), s);
    }

    /// The decoder never panics on arbitrary byte soup.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match mutf8::decode(&bytes) {
            Ok(units) => {
                // Whatever decodes must re-encode to a decodable form.
                let re = mutf8::encode(&units);
                prop_assert!(mutf8::decode(&re).is_ok());
            }
            Err(e) => prop_assert!(e.offset <= bytes.len()),
        }
    }

    /// Object identities are unique and stable across collections.
    #[test]
    fn object_ids_unique_and_stable(n in 1usize..40, keep in 0usize..40) {
        let mut jvm = Jvm::new();
        let thread = jvm.main_thread();
        let class = jvm.find_class("java/lang/Object").unwrap();
        let mut handles = Vec::new();
        let mut ids = std::collections::HashSet::new();
        for _ in 0..n {
            let oop = jvm.alloc_object(class);
            prop_assert!(ids.insert(jvm.heap().id_of(oop)), "ids unique");
            handles.push((jvm.new_local(thread, oop), jvm.heap().id_of(oop)));
        }
        // Keep one, release the rest, collect.
        let keep = keep % n;
        for (i, (h, _)) in handles.iter().enumerate() {
            if i != keep {
                jvm.thread_mut(thread).delete_local(*h).unwrap();
            }
        }
        jvm.gc();
        let (h, id) = handles[keep];
        let oop = jvm.resolve(thread, h).unwrap().unwrap();
        prop_assert_eq!(jvm.heap().id_of(oop), id);
        prop_assert_eq!(jvm.heap().len(), 1);
    }
}
