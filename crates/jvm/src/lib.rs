//! `minijvm` — a simulated Java virtual machine substrate for the Jinn
//! reproduction.
//!
//! The paper's Jinn tool interposes on the boundary between a production
//! JVM and native C code. This crate supplies the JVM side of that
//! boundary as a deterministic, dependency-free simulation with exactly
//! the entities the paper's eleven state machines observe:
//!
//! * a class registry with a real descriptor-grammar parser
//!   ([`descriptor`]), hierarchy-aware member resolution and assignability;
//! * an object heap with a **moving** (copying) collector ([`heap`]), so
//!   dangling references are genuinely dangling;
//! * per-thread local-reference frames with slot recycling ([`thread`]),
//!   global/weak-global handle tables;
//! * pending exceptions, monitors, pinned-or-copied buffers ([`pins`]),
//!   critical sections, and modified-UTF-8 strings ([`mutf8`]).
//!
//! The JNI function semantics, and everything about *checking*, live one
//! layer up in `minijni`; this crate is mechanism only.
//!
//! # Example
//!
//! ```
//! use minijvm::{Jvm, Slot};
//! use minijvm::class::MemberFlags;
//!
//! let mut jvm = Jvm::new();
//! let thread = jvm.main_thread();
//! let class = jvm
//!     .registry_mut()
//!     .define("demo/Greeter")
//!     .field("greeting", "Ljava/lang/String;", MemberFlags::public())
//!     .build()?;
//! let obj = jvm.alloc_object(class);
//! let hello = jvm.alloc_string("hello");
//! let fid = jvm.registry().resolve_field(class, "greeting", "Ljava/lang/String;", false)?;
//! jvm.set_instance_field(obj, fid, Slot::Ref(Some(hello)));
//!
//! // Handles survive a moving collection; raw addresses do not.
//! let handle = jvm.new_local(thread, obj);
//! jvm.gc();
//! let obj = jvm.resolve(thread, handle)?.expect("non-null");
//! assert!(jvm.get_instance_field(obj, fid).as_oop().is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class;
pub mod descriptor;
mod error;
mod handles;
pub mod heap;
pub mod mutf8;
pub mod pins;
mod safepoint;
pub mod thread;
mod value;
mod vm;

pub use class::{ClassId, ClassRegistry, FieldSlot, MemberFlags, MethodBody, Visibility};
pub use descriptor::{FieldType, MethodSig, PrimType, ReturnType};
pub use error::{DeathKind, JvmDeath, JvmError};
pub use handles::HandleSlab;
pub use heap::{Body, GcStats, Heap, PrimArray, Slot};
pub use pins::{PinData, PinError, PinId, PinKind};
pub use safepoint::{EpochHandle, EpochParticipants, SafepointRendezvous};
pub use thread::{EnvToken, RefFault, ThreadState, DEFAULT_LOCAL_CAPACITY};
pub use value::{FieldId, JRef, JValue, MethodId, ObjectId, Oop, RefKind, ThreadId};
pub use vm::{Jvm, MonitorError, TerminationReport};
