//! Parser and printer for JVM type descriptors and method signatures.
//!
//! The JNI expresses Java type information in strings — class names such as
//! `java/util/Collections` and method descriptors such as
//! `(Ljava/util/List;Ljava/util/Comparator;)V`. These strings are exactly
//! why standard static type checking cannot resolve JNI types (paper
//! Section 5.2); dynamically *parsing and checking* them is Jinn's job, and
//! this module supplies the grammar:
//!
//! ```text
//! FieldType  := BaseType | ObjectType | ArrayType
//! BaseType   := 'B' | 'C' | 'D' | 'F' | 'I' | 'J' | 'S' | 'Z'
//! ObjectType := 'L' ClassName ';'
//! ArrayType  := '[' FieldType
//! MethodDesc := '(' FieldType* ')' ( FieldType | 'V' )
//! ```

use std::fmt;

/// A Java primitive type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimType {
    /// `boolean` (`Z`)
    Boolean,
    /// `byte` (`B`)
    Byte,
    /// `char` (`C`)
    Char,
    /// `short` (`S`)
    Short,
    /// `int` (`I`)
    Int,
    /// `long` (`J`)
    Long,
    /// `float` (`F`)
    Float,
    /// `double` (`D`)
    Double,
}

impl PrimType {
    /// All primitive types in JNI declaration order.
    pub const ALL: [PrimType; 8] = [
        PrimType::Boolean,
        PrimType::Byte,
        PrimType::Char,
        PrimType::Short,
        PrimType::Int,
        PrimType::Long,
        PrimType::Float,
        PrimType::Double,
    ];

    /// The descriptor character (`Z`, `B`, …).
    pub fn descriptor_char(self) -> char {
        match self {
            PrimType::Boolean => 'Z',
            PrimType::Byte => 'B',
            PrimType::Char => 'C',
            PrimType::Short => 'S',
            PrimType::Int => 'I',
            PrimType::Long => 'J',
            PrimType::Float => 'F',
            PrimType::Double => 'D',
        }
    }

    /// The Java source-level name (`boolean`, `byte`, …).
    pub fn java_name(self) -> &'static str {
        match self {
            PrimType::Boolean => "boolean",
            PrimType::Byte => "byte",
            PrimType::Char => "char",
            PrimType::Short => "short",
            PrimType::Int => "int",
            PrimType::Long => "long",
            PrimType::Float => "float",
            PrimType::Double => "double",
        }
    }

    /// The JNI type-family name used in function names (`Boolean` in
    /// `GetBooleanArrayElements`, …).
    pub fn jni_name(self) -> &'static str {
        match self {
            PrimType::Boolean => "Boolean",
            PrimType::Byte => "Byte",
            PrimType::Char => "Char",
            PrimType::Short => "Short",
            PrimType::Int => "Int",
            PrimType::Long => "Long",
            PrimType::Float => "Float",
            PrimType::Double => "Double",
        }
    }

    /// Parses a descriptor character.
    pub fn from_descriptor_char(c: char) -> Option<PrimType> {
        Some(match c {
            'Z' => PrimType::Boolean,
            'B' => PrimType::Byte,
            'C' => PrimType::Char,
            'S' => PrimType::Short,
            'I' => PrimType::Int,
            'J' => PrimType::Long,
            'F' => PrimType::Float,
            'D' => PrimType::Double,
            _ => return None,
        })
    }
}

impl fmt::Display for PrimType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.java_name())
    }
}

/// A parsed field type: primitive, class, or array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// A primitive type.
    Prim(PrimType),
    /// A class or interface type; the name uses internal slashed form
    /// (`java/lang/String`).
    Object(String),
    /// An array with the given element type.
    Array(Box<FieldType>),
}

impl FieldType {
    /// Convenience constructor for an object type.
    pub fn object(name: impl Into<String>) -> FieldType {
        FieldType::Object(name.into())
    }

    /// Convenience constructor for an array type.
    pub fn array(elem: FieldType) -> FieldType {
        FieldType::Array(Box::new(elem))
    }

    /// Returns `true` for class/interface and array types (anything passed
    /// as a JNI reference).
    pub fn is_reference(&self) -> bool {
        !matches!(self, FieldType::Prim(_))
    }

    /// Renders the descriptor string (`I`, `Ljava/lang/String;`, `[I`, …).
    pub fn descriptor(&self) -> String {
        let mut s = String::new();
        self.write_descriptor(&mut s);
        s
    }

    fn write_descriptor(&self, out: &mut String) {
        match self {
            FieldType::Prim(p) => out.push(p.descriptor_char()),
            FieldType::Object(name) => {
                out.push('L');
                out.push_str(name);
                out.push(';');
            }
            FieldType::Array(elem) => {
                out.push('[');
                elem.write_descriptor(out);
            }
        }
    }

    /// Parses a single field descriptor; the whole input must be consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`DescriptorError`] describing the first malformed byte.
    pub fn parse(input: &str) -> Result<FieldType, DescriptorError> {
        let mut p = Parser::new(input);
        let t = p.field_type()?;
        p.finish()?;
        Ok(t)
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Prim(p) => write!(f, "{p}"),
            FieldType::Object(name) => f.write_str(&name.replace('/', ".")),
            FieldType::Array(elem) => write!(f, "{elem}[]"),
        }
    }
}

/// A parsed method return type: a field type or `void`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReturnType {
    /// `void` (`V`).
    Void,
    /// A value-returning method.
    Field(FieldType),
}

impl ReturnType {
    /// Renders the descriptor fragment.
    pub fn descriptor(&self) -> String {
        match self {
            ReturnType::Void => "V".to_string(),
            ReturnType::Field(t) => t.descriptor(),
        }
    }

    /// Returns the field type if non-void.
    pub fn as_field(&self) -> Option<&FieldType> {
        match self {
            ReturnType::Void => None,
            ReturnType::Field(t) => Some(t),
        }
    }
}

impl fmt::Display for ReturnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReturnType::Void => f.write_str("void"),
            ReturnType::Field(t) => write!(f, "{t}"),
        }
    }
}

/// A parsed method descriptor: parameter types and return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodSig {
    params: Vec<FieldType>,
    ret: ReturnType,
}

impl MethodSig {
    /// Builds a signature from parts.
    pub fn new(params: Vec<FieldType>, ret: ReturnType) -> MethodSig {
        MethodSig { params, ret }
    }

    /// Parses a method descriptor such as
    /// `(Ljava/util/List;Ljava/util/Comparator;)V`.
    ///
    /// # Errors
    ///
    /// Returns a [`DescriptorError`] if the descriptor is malformed or has
    /// trailing input.
    pub fn parse(input: &str) -> Result<MethodSig, DescriptorError> {
        let mut p = Parser::new(input);
        p.expect('(')?;
        let mut params = Vec::new();
        while p.peek() != Some(')') {
            if p.peek().is_none() {
                return Err(p.error(DescriptorErrorKind::UnexpectedEnd));
            }
            params.push(p.field_type()?);
        }
        p.expect(')')?;
        let ret = if p.peek() == Some('V') {
            p.bump();
            ReturnType::Void
        } else {
            ReturnType::Field(p.field_type()?)
        };
        p.finish()?;
        Ok(MethodSig { params, ret })
    }

    /// Parameter types, in declaration order.
    pub fn params(&self) -> &[FieldType] {
        &self.params
    }

    /// Return type.
    pub fn ret(&self) -> &ReturnType {
        &self.ret
    }

    /// Renders the full descriptor string.
    pub fn descriptor(&self) -> String {
        let mut s = String::from("(");
        for p in &self.params {
            s.push_str(&p.descriptor());
        }
        s.push(')');
        s.push_str(&self.ret.descriptor());
        s
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> {}", self.ret)
    }
}

/// Why a descriptor failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescriptorErrorKind {
    /// Input ended in the middle of a type.
    UnexpectedEnd,
    /// An unexpected character was found.
    UnexpectedChar(char),
    /// A class name was empty or contained an illegal character.
    BadClassName,
    /// Input continued after a complete descriptor.
    TrailingInput,
}

/// Error produced by the descriptor parser, with the byte offset at which
/// parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescriptorError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub kind: DescriptorErrorKind,
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DescriptorErrorKind::UnexpectedEnd => {
                write!(f, "descriptor ended unexpectedly at offset {}", self.offset)
            }
            DescriptorErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character `{c}` at offset {}", self.offset)
            }
            DescriptorErrorKind::BadClassName => {
                write!(f, "malformed class name at offset {}", self.offset)
            }
            DescriptorErrorKind::TrailingInput => {
                write!(
                    f,
                    "trailing input after descriptor at offset {}",
                    self.offset
                )
            }
        }
    }
}

impl std::error::Error for DescriptorError {}

struct Parser<'a> {
    input: &'a str,
    chars: std::str::CharIndices<'a>,
    peeked: Option<(usize, char)>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input,
            chars: input.char_indices(),
            peeked: None,
        }
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked.map(|(_, c)| c)
    }

    fn offset(&mut self) -> usize {
        match self.peeked {
            Some((i, _)) => i,
            None => self.input.len(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        self.peeked = None;
        c
    }

    fn error(&mut self, kind: DescriptorErrorKind) -> DescriptorError {
        let _ = self.peek();
        DescriptorError {
            offset: self.offset(),
            kind,
        }
    }

    fn expect(&mut self, want: char) -> Result<(), DescriptorError> {
        match self.peek() {
            Some(c) if c == want => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.error(DescriptorErrorKind::UnexpectedChar(c))),
            None => Err(self.error(DescriptorErrorKind::UnexpectedEnd)),
        }
    }

    fn field_type(&mut self) -> Result<FieldType, DescriptorError> {
        match self.peek() {
            None => Err(self.error(DescriptorErrorKind::UnexpectedEnd)),
            Some('[') => {
                self.bump();
                Ok(FieldType::Array(Box::new(self.field_type()?)))
            }
            Some('L') => {
                self.bump();
                let mut name = String::new();
                loop {
                    match self.peek() {
                        None => return Err(self.error(DescriptorErrorKind::UnexpectedEnd)),
                        Some(';') => {
                            self.bump();
                            break;
                        }
                        Some(c) if is_class_name_char(c) => {
                            name.push(c);
                            self.bump();
                        }
                        Some(_) => return Err(self.error(DescriptorErrorKind::BadClassName)),
                    }
                }
                if name.is_empty()
                    || name.starts_with('/')
                    || name.ends_with('/')
                    || name.contains("//")
                {
                    return Err(self.error(DescriptorErrorKind::BadClassName));
                }
                Ok(FieldType::Object(name))
            }
            Some(c) => match PrimType::from_descriptor_char(c) {
                Some(p) => {
                    self.bump();
                    Ok(FieldType::Prim(p))
                }
                None => Err(self.error(DescriptorErrorKind::UnexpectedChar(c))),
            },
        }
    }

    fn finish(&mut self) -> Result<(), DescriptorError> {
        if self.peek().is_some() {
            Err(self.error(DescriptorErrorKind::TrailingInput))
        } else {
            Ok(())
        }
    }
}

fn is_class_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '$' || c == '/'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_primitives() {
        for p in PrimType::ALL {
            let t = FieldType::parse(&p.descriptor_char().to_string()).unwrap();
            assert_eq!(t, FieldType::Prim(p));
        }
    }

    #[test]
    fn parses_object_type() {
        let t = FieldType::parse("Ljava/lang/String;").unwrap();
        assert_eq!(t, FieldType::object("java/lang/String"));
        assert_eq!(t.descriptor(), "Ljava/lang/String;");
        assert_eq!(t.to_string(), "java.lang.String");
    }

    #[test]
    fn parses_nested_arrays() {
        let t = FieldType::parse("[[I").unwrap();
        assert_eq!(
            t,
            FieldType::array(FieldType::array(FieldType::Prim(PrimType::Int)))
        );
        assert_eq!(t.to_string(), "int[][]");
    }

    #[test]
    fn parses_method_descriptor() {
        let sig = MethodSig::parse("(Ljava/util/List;Ljava/util/Comparator;)V").unwrap();
        assert_eq!(sig.params().len(), 2);
        assert_eq!(sig.ret(), &ReturnType::Void);
        assert_eq!(
            sig.descriptor(),
            "(Ljava/util/List;Ljava/util/Comparator;)V"
        );
    }

    #[test]
    fn parses_complex_method() {
        let sig = MethodSig::parse("(I[[Ljava/lang/Object;J)[B").unwrap();
        assert_eq!(sig.params().len(), 3);
        assert_eq!(
            sig.ret(),
            &ReturnType::Field(FieldType::array(FieldType::Prim(PrimType::Byte)))
        );
    }

    #[test]
    fn rejects_unterminated_class() {
        let e = FieldType::parse("Ljava/lang/String").unwrap_err();
        assert_eq!(e.kind, DescriptorErrorKind::UnexpectedEnd);
    }

    #[test]
    fn rejects_empty_class_name() {
        let e = FieldType::parse("L;").unwrap_err();
        assert_eq!(e.kind, DescriptorErrorKind::BadClassName);
    }

    #[test]
    fn rejects_bad_slashes() {
        assert!(FieldType::parse("L/a;").is_err());
        assert!(FieldType::parse("La/;").is_err());
        assert!(FieldType::parse("La//b;").is_err());
    }

    #[test]
    fn rejects_trailing_input() {
        let e = FieldType::parse("II").unwrap_err();
        assert_eq!(e.kind, DescriptorErrorKind::TrailingInput);
        let e = MethodSig::parse("()VX").unwrap_err();
        assert_eq!(e.kind, DescriptorErrorKind::TrailingInput);
    }

    #[test]
    fn rejects_void_parameter() {
        assert!(MethodSig::parse("(V)V").is_err());
    }

    #[test]
    fn rejects_missing_paren() {
        assert!(MethodSig::parse("I)V").is_err());
        assert!(MethodSig::parse("(I V").is_err());
    }

    #[test]
    fn error_offsets_point_at_failure() {
        let e = FieldType::parse("[Q").unwrap_err();
        assert_eq!(e.offset, 1);
        assert_eq!(e.kind, DescriptorErrorKind::UnexpectedChar('Q'));
    }

    #[test]
    fn display_of_signature() {
        let sig = MethodSig::parse("(ILjava/lang/String;)Z").unwrap();
        assert_eq!(sig.to_string(), "(int, java.lang.String) -> boolean");
    }

    #[test]
    fn roundtrip_print_parse() {
        for d in ["()V", "(I)I", "([[Ljava/a$b/C_1;DJ)[Ljava/lang/String;"] {
            let sig = MethodSig::parse(d).unwrap();
            assert_eq!(sig.descriptor(), *d);
        }
    }
}
