//! Modified UTF-8, the string encoding used by the JNI.
//!
//! JNI strings are sequences of UTF-16 code units; `GetStringUTFChars` and
//! friends expose them to C in *modified* UTF-8, which differs from
//! standard UTF-8 in two ways (JVM spec §4.4.7):
//!
//! * `U+0000` is encoded as the two-byte sequence `0xC0 0x80`, so encoded
//!   strings never contain an embedded NUL byte;
//! * supplementary characters are encoded as two three-byte sequences (one
//!   per UTF-16 surrogate), i.e. CESU-8 style, never as four-byte UTF-8.
//!
//! Note that, per the paper's pitfall 8, the JNI does **not** NUL-terminate
//! the *UTF-16* form (`GetStringChars`); C code that assumes termination
//! reads out of bounds. The modified-UTF-8 form *is* NUL-terminated by the
//! real JNI; this module only converts, termination is the buffer layer's
//! concern.

use std::fmt;

/// Error decoding a modified-UTF-8 byte sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mutf8Error {
    /// Byte offset of the malformed sequence.
    pub offset: usize,
}

impl fmt::Display for Mutf8Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed modified-UTF-8 at byte {}", self.offset)
    }
}

impl std::error::Error for Mutf8Error {}

/// Encodes UTF-16 code units into modified UTF-8.
///
/// Unpaired surrogates are encoded as their individual three-byte forms
/// (modified UTF-8 tolerates them, unlike standard UTF-8).
pub fn encode(units: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(units.len());
    for &u in units {
        match u {
            0x0000 => out.extend_from_slice(&[0xC0, 0x80]),
            0x0001..=0x007F => out.push(u as u8),
            0x0080..=0x07FF => {
                out.push(0xC0 | (u >> 6) as u8);
                out.push(0x80 | (u & 0x3F) as u8);
            }
            _ => {
                out.push(0xE0 | (u >> 12) as u8);
                out.push(0x80 | ((u >> 6) & 0x3F) as u8);
                out.push(0x80 | (u & 0x3F) as u8);
            }
        }
    }
    out
}

/// Decodes modified UTF-8 into UTF-16 code units.
///
/// # Errors
///
/// Returns [`Mutf8Error`] on truncated sequences, bad continuation bytes,
/// embedded raw NUL bytes, or four-byte (standard UTF-8) sequences, which
/// modified UTF-8 forbids.
pub fn decode(bytes: &[u8]) -> Result<Vec<u16>, Mutf8Error> {
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b0 = bytes[i];
        let err = Mutf8Error { offset: i };
        match b0 {
            // A raw NUL is not a valid encoding of anything in modified
            // UTF-8 (U+0000 must use the two-byte form).
            0x00 => return Err(err),
            0x01..=0x7F => {
                out.push(b0 as u16);
                i += 1;
            }
            0xC0..=0xDF => {
                let b1 = *bytes.get(i + 1).ok_or(err)?;
                if b1 & 0xC0 != 0x80 {
                    return Err(err);
                }
                out.push((((b0 & 0x1F) as u16) << 6) | (b1 & 0x3F) as u16);
                i += 2;
            }
            0xE0..=0xEF => {
                let b1 = *bytes.get(i + 1).ok_or(err)?;
                let b2 = *bytes.get(i + 2).ok_or(err)?;
                if b1 & 0xC0 != 0x80 || b2 & 0xC0 != 0x80 {
                    return Err(err);
                }
                out.push(
                    (((b0 & 0x0F) as u16) << 12) | (((b1 & 0x3F) as u16) << 6) | (b2 & 0x3F) as u16,
                );
                i += 3;
            }
            // 0x80..=0xBF: stray continuation; 0xF0..: four-byte form.
            _ => return Err(err),
        }
    }
    Ok(out)
}

/// Converts a Rust string to UTF-16 code units.
pub fn str_to_utf16(s: &str) -> Vec<u16> {
    s.encode_utf16().collect()
}

/// Converts UTF-16 code units to a Rust string, replacing unpaired
/// surrogates with U+FFFD.
pub fn utf16_to_string(units: &[u16]) -> String {
    String::from_utf16_lossy(units)
}

/// Encodes a Rust string directly to modified UTF-8.
pub fn encode_str(s: &str) -> Vec<u8> {
    encode(&str_to_utf16(s))
}

/// Decodes modified UTF-8 directly to a Rust string.
///
/// # Errors
///
/// Returns [`Mutf8Error`] if the bytes are not valid modified UTF-8.
pub fn decode_to_string(bytes: &[u8]) -> Result<String, Mutf8Error> {
    Ok(utf16_to_string(&decode(bytes)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_roundtrip() {
        let units = str_to_utf16("hello, JNI");
        let enc = encode(&units);
        assert_eq!(enc, b"hello, JNI");
        assert_eq!(decode(&enc).unwrap(), units);
    }

    #[test]
    fn nul_uses_two_byte_form() {
        let enc = encode(&[0x0000]);
        assert_eq!(enc, vec![0xC0, 0x80]);
        assert_eq!(decode(&enc).unwrap(), vec![0x0000]);
        // Encoded strings never contain a raw NUL byte.
        assert!(!encode(&str_to_utf16("a\0b")).contains(&0x00));
    }

    #[test]
    fn raw_nul_rejected() {
        assert_eq!(decode(&[0x00]).unwrap_err().offset, 0);
        assert_eq!(decode(b"ab\x00").unwrap_err().offset, 2);
    }

    #[test]
    fn two_and_three_byte_roundtrip() {
        // U+00E9 (é), U+20AC (€)
        let units = str_to_utf16("é€");
        let enc = encode(&units);
        assert_eq!(decode(&enc).unwrap(), units);
    }

    #[test]
    fn supplementary_uses_surrogate_pairs_not_four_bytes() {
        // U+1F600 encodes as a surrogate pair -> two 3-byte sequences.
        let units = str_to_utf16("😀");
        assert_eq!(units.len(), 2);
        let enc = encode(&units);
        assert_eq!(enc.len(), 6);
        assert_eq!(decode(&enc).unwrap(), units);
        assert_eq!(decode_to_string(&enc).unwrap(), "😀");
    }

    #[test]
    fn four_byte_utf8_rejected() {
        // Standard UTF-8 for U+1F600.
        let std_utf8 = "😀".as_bytes();
        assert!(decode(std_utf8).is_err());
    }

    #[test]
    fn truncated_sequences_rejected() {
        assert!(decode(&[0xC3]).is_err());
        assert!(decode(&[0xE2, 0x82]).is_err());
        assert!(decode(&[0xE2, 0xFF, 0xAC]).is_err());
        assert!(decode(&[0x80]).is_err());
    }

    #[test]
    fn unpaired_surrogate_tolerated() {
        let units = vec![0xD800];
        let enc = encode(&units);
        assert_eq!(decode(&enc).unwrap(), units);
        // Lossy conversion to String replaces it.
        assert_eq!(utf16_to_string(&units), "\u{FFFD}");
    }
}
