//! The `Jvm` façade: one simulated Java virtual machine instance.

use jinn_obs::{event::NO_THREAD, LabelId, Recorder};

use crate::class::{names, ClassId, ClassRegistry, FieldSlot};
use crate::descriptor::{FieldType, PrimType};
use crate::handles::HandleSlab;
use crate::heap::{Body, GcStats, Heap, PrimArray, Slot};
use crate::mutf8;
use crate::pins::PinTable;
use crate::thread::{EnvToken, RefFault, ThreadState};
use crate::value::{JRef, ObjectId, Oop, RefKind, ThreadId};

/// Error from monitor operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorError {
    /// Another thread owns the monitor; a real thread would block, and in
    /// the single-threaded harness this is reported instead of hanging.
    WouldBlock {
        /// Current owner.
        owner: ThreadId,
    },
    /// `MonitorExit` by a thread that does not own the monitor.
    NotOwner,
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::WouldBlock { owner } => {
                write!(f, "monitor owned by {owner}; entering would block")
            }
            MonitorError::NotOwner => f.write_str("thread does not own the monitor"),
        }
    }
}

impl std::error::Error for MonitorError {}

#[derive(Debug, Clone)]
struct MonitorEntry {
    object: ObjectId,
    /// Keeps the monitored object alive; always `Some` while the entry
    /// exists (an `Option` only so the GC can update it in place).
    target: Option<Oop>,
    owner: ThreadId,
    count: u32,
}

/// One simulated JVM: class registry, heap, threads, reference tables,
/// monitors and pinned buffers.
///
/// The `Jvm` exposes *mechanism* only; the JNI function semantics (and all
/// checking) live in the `minijni` crate on top of this. Everything here
/// is deterministic: threads are logical, GC runs at explicit safepoints.
#[derive(Debug)]
pub struct Jvm {
    registry: ClassRegistry,
    heap: Heap,
    threads: Vec<ThreadState>,
    globals: HandleSlab,
    weaks: HandleSlab,
    /// Class-mirror objects, indexed by `ClassId` (GC roots).
    mirrors: Vec<Option<Oop>>,
    monitors: Vec<MonitorEntry>,
    pins: PinTable,
    next_env: u32,
    /// Run a GC automatically every N safepoints (None = only explicit).
    auto_gc_period: Option<u64>,
    safepoints: u64,
    deferred_gcs: u64,
    recorder: Recorder,
    safepoints_label: LabelId,
    deferred_label: LabelId,
    collections_label: LabelId,
}

impl Jvm {
    /// Creates a JVM with the core classes bootstrapped and one main
    /// thread.
    pub fn new() -> Jvm {
        let mut jvm = Jvm {
            registry: ClassRegistry::with_core_classes(),
            heap: Heap::new(),
            threads: Vec::new(),
            globals: HandleSlab::new(RefKind::Global),
            weaks: HandleSlab::new(RefKind::WeakGlobal),
            mirrors: Vec::new(),
            monitors: Vec::new(),
            pins: PinTable::new(),
            next_env: 0xE0,
            auto_gc_period: None,
            safepoints: 0,
            deferred_gcs: 0,
            recorder: Recorder::disabled(),
            safepoints_label: LabelId(0),
            deferred_label: LabelId(0),
            collections_label: LabelId(0),
        };
        jvm.spawn_thread();
        jvm
    }

    /// The class registry.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// Mutable class registry (define classes, bind natives).
    pub fn registry_mut(&mut self) -> &mut ClassRegistry {
        &mut self.registry
    }

    /// The heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable heap access.
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The pinned-buffer table.
    pub fn pins(&self) -> &PinTable {
        &self.pins
    }

    /// Mutable pinned-buffer table.
    pub fn pins_mut(&mut self) -> &mut PinTable {
        &mut self.pins
    }

    /// Configures automatic GC every `period` safepoints (`None` disables).
    pub fn set_auto_gc_period(&mut self, period: Option<u64>) {
        self.auto_gc_period = period;
    }

    /// Attaches an observability recorder. GC activity and pin traffic
    /// are recorded from then on.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.pins.set_recorder(recorder.clone());
        self.safepoints_label = recorder.intern("gc.safepoints");
        self.deferred_label = recorder.intern("gc.deferred");
        self.collections_label = recorder.intern("gc.collections");
        self.recorder = recorder;
    }

    /// The attached recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of GCs that were due at a safepoint but deferred because a
    /// thread held a JNI critical section.
    pub fn deferred_gcs(&self) -> u64 {
        self.deferred_gcs
    }

    // ----- threads ------------------------------------------------------

    /// The main thread (always exists).
    pub fn main_thread(&self) -> ThreadId {
        ThreadId(0)
    }

    /// Spawns a new logical thread and returns its id.
    pub fn spawn_thread(&mut self) -> ThreadId {
        let id = ThreadId(self.threads.len() as u16);
        let env = EnvToken(self.next_env);
        self.next_env += 1;
        self.threads.push(ThreadState::new(id, env));
        id
    }

    /// All thread ids.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.threads.len() as u16).map(ThreadId)
    }

    /// Read access to a thread.
    ///
    /// # Panics
    ///
    /// Panics on an unknown thread id.
    pub fn thread(&self, id: ThreadId) -> &ThreadState {
        &self.threads[id.0 as usize]
    }

    /// Mutable access to a thread.
    ///
    /// # Panics
    ///
    /// Panics on an unknown thread id.
    pub fn thread_mut(&mut self, id: ThreadId) -> &mut ThreadState {
        &mut self.threads[id.0 as usize]
    }

    /// Returns the thread owning the given `JNIEnv*` token, if any.
    pub fn thread_of_env(&self, env: EnvToken) -> Option<ThreadId> {
        self.threads.iter().find(|t| t.env() == env).map(|t| t.id())
    }

    // ----- references ---------------------------------------------------

    /// Resolves a reference to a heap address.
    ///
    /// Returns `Ok(None)` for the null reference and for live weak-global
    /// references whose target was collected (the JNI treats both as
    /// null).
    ///
    /// # Errors
    ///
    /// Returns a [`RefFault`] for dangling/forged handles and for local
    /// references used from a thread other than their owner.
    pub fn resolve(&self, current: ThreadId, r: JRef) -> Result<Option<Oop>, RefFault> {
        match r.kind() {
            RefKind::Null => Ok(None),
            RefKind::Local => {
                if r.owner() != current {
                    return Err(RefFault::WrongThread {
                        owner: r.owner(),
                        current,
                    });
                }
                let owner = self
                    .threads
                    .get(r.owner().0 as usize)
                    .ok_or(RefFault::OutOfRange {
                        kind: RefKind::Local,
                    })?;
                owner.resolve_local(r).map(Some)
            }
            RefKind::Global => self.globals.resolve(r),
            RefKind::WeakGlobal => self.weaks.resolve(r),
        }
    }

    /// Like [`Jvm::resolve`] but ignores local-reference thread ownership —
    /// the mechanical resolution a permissive real JVM performs when C code
    /// "gets lucky" using another thread's local reference.
    pub fn resolve_ignoring_thread(&self, r: JRef) -> Result<Option<Oop>, RefFault> {
        match r.kind() {
            RefKind::Local => {
                let owner = self
                    .threads
                    .get(r.owner().0 as usize)
                    .ok_or(RefFault::OutOfRange {
                        kind: RefKind::Local,
                    })?;
                owner.resolve_local(r).map(Some)
            }
            _ => self.resolve(self.main_thread(), r),
        }
    }

    /// Creates a local reference to `target` on `thread`.
    pub fn new_local(&mut self, thread: ThreadId, target: Oop) -> JRef {
        self.thread_mut(thread).acquire_local(target)
    }

    /// Creates a global reference to `target`.
    pub fn new_global(&mut self, target: Oop) -> JRef {
        self.globals.acquire(target)
    }

    /// Creates a weak-global reference to `target`.
    pub fn new_weak_global(&mut self, target: Oop) -> JRef {
        self.weaks.acquire(target)
    }

    /// Deletes a global reference.
    ///
    /// # Errors
    ///
    /// Returns a [`RefFault`] on double-free or forged handles.
    pub fn delete_global(&mut self, r: JRef) -> Result<(), RefFault> {
        self.globals.delete(r)
    }

    /// Deletes a weak-global reference.
    ///
    /// # Errors
    ///
    /// Returns a [`RefFault`] on double-free or forged handles.
    pub fn delete_weak_global(&mut self, r: JRef) -> Result<(), RefFault> {
        self.weaks.delete(r)
    }

    /// Live global-reference count (leak sweeps).
    pub fn global_count(&self) -> usize {
        self.globals.live_count()
    }

    /// Live weak-global-reference count.
    pub fn weak_global_count(&self) -> usize {
        self.weaks.live_count()
    }

    // ----- classes & mirrors --------------------------------------------

    /// Looks up a class by internal name.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        self.registry.class_by_name(name)
    }

    /// The `java.lang.Class` mirror object for a class (allocated lazily;
    /// a GC root thereafter).
    pub fn mirror_oop(&mut self, class: ClassId) -> Oop {
        if self.mirrors.len() <= class.index() {
            self.mirrors.resize(class.index() + 1, None);
        }
        if let Some(oop) = self.mirrors[class.index()] {
            return oop;
        }
        let class_class = self
            .registry
            .class_by_name(names::CLASS)
            .expect("Class bootstrapped");
        let oop = self.heap.alloc_class_mirror(class_class, class);
        self.mirrors[class.index()] = Some(oop);
        oop
    }

    /// If `oop` is a class mirror, the mirrored class.
    pub fn class_of_mirror(&self, oop: Oop) -> Option<ClassId> {
        match &self.heap.get(oop).body {
            Body::ClassMirror(c) => Some(*c),
            _ => None,
        }
    }

    /// The runtime class of the object at `oop`.
    pub fn class_of(&self, oop: Oop) -> ClassId {
        self.heap.get(oop).class
    }

    /// Instance-of test against the class hierarchy.
    pub fn is_instance_of(&self, oop: Oop, class: ClassId) -> bool {
        self.registry.is_assignable(self.class_of(oop), class)
    }

    // ----- allocation ---------------------------------------------------

    fn default_fields(&self, class: ClassId) -> Vec<Slot> {
        self.registry
            .class(class)
            .layout()
            .iter()
            .map(|&fid| {
                let ty = &self.registry.field(fid).expect("layout field").ty;
                ClassRegistry::default_slot(ty)
            })
            .collect()
    }

    /// Allocates an instance of `class` with zero/null fields.
    pub fn alloc_object(&mut self, class: ClassId) -> Oop {
        let fields = self.default_fields(class);
        self.heap.alloc_object(class, fields)
    }

    /// Allocates a `java.lang.String` from UTF-16 code units.
    pub fn alloc_string_utf16(&mut self, chars: Vec<u16>) -> Oop {
        let string = self
            .registry
            .class_by_name(names::STRING)
            .expect("String bootstrapped");
        self.heap.alloc_string(string, chars)
    }

    /// Allocates a `java.lang.String` from a Rust string.
    pub fn alloc_string(&mut self, s: &str) -> Oop {
        self.alloc_string_utf16(mutf8::str_to_utf16(s))
    }

    /// Allocates a primitive array.
    pub fn alloc_prim_array(&mut self, elem: PrimType, len: usize) -> Oop {
        let class = self.registry.prim_array_class(elem);
        self.heap
            .alloc_prim_array(class, PrimArray::zeroed(elem, len))
    }

    /// Allocates a reference array with null elements.
    pub fn alloc_ref_array(&mut self, elem: FieldType, len: usize) -> Oop {
        let class = self.registry.array_class(elem);
        self.heap.alloc_ref_array(class, len)
    }

    /// The UTF-16 contents of a string object, if it is one.
    pub fn string_chars(&self, oop: Oop) -> Option<&[u16]> {
        match &self.heap.get(oop).body {
            Body::Str { chars } => Some(chars),
            _ => None,
        }
    }

    /// The Rust-string contents of a string object, if it is one.
    pub fn string_value(&self, oop: Oop) -> Option<String> {
        self.string_chars(oop).map(mutf8::utf16_to_string)
    }

    // ----- fields -------------------------------------------------------

    /// Reads an instance field slot.
    ///
    /// # Panics
    ///
    /// Panics if the field is static or the object has no such slot
    /// (callers validate IDs first).
    pub fn get_instance_field(&self, oop: Oop, field: crate::value::FieldId) -> Slot {
        let fi = self.registry.field(field).expect("valid field id");
        let FieldSlot::Instance(i) = fi.slot else {
            panic!("field `{}` is static", fi.name);
        };
        match &self.heap.get(oop).body {
            Body::Object { fields } => fields[i as usize],
            _ => panic!("not an ordinary object"),
        }
    }

    /// Writes an instance field slot.
    ///
    /// # Panics
    ///
    /// As for [`Jvm::get_instance_field`].
    pub fn set_instance_field(&mut self, oop: Oop, field: crate::value::FieldId, value: Slot) {
        let fi = self.registry.field(field).expect("valid field id");
        let FieldSlot::Instance(i) = fi.slot else {
            panic!("field `{}` is static", fi.name);
        };
        match &mut self.heap.get_mut(oop).body {
            Body::Object { fields } => fields[i as usize] = value,
            _ => panic!("not an ordinary object"),
        }
    }

    // ----- exceptions ---------------------------------------------------

    /// Allocates a throwable of `class_name` with the given message and
    /// makes it pending on `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `class_name` is not a registered class.
    pub fn throw_new(&mut self, thread: ThreadId, class_name: &str, message: &str) -> Oop {
        let class = self
            .find_class(class_name)
            .unwrap_or_else(|| panic!("throwable class `{class_name}` not registered"));
        let msg = self.alloc_string(message);
        let exc = self.alloc_object(class);
        if let Ok(fid) = self
            .registry
            .resolve_field(class, "message", "Ljava/lang/String;", false)
        {
            self.set_instance_field(exc, fid, Slot::Ref(Some(msg)));
        }
        self.thread_mut(thread).set_pending_exception(Some(exc));
        exc
    }

    /// Makes an existing throwable pending on `thread`.
    pub fn throw_existing(&mut self, thread: ThreadId, exception: Oop) {
        self.thread_mut(thread)
            .set_pending_exception(Some(exception));
    }

    /// The message of a throwable, if it has one.
    pub fn exception_message(&self, exc: Oop) -> Option<String> {
        let class = self.class_of(exc);
        let fid = self
            .registry
            .resolve_field(class, "message", "Ljava/lang/String;", false)
            .ok()?;
        match self.get_instance_field(exc, fid) {
            Slot::Ref(Some(s)) => self.string_value(s),
            _ => None,
        }
    }

    /// Renders `ClassName: message` for a pending throwable.
    pub fn describe_exception(&self, exc: Oop) -> String {
        let class = self.registry.class(self.class_of(exc)).dotted_name();
        match self.exception_message(exc) {
            Some(m) => format!("{class}: {m}"),
            None => class,
        }
    }

    // ----- monitors -----------------------------------------------------

    /// Enters the monitor of the object at `oop`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::WouldBlock`] if another thread owns it.
    pub fn monitor_enter(&mut self, thread: ThreadId, oop: Oop) -> Result<(), MonitorError> {
        let object = self.heap.id_of(oop);
        if let Some(m) = self.monitors.iter_mut().find(|m| m.object == object) {
            if m.owner == thread {
                m.count += 1;
                Ok(())
            } else {
                Err(MonitorError::WouldBlock { owner: m.owner })
            }
        } else {
            self.monitors.push(MonitorEntry {
                object,
                target: Some(oop),
                owner: thread,
                count: 1,
            });
            Ok(())
        }
    }

    /// Exits the monitor of the object at `oop`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::NotOwner`] if the thread does not own it.
    pub fn monitor_exit(&mut self, thread: ThreadId, oop: Oop) -> Result<(), MonitorError> {
        let object = self.heap.id_of(oop);
        let Some(pos) = self
            .monitors
            .iter()
            .position(|m| m.object == object && m.owner == thread)
        else {
            return Err(MonitorError::NotOwner);
        };
        self.monitors[pos].count -= 1;
        if self.monitors[pos].count == 0 {
            self.monitors.remove(pos);
        }
        Ok(())
    }

    /// Monitors currently held by `thread` (entry counts included) — the
    /// leak sweep at VM death.
    pub fn monitors_held(&self, thread: ThreadId) -> Vec<(ObjectId, u32)> {
        self.monitors
            .iter()
            .filter(|m| m.owner == thread)
            .map(|m| (m.object, m.count))
            .collect()
    }

    /// Total number of held monitors.
    pub fn monitor_count(&self) -> usize {
        self.monitors.len()
    }

    // ----- GC -----------------------------------------------------------

    /// Returns `true` if any thread is inside a JNI critical section
    /// (during which the collector must not run).
    pub fn any_critical_section(&self) -> bool {
        self.threads.iter().any(|t| t.in_critical_section())
    }

    /// A GC safepoint: runs a collection if the automatic period has
    /// elapsed and no critical section is active. Called by the JNI layer
    /// at every language transition.
    pub fn safepoint(&mut self) -> Option<GcStats> {
        self.safepoints += 1;
        self.recorder.count_id(self.safepoints_label, 1);
        let period = self.auto_gc_period?;
        if !self.safepoints.is_multiple_of(period) {
            return None;
        }
        if self.any_critical_section() {
            self.deferred_gcs += 1;
            self.recorder.count_id(self.deferred_label, 1);
            self.recorder.gc_safepoint_id(NO_THREAD, false);
            return None;
        }
        self.recorder.gc_safepoint_id(NO_THREAD, true);
        Some(self.gc())
    }

    /// Runs a copying collection now. All reference tables and internal
    /// roots are updated; stale `Oop`s held elsewhere become invalid.
    pub fn gc(&mut self) -> GcStats {
        let Jvm {
            registry,
            heap,
            threads,
            globals,
            weaks,
            mirrors,
            monitors,
            ..
        } = self;
        let mut roots: Vec<&mut Option<Oop>> = Vec::new();
        for t in threads.iter_mut() {
            roots.extend(t.roots_mut());
        }
        roots.extend(globals.roots_mut());
        roots.extend(registry.static_slots_mut().filter_map(|s| match s {
            Slot::Ref(r) => Some(r),
            _ => None,
        }));
        roots.extend(mirrors.iter_mut());
        for m in monitors.iter_mut() {
            roots.push(&mut m.target);
        }
        let mut strong = roots.into_iter();
        let mut weak = weaks.roots_mut();
        let stats = heap.collect(&mut [&mut strong], &mut [&mut weak]);
        self.recorder.count_id(self.collections_label, 1);
        self.recorder
            .gc_id(NO_THREAD, stats.live as u64, stats.collected as u64);
        stats
    }
}

impl Default for Jvm {
    fn default() -> Self {
        Jvm::new()
    }
}

/// A snapshot of leak-relevant VM state at termination, for the resource
/// machines' end-of-program sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminationReport {
    /// Live global references.
    pub global_refs: usize,
    /// Live weak-global references.
    pub weak_refs: usize,
    /// Unreleased pinned buffers.
    pub pinned_buffers: usize,
    /// Held monitors (per thread, entry counts summed).
    pub monitors: usize,
}

impl Jvm {
    /// Gathers the termination leak report.
    pub fn termination_report(&self) -> TerminationReport {
        TerminationReport {
            global_refs: self.global_count(),
            weak_refs: self.weak_global_count(),
            pinned_buffers: self.pins.live_count(),
            monitors: self.monitors.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::MemberFlags;

    #[test]
    fn threads_and_env_tokens() {
        let mut jvm = Jvm::new();
        let main = jvm.main_thread();
        let t2 = jvm.spawn_thread();
        assert_ne!(jvm.thread(main).env(), jvm.thread(t2).env());
        assert_eq!(jvm.thread_of_env(jvm.thread(t2).env()), Some(t2));
        assert_eq!(jvm.thread_of_env(EnvToken(0xFFFF_FFFF)), None);
    }

    #[test]
    fn local_ref_lifecycle_via_vm() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        let class = jvm.find_class(names::OBJECT).unwrap();
        let oop = jvm.alloc_object(class);
        let r = jvm.new_local(t, oop);
        assert_eq!(jvm.resolve(t, r).unwrap(), Some(oop));
        assert_eq!(jvm.resolve(t, JRef::NULL).unwrap(), None);
    }

    #[test]
    fn wrong_thread_local_use_faults_strictly_but_resolves_mechanically() {
        let mut jvm = Jvm::new();
        let t1 = jvm.main_thread();
        let t2 = jvm.spawn_thread();
        let class = jvm.find_class(names::OBJECT).unwrap();
        let oop = jvm.alloc_object(class);
        let r = jvm.new_local(t1, oop);
        assert!(matches!(
            jvm.resolve(t2, r),
            Err(RefFault::WrongThread { .. })
        ));
        assert_eq!(jvm.resolve_ignoring_thread(r).unwrap(), Some(oop));
    }

    #[test]
    fn global_refs_survive_gc_locals_pin_correctly() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        let class = jvm.find_class(names::OBJECT).unwrap();
        let a = jvm.alloc_object(class);
        let b = jvm.alloc_object(class);
        let ga = jvm.new_global(a);
        let lb = jvm.new_local(t, b);
        let id_a = jvm.heap().id_of(a);
        let id_b = jvm.heap().id_of(b);
        let stats = jvm.gc();
        assert_eq!(stats.live, 2);
        // Both survive: one via global, one via local root.
        let a2 = jvm.resolve(t, ga).unwrap().unwrap();
        let b2 = jvm.resolve(t, lb).unwrap().unwrap();
        assert_eq!(jvm.heap().id_of(a2), id_a);
        assert_eq!(jvm.heap().id_of(b2), id_b);
    }

    #[test]
    fn unrooted_objects_collected_weak_cleared() {
        let mut jvm = Jvm::new();
        let class = jvm.find_class(names::OBJECT).unwrap();
        let a = jvm.alloc_object(class);
        let w = jvm.new_weak_global(a);
        let stats = jvm.gc();
        assert_eq!(stats.weak_cleared, 1);
        // Live weak handle now resolves to null.
        assert_eq!(jvm.resolve(jvm.main_thread(), w).unwrap(), None);
    }

    #[test]
    fn strings_roundtrip() {
        let mut jvm = Jvm::new();
        let s = jvm.alloc_string("héllo ☕");
        assert_eq!(jvm.string_value(s).unwrap(), "héllo ☕");
        assert!(jvm.string_chars(s).is_some());
        let o = jvm.alloc_object(jvm.find_class(names::OBJECT).unwrap());
        assert!(jvm.string_chars(o).is_none());
    }

    #[test]
    fn instance_fields_and_custom_classes() {
        let mut jvm = Jvm::new();
        let class = jvm
            .registry_mut()
            .define("demo/Holder")
            .field("value", "I", MemberFlags::public())
            .field("next", "Ldemo/Holder;", MemberFlags::public())
            .build()
            .unwrap();
        let fid_value = jvm
            .registry()
            .resolve_field(class, "value", "I", false)
            .unwrap();
        let fid_next = jvm
            .registry()
            .resolve_field(class, "next", "Ldemo/Holder;", false)
            .unwrap();
        let a = jvm.alloc_object(class);
        let b = jvm.alloc_object(class);
        jvm.set_instance_field(a, fid_value, Slot::Int(7));
        jvm.set_instance_field(a, fid_next, Slot::Ref(Some(b)));
        assert_eq!(jvm.get_instance_field(a, fid_value), Slot::Int(7));
        assert_eq!(jvm.get_instance_field(a, fid_next), Slot::Ref(Some(b)));
    }

    #[test]
    fn field_references_traced_through_gc() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        let class = jvm
            .registry_mut()
            .define("demo/Node")
            .field("next", "Ldemo/Node;", MemberFlags::public())
            .build()
            .unwrap();
        let fid = jvm
            .registry()
            .resolve_field(class, "next", "Ldemo/Node;", false)
            .unwrap();
        let inner = jvm.alloc_object(class);
        let outer = jvm.alloc_object(class);
        let inner_id = jvm.heap().id_of(inner);
        jvm.set_instance_field(outer, fid, Slot::Ref(Some(inner)));
        let r = jvm.new_local(t, outer);
        jvm.gc();
        let outer2 = jvm.resolve(t, r).unwrap().unwrap();
        let Slot::Ref(Some(inner2)) = jvm.get_instance_field(outer2, fid) else {
            panic!()
        };
        assert_eq!(jvm.heap().id_of(inner2), inner_id);
    }

    #[test]
    fn exceptions_pending_and_described() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        let exc = jvm.throw_new(t, names::RUNTIME_EXCEPTION, "checked by native code");
        assert_eq!(jvm.thread(t).pending_exception(), Some(exc));
        assert_eq!(
            jvm.describe_exception(exc),
            "java.lang.RuntimeException: checked by native code"
        );
        jvm.thread_mut(t).set_pending_exception(None);
        assert!(jvm.thread(t).pending_exception().is_none());
    }

    #[test]
    fn pending_exception_survives_gc() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        jvm.throw_new(t, names::NPE, "boom");
        jvm.gc();
        let exc = jvm.thread(t).pending_exception().unwrap();
        assert_eq!(
            jvm.describe_exception(exc),
            "java.lang.NullPointerException: boom"
        );
    }

    #[test]
    fn monitors_enter_exit_and_leak_sweep() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        let class = jvm.find_class(names::OBJECT).unwrap();
        let oop = jvm.alloc_object(class);
        jvm.monitor_enter(t, oop).unwrap();
        jvm.monitor_enter(t, oop).unwrap();
        assert_eq!(jvm.monitors_held(t), vec![(jvm.heap().id_of(oop), 2)]);
        jvm.monitor_exit(t, oop).unwrap();
        assert_eq!(jvm.monitor_count(), 1);
        jvm.monitor_exit(t, oop).unwrap();
        assert_eq!(jvm.monitor_count(), 0);
        assert_eq!(jvm.monitor_exit(t, oop), Err(MonitorError::NotOwner));
    }

    #[test]
    fn monitor_contention_reported() {
        let mut jvm = Jvm::new();
        let t1 = jvm.main_thread();
        let t2 = jvm.spawn_thread();
        let class = jvm.find_class(names::OBJECT).unwrap();
        let oop = jvm.alloc_object(class);
        jvm.monitor_enter(t1, oop).unwrap();
        assert_eq!(
            jvm.monitor_enter(t2, oop),
            Err(MonitorError::WouldBlock { owner: t1 })
        );
    }

    #[test]
    fn monitored_object_survives_gc() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        let class = jvm.find_class(names::OBJECT).unwrap();
        let oop = jvm.alloc_object(class);
        let id = jvm.heap().id_of(oop);
        jvm.monitor_enter(t, oop).unwrap();
        let stats = jvm.gc();
        assert_eq!(stats.live, 1);
        assert_eq!(jvm.heap().oop_of(id).map(|o| jvm.heap().id_of(o)), Some(id));
    }

    #[test]
    fn mirrors_are_stable_roots() {
        let mut jvm = Jvm::new();
        let class = jvm.find_class(names::STRING).unwrap();
        let m1 = jvm.mirror_oop(class);
        let id = jvm.heap().id_of(m1);
        assert_eq!(jvm.class_of_mirror(m1), Some(class));
        assert_eq!(jvm.mirror_oop(class), m1, "mirror cached");
        jvm.gc();
        let m2 = jvm.mirror_oop(class);
        assert_eq!(jvm.heap().id_of(m2), id, "same mirror after GC");
    }

    #[test]
    fn instance_of_and_class_queries() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        let _ = t;
        let npe_class = jvm.find_class(names::NPE).unwrap();
        let throwable = jvm.find_class(names::THROWABLE).unwrap();
        let string_class = jvm.find_class(names::STRING).unwrap();
        let exc = jvm.alloc_object(npe_class);
        assert!(jvm.is_instance_of(exc, throwable));
        assert!(!jvm.is_instance_of(exc, string_class));
        assert_eq!(jvm.class_of(exc), npe_class);
    }

    #[test]
    fn safepoint_gc_respects_critical_sections() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        jvm.set_auto_gc_period(Some(1));
        assert!(jvm.safepoint().is_some(), "GC due every safepoint");
        jvm.thread_mut(t).enter_critical(ObjectId(1));
        assert!(
            jvm.safepoint().is_none(),
            "GC deferred inside critical section"
        );
        assert_eq!(jvm.deferred_gcs(), 1);
        jvm.thread_mut(t).exit_critical(ObjectId(1));
        assert!(jvm.safepoint().is_some());
    }

    #[test]
    fn arrays_allocate_with_correct_classes() {
        let mut jvm = Jvm::new();
        let ints = jvm.alloc_prim_array(PrimType::Int, 4);
        assert_eq!(jvm.registry().class(jvm.class_of(ints)).name(), "[I");
        let strs = jvm.alloc_ref_array(FieldType::object(names::STRING), 2);
        assert_eq!(
            jvm.registry().class(jvm.class_of(strs)).name(),
            "[Ljava/lang/String;"
        );
        match &jvm.heap().get(strs).body {
            Body::RefArray { elems } => assert_eq!(elems.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn termination_report_counts_everything() {
        let mut jvm = Jvm::new();
        let t = jvm.main_thread();
        let class = jvm.find_class(names::OBJECT).unwrap();
        let oop = jvm.alloc_object(class);
        let _g = jvm.new_global(oop);
        let _w = jvm.new_weak_global(oop);
        jvm.monitor_enter(t, oop).unwrap();
        let id = jvm.heap().id_of(oop);
        jvm.pins_mut().acquire(
            id,
            crate::pins::PinKind::StringChars,
            crate::pins::PinData::Utf16(vec![]),
        );
        let report = jvm.termination_report();
        assert_eq!(
            report,
            TerminationReport {
                global_refs: 1,
                weak_refs: 1,
                pinned_buffers: 1,
                monitors: 1
            }
        );
    }
}
