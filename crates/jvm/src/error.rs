//! Error types for the simulated JVM.

use std::fmt;

/// How the simulated JVM process "died". Real FFI misuse crashes or
/// deadlocks the process; this simulation converts those outcomes into a
/// value that unwinds to the harness, so experiments like the paper's
/// Table 1 can observe and tabulate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeathKind {
    /// Memory corruption / segfault-style abort without diagnosis.
    Crash,
    /// The process hung (e.g. GC blocked by an abandoned critical
    /// section).
    Deadlock,
    /// `FatalError` was called or a vendor checker aborted the VM.
    FatalError,
}

impl fmt::Display for DeathKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeathKind::Crash => "crash",
            DeathKind::Deadlock => "deadlock",
            DeathKind::FatalError => "fatal error",
        };
        f.write_str(s)
    }
}

/// A simulated process death.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JvmDeath {
    /// The kind of death.
    pub kind: DeathKind,
    /// Human-readable reason (often vendor-styled).
    pub message: String,
}

impl JvmDeath {
    /// Creates a crash.
    pub fn crash(message: impl Into<String>) -> JvmDeath {
        JvmDeath {
            kind: DeathKind::Crash,
            message: message.into(),
        }
    }

    /// Creates a deadlock.
    pub fn deadlock(message: impl Into<String>) -> JvmDeath {
        JvmDeath {
            kind: DeathKind::Deadlock,
            message: message.into(),
        }
    }

    /// Creates a fatal-error abort.
    pub fn fatal(message: impl Into<String>) -> JvmDeath {
        JvmDeath {
            kind: DeathKind::FatalError,
            message: message.into(),
        }
    }
}

impl fmt::Display for JvmDeath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JVM {}: {}", self.kind, self.message)
    }
}

impl std::error::Error for JvmDeath {}

/// Result of executing managed code or a VM operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JvmError {
    /// A Java exception is pending on the executing thread. This is the
    /// *normal* Java error path, not a VM failure.
    Exception,
    /// The simulated process died.
    Death(JvmDeath),
}

impl fmt::Display for JvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JvmError::Exception => f.write_str("java exception pending"),
            JvmError::Death(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for JvmError {}

impl From<JvmDeath> for JvmError {
    fn from(d: JvmDeath) -> JvmError {
        JvmError::Death(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let c = JvmDeath::crash("SIGSEGV");
        assert_eq!(c.kind, DeathKind::Crash);
        assert!(c.to_string().contains("SIGSEGV"));
        let d = JvmDeath::deadlock("GC blocked");
        assert_eq!(d.kind, DeathKind::Deadlock);
        let f = JvmDeath::fatal("JVMJNCK024E");
        assert_eq!(f.kind, DeathKind::FatalError);
        let e: JvmError = f.into();
        assert!(matches!(e, JvmError::Death(_)));
        assert!(!JvmError::Exception.to_string().is_empty());
    }
}
