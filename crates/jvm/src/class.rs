//! Classes, fields, methods, and the class registry.
//!
//! The registry is the mini-JVM's metadata store: class hierarchy,
//! field layouts, method tables, and the VM-wide method/field ID tables
//! that back the JNI's `jmethodID`/`jfieldID` handles.

use std::collections::HashMap;
use std::fmt;

use crate::descriptor::{FieldType, MethodSig, PrimType, ReturnType};
use crate::heap::Slot;
use crate::value::{FieldId, MethodId};

/// Identity of a registered class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Raw index (diagnostics only).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Java member visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Visibility {
    /// `public`
    #[default]
    Public,
    /// `protected`
    Protected,
    /// package-private (no modifier)
    Package,
    /// `private`
    Private,
}

/// Modifier flags common to fields and methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemberFlags {
    /// Member visibility.
    pub visibility: Visibility,
    /// `static` modifier.
    pub is_static: bool,
    /// `final` modifier.
    pub is_final: bool,
}

impl MemberFlags {
    /// Public instance member.
    pub fn public() -> MemberFlags {
        MemberFlags::default()
    }

    /// Public static member.
    pub fn public_static() -> MemberFlags {
        MemberFlags {
            is_static: true,
            ..Default::default()
        }
    }

    /// Public final instance member.
    pub fn public_final() -> MemberFlags {
        MemberFlags {
            is_final: true,
            ..Default::default()
        }
    }

    /// Private instance member.
    pub fn private() -> MemberFlags {
        MemberFlags {
            visibility: Visibility::Private,
            ..Default::default()
        }
    }

    /// Sets `static`.
    pub fn with_static(mut self, v: bool) -> MemberFlags {
        self.is_static = v;
        self
    }

    /// Sets `final`.
    pub fn with_final(mut self, v: bool) -> MemberFlags {
        self.is_final = v;
        self
    }
}

/// How a method's body is provided.
///
/// The mini-JVM stores only an index; the actual callable (a Rust closure)
/// lives in the embedding layer's code tables, keeping this crate free of
/// circular dependencies on the JNI layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodBody {
    /// No body (interface/abstract method).
    Abstract,
    /// A "Java" (managed) method: index into the embedder's managed-code
    /// table.
    Managed(u32),
    /// A native method. `None` until native code is registered for it
    /// (via `RegisterNatives` or static binding); the value is an index
    /// into the embedder's native-code table.
    Native(Option<u32>),
}

/// Metadata for one method; the `jmethodID` target.
#[derive(Debug, Clone)]
pub struct MethodInfo {
    /// Declaring class.
    pub class: ClassId,
    /// Method name.
    pub name: String,
    /// Parsed signature.
    pub sig: MethodSig,
    /// Modifier flags.
    pub flags: MemberFlags,
    /// Body binding.
    pub body: MethodBody,
}

/// Where a field's value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldSlot {
    /// Index into the instance field layout of objects of the class.
    Instance(u32),
    /// Index into the declaring class's static storage.
    Static(u32),
}

/// Metadata for one field; the `jfieldID` target.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Declaring class.
    pub class: ClassId,
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: FieldType,
    /// Modifier flags.
    pub flags: MemberFlags,
    /// Storage location.
    pub slot: FieldSlot,
}

/// A registered class or interface.
#[derive(Debug, Clone)]
pub struct ClassDef {
    name: String,
    superclass: Option<ClassId>,
    interfaces: Vec<ClassId>,
    is_interface: bool,
    /// For array classes, the element type.
    array_elem: Option<FieldType>,
    /// All instance fields, inherited first, in layout order.
    layout: Vec<FieldId>,
    /// Methods declared by this class.
    methods: Vec<MethodId>,
    /// Fields declared by this class.
    fields: Vec<FieldId>,
    /// Static field storage.
    statics: Vec<Slot>,
}

impl ClassDef {
    /// Internal (slashed) class name, e.g. `java/lang/String`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dotted source-level name, e.g. `java.lang.String`.
    pub fn dotted_name(&self) -> String {
        self.name.replace('/', ".")
    }

    /// Direct superclass, if any (only `java/lang/Object` and interfaces
    /// have none).
    pub fn superclass(&self) -> Option<ClassId> {
        self.superclass
    }

    /// Implemented interfaces.
    pub fn interfaces(&self) -> &[ClassId] {
        &self.interfaces
    }

    /// Returns `true` for interface types.
    pub fn is_interface(&self) -> bool {
        self.is_interface
    }

    /// For array classes, the element type.
    pub fn array_elem(&self) -> Option<&FieldType> {
        self.array_elem.as_ref()
    }

    /// Instance field layout (inherited fields first).
    pub fn layout(&self) -> &[FieldId] {
        &self.layout
    }

    /// Methods declared directly on this class.
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }

    /// Fields declared directly on this class.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }
}

/// Errors raised by class registration and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassError {
    /// A class with this name is already registered.
    Duplicate(String),
    /// Referenced class is not registered.
    NotFound(String),
    /// A field or method descriptor failed to parse.
    BadDescriptor {
        /// The offending descriptor text.
        descriptor: String,
        /// Parser message.
        message: String,
    },
    /// Member lookup failed.
    NoSuchMember {
        /// Class searched.
        class: String,
        /// Member name.
        name: String,
        /// Member descriptor.
        descriptor: String,
    },
}

impl fmt::Display for ClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassError::Duplicate(name) => write!(f, "class `{name}` already registered"),
            ClassError::NotFound(name) => write!(f, "class `{name}` not found"),
            ClassError::BadDescriptor {
                descriptor,
                message,
            } => {
                write!(f, "bad descriptor `{descriptor}`: {message}")
            }
            ClassError::NoSuchMember {
                class,
                name,
                descriptor,
            } => {
                write!(f, "no member `{name}{descriptor}` in class `{class}`")
            }
        }
    }
}

impl std::error::Error for ClassError {}

/// The class registry: all classes, methods and fields of the mini-JVM.
#[derive(Debug, Clone)]
pub struct ClassRegistry {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
    methods: Vec<MethodInfo>,
    fields: Vec<FieldInfo>,
}

/// Well-known class names bootstrapped by [`ClassRegistry::with_core_classes`].
pub mod names {
    /// `java/lang/Object`
    pub const OBJECT: &str = "java/lang/Object";
    /// `java/lang/Class`
    pub const CLASS: &str = "java/lang/Class";
    /// `java/lang/String`
    pub const STRING: &str = "java/lang/String";
    /// `java/lang/Throwable`
    pub const THROWABLE: &str = "java/lang/Throwable";
    /// `java/lang/Exception`
    pub const EXCEPTION: &str = "java/lang/Exception";
    /// `java/lang/RuntimeException`
    pub const RUNTIME_EXCEPTION: &str = "java/lang/RuntimeException";
    /// `java/lang/Error`
    pub const ERROR: &str = "java/lang/Error";
    /// `java/lang/NullPointerException`
    pub const NPE: &str = "java/lang/NullPointerException";
    /// `java/lang/IllegalArgumentException`
    pub const ILLEGAL_ARGUMENT: &str = "java/lang/IllegalArgumentException";
    /// `java/lang/ArrayIndexOutOfBoundsException`
    pub const ARRAY_INDEX: &str = "java/lang/ArrayIndexOutOfBoundsException";
    /// `java/lang/OutOfMemoryError`
    pub const OOM: &str = "java/lang/OutOfMemoryError";
    /// `java/lang/IllegalMonitorStateException`
    pub const ILLEGAL_MONITOR: &str = "java/lang/IllegalMonitorStateException";
    /// `java/lang/NoClassDefFoundError`
    pub const NO_CLASS_DEF: &str = "java/lang/NoClassDefFoundError";
    /// `java/lang/NoSuchMethodError`
    pub const NO_SUCH_METHOD: &str = "java/lang/NoSuchMethodError";
    /// `java/lang/NoSuchFieldError`
    pub const NO_SUCH_FIELD: &str = "java/lang/NoSuchFieldError";
    /// `java/lang/AbstractMethodError`
    pub const ABSTRACT_METHOD: &str = "java/lang/AbstractMethodError";
    /// `java/lang/StringIndexOutOfBoundsException`
    pub const STRING_INDEX: &str = "java/lang/StringIndexOutOfBoundsException";
    /// `java/lang/reflect/Method`
    pub const REFLECT_METHOD: &str = "java/lang/reflect/Method";
    /// `java/lang/reflect/Field`
    pub const REFLECT_FIELD: &str = "java/lang/reflect/Field";
    /// `java/lang/reflect/Constructor`
    pub const REFLECT_CONSTRUCTOR: &str = "java/lang/reflect/Constructor";
    /// `java/nio/DirectByteBuffer`
    pub const DIRECT_BYTE_BUFFER: &str = "java/nio/DirectByteBuffer";
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry {
            classes: Vec::new(),
            by_name: HashMap::new(),
            methods: Vec::new(),
            fields: Vec::new(),
        }
    }

    /// Creates a registry with the core `java/lang` classes bootstrapped.
    pub fn with_core_classes() -> ClassRegistry {
        let mut reg = ClassRegistry::new();
        reg.define(names::OBJECT).build().expect("bootstrap Object");
        reg.define(names::CLASS)
            .superclass(names::OBJECT)
            .field(
                "name",
                "Ljava/lang/String;",
                MemberFlags::private().with_final(true),
            )
            .build()
            .expect("bootstrap Class");
        reg.define(names::STRING)
            .superclass(names::OBJECT)
            .build()
            .expect("bootstrap String");
        reg.define(names::THROWABLE)
            .superclass(names::OBJECT)
            .field("message", "Ljava/lang/String;", MemberFlags::private())
            .build()
            .expect("bootstrap Throwable");
        for (name, sup) in [
            (names::EXCEPTION, names::THROWABLE),
            (names::RUNTIME_EXCEPTION, names::EXCEPTION),
            (names::ERROR, names::THROWABLE),
            (names::NPE, names::RUNTIME_EXCEPTION),
            (names::ILLEGAL_ARGUMENT, names::RUNTIME_EXCEPTION),
            (names::ARRAY_INDEX, names::RUNTIME_EXCEPTION),
            (names::OOM, names::ERROR),
            (names::ILLEGAL_MONITOR, names::RUNTIME_EXCEPTION),
            (names::NO_CLASS_DEF, names::ERROR),
            (names::NO_SUCH_METHOD, names::ERROR),
            (names::NO_SUCH_FIELD, names::ERROR),
            (names::ABSTRACT_METHOD, names::ERROR),
            (names::STRING_INDEX, names::RUNTIME_EXCEPTION),
        ] {
            reg.define(name)
                .superclass(sup)
                .build()
                .expect("bootstrap class");
        }
        // The reflection mirrors carry the VM-internal entity id in a
        // `slot` field, as real JVMs do.
        for name in [
            names::REFLECT_METHOD,
            names::REFLECT_FIELD,
            names::REFLECT_CONSTRUCTOR,
        ] {
            reg.define(name)
                .superclass(names::OBJECT)
                .field("slot", "I", MemberFlags::private().with_final(true))
                .build()
                .expect("bootstrap reflect class");
        }
        reg.define(names::DIRECT_BYTE_BUFFER)
            .superclass(names::OBJECT)
            .field("address", "J", MemberFlags::private().with_final(true))
            .field("capacity", "J", MemberFlags::private().with_final(true))
            .build()
            .expect("bootstrap DirectByteBuffer");
        reg
    }

    /// Starts defining a new class.
    pub fn define(&mut self, name: impl Into<String>) -> ClassBuilder<'_> {
        ClassBuilder {
            registry: self,
            name: name.into(),
            superclass: Some(names::OBJECT.to_string()),
            interfaces: Vec::new(),
            is_interface: false,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Looks up a class by internal (slashed) name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Returns the definition of a class.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this registry.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.index()]
    }

    /// Number of registered classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// All class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// Returns method metadata for an ID if the ID is valid.
    pub fn method(&self, id: MethodId) -> Option<&MethodInfo> {
        self.methods.get(id.index())
    }

    /// Returns field metadata for an ID if the ID is valid.
    pub fn field(&self, id: FieldId) -> Option<&FieldInfo> {
        self.fields.get(id.index())
    }

    /// Total number of method IDs ever issued.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Total number of field IDs ever issued.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Binds a native method body (the `RegisterNatives` back end).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a native method of this registry.
    pub fn bind_native(&mut self, id: MethodId, fn_index: u32) {
        let m = &mut self.methods[id.index()];
        match m.body {
            MethodBody::Native(_) => m.body = MethodBody::Native(Some(fn_index)),
            _ => panic!("method `{}` is not native", m.name),
        }
    }

    /// Unbinds all native methods of a class (`UnregisterNatives`).
    pub fn unbind_natives(&mut self, class: ClassId) {
        for m in &mut self.methods {
            if m.class == class {
                if let MethodBody::Native(Some(_)) = m.body {
                    m.body = MethodBody::Native(None);
                }
            }
        }
    }

    /// Resolves a method by name and descriptor, searching the class then
    /// its superclasses.
    ///
    /// # Errors
    ///
    /// Returns [`ClassError::NoSuchMember`] if not found or the staticness
    /// doesn't match, and [`ClassError::BadDescriptor`] for malformed
    /// descriptors.
    pub fn resolve_method(
        &self,
        class: ClassId,
        name: &str,
        descriptor: &str,
        want_static: bool,
    ) -> Result<MethodId, ClassError> {
        let sig = MethodSig::parse(descriptor).map_err(|e| ClassError::BadDescriptor {
            descriptor: descriptor.to_string(),
            message: e.to_string(),
        })?;
        let mut cur = Some(class);
        while let Some(c) = cur {
            let def = self.class(c);
            for &mid in &def.methods {
                let m = &self.methods[mid.index()];
                if m.name == name && m.sig == sig && m.flags.is_static == want_static {
                    return Ok(mid);
                }
            }
            cur = def.superclass;
        }
        Err(ClassError::NoSuchMember {
            class: self.class(class).name.clone(),
            name: name.to_string(),
            descriptor: descriptor.to_string(),
        })
    }

    /// Resolves a field by name and descriptor, searching the class then
    /// its superclasses.
    ///
    /// # Errors
    ///
    /// Returns [`ClassError::NoSuchMember`] or [`ClassError::BadDescriptor`]
    /// as for [`ClassRegistry::resolve_method`].
    pub fn resolve_field(
        &self,
        class: ClassId,
        name: &str,
        descriptor: &str,
        want_static: bool,
    ) -> Result<FieldId, ClassError> {
        let ty = FieldType::parse(descriptor).map_err(|e| ClassError::BadDescriptor {
            descriptor: descriptor.to_string(),
            message: e.to_string(),
        })?;
        let mut cur = Some(class);
        while let Some(c) = cur {
            let def = self.class(c);
            for &fid in &def.fields {
                let fi = &self.fields[fid.index()];
                if fi.name == name && fi.ty == ty && fi.flags.is_static == want_static {
                    return Ok(fid);
                }
            }
            cur = def.superclass;
        }
        Err(ClassError::NoSuchMember {
            class: self.class(class).name.clone(),
            name: name.to_string(),
            descriptor: descriptor.to_string(),
        })
    }

    /// Returns `true` if `sub` is assignable to `sup` (same class, subclass,
    /// implemented interface, or covariant array).
    pub fn is_assignable(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let sup_def = self.class(sup);
        // Everything is assignable to Object.
        if sup_def.name == names::OBJECT {
            return true;
        }
        // Array covariance.
        if let (Some(se), Some(pe)) = (
            self.class(sub).array_elem.clone(),
            sup_def.array_elem.clone(),
        ) {
            return match (se, pe) {
                (FieldType::Prim(a), FieldType::Prim(b)) => a == b,
                (
                    a @ (FieldType::Object(_) | FieldType::Array(_)),
                    b @ (FieldType::Object(_) | FieldType::Array(_)),
                ) => match (self.class_for_type(&a), self.class_for_type(&b)) {
                    (Some(ca), Some(cb)) => self.is_assignable(ca, cb),
                    _ => false,
                },
                _ => false,
            };
        }
        // Walk superclasses and interfaces.
        let mut stack = vec![sub];
        while let Some(c) = stack.pop() {
            if c == sup {
                return true;
            }
            let def = self.class(c);
            if let Some(s) = def.superclass {
                stack.push(s);
            }
            stack.extend_from_slice(&def.interfaces);
        }
        false
    }

    /// Looks up (without creating) the class corresponding to a reference
    /// field type.
    pub fn class_for_type(&self, ty: &FieldType) -> Option<ClassId> {
        match ty {
            FieldType::Prim(_) => None,
            FieldType::Object(name) => self.class_by_name(name),
            FieldType::Array(_) => self.class_by_name(&ty.descriptor()),
        }
    }

    /// Returns (creating on demand) the array class for the given element
    /// type; e.g. `[I` or `[Ljava/lang/String;`.
    pub fn array_class(&mut self, elem: FieldType) -> ClassId {
        let arr_ty = FieldType::array(elem.clone());
        let name = arr_ty.descriptor();
        if let Some(id) = self.by_name.get(&name) {
            return *id;
        }
        let object = self
            .class_by_name(names::OBJECT)
            .expect("Object bootstrapped");
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassDef {
            name: name.clone(),
            superclass: Some(object),
            interfaces: Vec::new(),
            is_interface: false,
            array_elem: Some(elem),
            layout: Vec::new(),
            methods: Vec::new(),
            fields: Vec::new(),
            statics: Vec::new(),
        });
        self.by_name.insert(name, id);
        id
    }

    /// Returns (creating on demand) the array class for a primitive
    /// element type.
    pub fn prim_array_class(&mut self, elem: PrimType) -> ClassId {
        self.array_class(FieldType::Prim(elem))
    }

    /// Reads a static field slot.
    ///
    /// # Panics
    ///
    /// Panics on an instance field ID or out-of-range slot.
    pub fn static_slot(&self, field: FieldId) -> Slot {
        let fi = &self.fields[field.index()];
        match fi.slot {
            FieldSlot::Static(i) => self.classes[fi.class.index()].statics[i as usize],
            FieldSlot::Instance(_) => panic!("field `{}` is not static", fi.name),
        }
    }

    /// Writes a static field slot.
    ///
    /// # Panics
    ///
    /// Panics on an instance field ID or out-of-range slot.
    pub fn set_static_slot(&mut self, field: FieldId, value: Slot) {
        let fi = &self.fields[field.index()];
        match fi.slot {
            FieldSlot::Static(i) => {
                self.classes[fi.class.index()].statics[i as usize] = value;
            }
            FieldSlot::Instance(_) => panic!("field `{}` is not static", fi.name),
        }
    }

    /// Iterates mutably over every static field slot (used by the GC to
    /// trace and update static roots).
    pub fn static_slots_mut(&mut self) -> impl Iterator<Item = &mut Slot> {
        self.classes.iter_mut().flat_map(|c| c.statics.iter_mut())
    }

    /// Default (zero/null) slot for a field type.
    pub fn default_slot(ty: &FieldType) -> Slot {
        match ty {
            FieldType::Prim(p) => Slot::default_of(*p),
            FieldType::Object(_) | FieldType::Array(_) => Slot::Ref(None),
        }
    }

    /// The return type of a method, if the ID is valid.
    pub fn method_return_type(&self, id: MethodId) -> Option<&ReturnType> {
        self.method(id).map(|m| m.sig.ret())
    }
}

impl Default for ClassRegistry {
    fn default() -> Self {
        ClassRegistry::new()
    }
}

/// Builder returned by [`ClassRegistry::define`].
pub struct ClassBuilder<'r> {
    registry: &'r mut ClassRegistry,
    name: String,
    superclass: Option<String>,
    interfaces: Vec<String>,
    is_interface: bool,
    fields: Vec<(String, String, MemberFlags)>,
    methods: Vec<(String, String, MemberFlags, MethodBody)>,
}

impl fmt::Debug for ClassBuilder<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassBuilder")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl ClassBuilder<'_> {
    /// Sets the superclass (default `java/lang/Object`).
    pub fn superclass(mut self, name: impl Into<String>) -> Self {
        self.superclass = Some(name.into());
        self
    }

    /// Adds an implemented interface.
    pub fn interface(mut self, name: impl Into<String>) -> Self {
        self.interfaces.push(name.into());
        self
    }

    /// Marks the class as an interface (no superclass, no layout).
    pub fn as_interface(mut self) -> Self {
        self.is_interface = true;
        self.superclass = None;
        self
    }

    /// Adds a field (instance or static per `flags`).
    pub fn field(
        mut self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
        flags: MemberFlags,
    ) -> Self {
        self.fields.push((name.into(), descriptor.into(), flags));
        self
    }

    /// Adds a method with an explicit body binding.
    pub fn method(
        mut self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
        flags: MemberFlags,
        body: MethodBody,
    ) -> Self {
        self.methods
            .push((name.into(), descriptor.into(), flags, body));
        self
    }

    /// Adds a native method (unbound until `RegisterNatives`).
    pub fn native_method(
        self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
        flags: MemberFlags,
    ) -> Self {
        self.method(name, descriptor, flags, MethodBody::Native(None))
    }

    /// Registers the class.
    ///
    /// # Errors
    ///
    /// Returns [`ClassError`] for duplicate names, unknown superclass or
    /// interface names, or malformed descriptors.
    pub fn build(self) -> Result<ClassId, ClassError> {
        let ClassBuilder {
            registry,
            name,
            superclass,
            interfaces,
            is_interface,
            fields,
            methods,
        } = self;
        if registry.by_name.contains_key(&name) {
            return Err(ClassError::Duplicate(name));
        }
        let superclass = match (&name[..], superclass, is_interface) {
            (n, _, _) if n == names::OBJECT => None,
            (_, _, true) => None,
            (_, Some(s), false) => Some(registry.class_by_name(&s).ok_or(ClassError::NotFound(s))?),
            (_, None, false) => registry.class_by_name(names::OBJECT),
        };
        let interfaces = interfaces
            .into_iter()
            .map(|i| registry.class_by_name(&i).ok_or(ClassError::NotFound(i)))
            .collect::<Result<Vec<_>, _>>()?;
        // Inherited instance layout.
        let mut layout = superclass
            .map(|s| registry.class(s).layout.clone())
            .unwrap_or_default();

        let id = ClassId(registry.classes.len() as u32);
        let mut own_fields = Vec::new();
        let mut statics = Vec::new();
        for (fname, desc, flags) in fields {
            let ty = FieldType::parse(&desc).map_err(|e| ClassError::BadDescriptor {
                descriptor: desc.clone(),
                message: e.to_string(),
            })?;
            let slot = if flags.is_static {
                statics.push(ClassRegistry::default_slot(&ty));
                FieldSlot::Static(statics.len() as u32 - 1)
            } else {
                FieldSlot::Instance(layout.len() as u32)
            };
            let fid = FieldId(registry.fields.len() as u32);
            registry.fields.push(FieldInfo {
                class: id,
                name: fname,
                ty,
                flags,
                slot,
            });
            if !flags.is_static {
                layout.push(fid);
            }
            own_fields.push(fid);
        }
        let mut own_methods = Vec::new();
        for (mname, desc, flags, body) in methods {
            let sig = MethodSig::parse(&desc).map_err(|e| ClassError::BadDescriptor {
                descriptor: desc.clone(),
                message: e.to_string(),
            })?;
            let mid = MethodId(registry.methods.len() as u32);
            registry.methods.push(MethodInfo {
                class: id,
                name: mname,
                sig,
                flags,
                body,
            });
            own_methods.push(mid);
        }
        registry.classes.push(ClassDef {
            name: name.clone(),
            superclass,
            interfaces,
            is_interface,
            array_elem: None,
            layout,
            methods: own_methods,
            fields: own_fields,
            statics,
        });
        registry.by_name.insert(name, id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_classes_bootstrap() {
        let reg = ClassRegistry::with_core_classes();
        for n in [
            names::OBJECT,
            names::CLASS,
            names::STRING,
            names::THROWABLE,
            names::NPE,
            names::OOM,
        ] {
            assert!(reg.class_by_name(n).is_some(), "missing {n}");
        }
        let npe = reg.class_by_name(names::NPE).unwrap();
        let throwable = reg.class_by_name(names::THROWABLE).unwrap();
        assert!(reg.is_assignable(npe, throwable));
        assert!(!reg.is_assignable(throwable, npe));
    }

    #[test]
    fn define_class_with_fields_and_methods() {
        let mut reg = ClassRegistry::with_core_classes();
        let id = reg
            .define("demo/Point")
            .field("x", "I", MemberFlags::public())
            .field("y", "I", MemberFlags::public())
            .field(
                "ORIGIN",
                "Ldemo/Point;",
                MemberFlags::public_static().with_final(true),
            )
            .method("norm", "()D", MemberFlags::public(), MethodBody::Abstract)
            .native_method("draw", "()V", MemberFlags::public())
            .build()
            .unwrap();
        let def = reg.class(id);
        assert_eq!(def.layout().len(), 2);
        assert_eq!(def.fields().len(), 3);
        assert_eq!(def.methods().len(), 2);

        let fx = reg.resolve_field(id, "x", "I", false).unwrap();
        assert!(matches!(
            reg.field(fx).unwrap().slot,
            FieldSlot::Instance(0)
        ));
        let fo = reg
            .resolve_field(id, "ORIGIN", "Ldemo/Point;", true)
            .unwrap();
        assert!(matches!(reg.field(fo).unwrap().slot, FieldSlot::Static(0)));
        assert!(
            reg.resolve_field(id, "x", "I", true).is_err(),
            "staticness must match"
        );

        let draw = reg.resolve_method(id, "draw", "()V", false).unwrap();
        assert_eq!(reg.method(draw).unwrap().body, MethodBody::Native(None));
    }

    #[test]
    fn inherited_layout_and_resolution() {
        let mut reg = ClassRegistry::with_core_classes();
        let base = reg
            .define("demo/Base")
            .field("a", "I", MemberFlags::public())
            .method("m", "()V", MemberFlags::public(), MethodBody::Abstract)
            .build()
            .unwrap();
        let sub = reg
            .define("demo/Sub")
            .superclass("demo/Base")
            .field("b", "I", MemberFlags::public())
            .build()
            .unwrap();
        assert_eq!(reg.class(sub).layout().len(), 2);
        // Field/method resolution walks up the hierarchy.
        let fa = reg.resolve_field(sub, "a", "I", false).unwrap();
        assert_eq!(reg.field(fa).unwrap().class, base);
        let mm = reg.resolve_method(sub, "m", "()V", false).unwrap();
        assert_eq!(reg.method(mm).unwrap().class, base);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut reg = ClassRegistry::with_core_classes();
        reg.define("demo/A").build().unwrap();
        assert!(matches!(
            reg.define("demo/A").build(),
            Err(ClassError::Duplicate(_))
        ));
    }

    #[test]
    fn unknown_superclass_rejected() {
        let mut reg = ClassRegistry::with_core_classes();
        let r = reg.define("demo/B").superclass("no/Such").build();
        assert!(matches!(r, Err(ClassError::NotFound(_))));
    }

    #[test]
    fn bad_descriptor_rejected() {
        let mut reg = ClassRegistry::with_core_classes();
        let r = reg
            .define("demo/C")
            .field("f", "Q", MemberFlags::public())
            .build();
        assert!(matches!(r, Err(ClassError::BadDescriptor { .. })));
    }

    #[test]
    fn interfaces_participate_in_assignability() {
        let mut reg = ClassRegistry::with_core_classes();
        let iface = reg.define("demo/Iface").as_interface().build().unwrap();
        let impl_ = reg
            .define("demo/Impl")
            .interface("demo/Iface")
            .build()
            .unwrap();
        assert!(reg.is_assignable(impl_, iface));
        assert!(!reg.is_assignable(iface, impl_));
    }

    #[test]
    fn array_classes_and_covariance() {
        let mut reg = ClassRegistry::with_core_classes();
        let int_arr = reg.prim_array_class(PrimType::Int);
        assert_eq!(reg.class(int_arr).name(), "[I");
        // Same element type is cached.
        assert_eq!(reg.prim_array_class(PrimType::Int), int_arr);
        let long_arr = reg.prim_array_class(PrimType::Long);
        assert!(!reg.is_assignable(int_arr, long_arr));

        let str_arr = reg.array_class(FieldType::object(names::STRING));
        let obj_arr = reg.array_class(FieldType::object(names::OBJECT));
        assert!(reg.is_assignable(str_arr, obj_arr), "String[] <: Object[]");
        assert!(!reg.is_assignable(obj_arr, str_arr));
        let object = reg.class_by_name(names::OBJECT).unwrap();
        assert!(reg.is_assignable(str_arr, object), "arrays <: Object");
    }

    #[test]
    fn static_slots_read_write() {
        let mut reg = ClassRegistry::with_core_classes();
        let id = reg
            .define("demo/S")
            .field("count", "I", MemberFlags::public_static())
            .build()
            .unwrap();
        let f = reg.resolve_field(id, "count", "I", true).unwrap();
        assert_eq!(reg.static_slot(f), Slot::Int(0));
        reg.set_static_slot(f, Slot::Int(42));
        assert_eq!(reg.static_slot(f), Slot::Int(42));
    }

    #[test]
    fn native_binding() {
        let mut reg = ClassRegistry::with_core_classes();
        let id = reg
            .define("demo/N")
            .native_method("go", "()V", MemberFlags::public_static())
            .build()
            .unwrap();
        let m = reg.resolve_method(id, "go", "()V", true).unwrap();
        reg.bind_native(m, 7);
        assert_eq!(reg.method(m).unwrap().body, MethodBody::Native(Some(7)));
        reg.unbind_natives(id);
        assert_eq!(reg.method(m).unwrap().body, MethodBody::Native(None));
    }
}
