//! Pinned-or-copied buffers: the backing store for `Get<Type>ArrayElements`,
//! `GetString[UTF]Chars`, and the `Get*Critical` functions.
//!
//! This simulated JVM always *copies* (which the JNI explicitly permits);
//! what matters for the paper's resource constraints is the acquire/release
//! protocol: every acquire must be matched by exactly one release, an
//! unmatched buffer at VM death is a leak, and a second release is a
//! double-free.

use std::fmt;

use jinn_obs::{LabelId, Recorder};

use crate::heap::PrimArray;
use crate::value::ObjectId;

/// Identifies an acquired buffer (the simulated `char*`/`jint*` pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinId(pub u32);

impl fmt::Display for PinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pin#{}", self.0)
    }
}

/// What flavour of acquisition produced the buffer; releases must match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinKind {
    /// `Get<Type>ArrayElements`
    ArrayElements,
    /// `GetStringChars` (UTF-16)
    StringChars,
    /// `GetStringUTFChars` (modified UTF-8)
    StringUtfChars,
    /// `GetPrimitiveArrayCritical`
    ArrayCritical,
    /// `GetStringCritical`
    StringCritical,
}

impl PinKind {
    /// Returns `true` for the two critical-section acquisitions.
    pub fn is_critical(self) -> bool {
        matches!(self, PinKind::ArrayCritical | PinKind::StringCritical)
    }
}

impl fmt::Display for PinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PinKind::ArrayElements => "Get<Type>ArrayElements",
            PinKind::StringChars => "GetStringChars",
            PinKind::StringUtfChars => "GetStringUTFChars",
            PinKind::ArrayCritical => "GetPrimitiveArrayCritical",
            PinKind::StringCritical => "GetStringCritical",
        };
        f.write_str(s)
    }
}

/// The copied-out contents of a pinned buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum PinData {
    /// Primitive array contents.
    Prim(PrimArray),
    /// UTF-16 code units (NOT NUL-terminated — pitfall 8).
    Utf16(Vec<u16>),
    /// Modified UTF-8 bytes, NUL-terminated as the real JNI does.
    Utf8(Vec<u8>),
}

/// Error releasing a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinError {
    /// The pin id was never issued.
    Unknown,
    /// The pin was already released (double-free).
    AlreadyReleased,
    /// Released through the wrong function family (e.g. array elements
    /// released via `ReleaseStringChars`).
    KindMismatch {
        /// How it was acquired.
        acquired: PinKind,
        /// How it was released.
        released: PinKind,
    },
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::Unknown => f.write_str("unknown pin"),
            PinError::AlreadyReleased => f.write_str("pin already released (double free)"),
            PinError::KindMismatch { acquired, released } => {
                write!(f, "pin acquired via {acquired} released via {released}")
            }
        }
    }
}

impl std::error::Error for PinError {}

#[derive(Debug, Clone)]
struct PinEntry {
    object: ObjectId,
    kind: PinKind,
    data: PinData,
    released: bool,
}

/// The table of all buffers handed out to native code.
#[derive(Debug, Clone, Default)]
pub struct PinTable {
    entries: Vec<PinEntry>,
    recorder: Recorder,
    acquired_label: LabelId,
    released_label: LabelId,
    invalid_label: LabelId,
}

impl PinTable {
    /// Creates an empty table.
    pub fn new() -> PinTable {
        PinTable::default()
    }

    /// Attaches an observability recorder; pin acquire/release traffic is
    /// recorded from then on.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.acquired_label = recorder.intern("pins.acquired");
        self.released_label = recorder.intern("pins.released");
        self.invalid_label = recorder.intern("pins.invalid_releases");
        self.recorder = recorder;
    }

    /// Records an acquisition and returns its pin id.
    pub fn acquire(&mut self, object: ObjectId, kind: PinKind, data: PinData) -> PinId {
        self.entries.push(PinEntry {
            object,
            kind,
            data,
            released: false,
        });
        let pin = PinId(self.entries.len() as u32 - 1);
        if self.recorder.is_enabled() {
            self.recorder
                .pin_acquire_id(jinn_obs::event::NO_THREAD, pin.0);
            self.recorder.count_id(self.acquired_label, 1);
        }
        pin
    }

    /// Releases a pin, returning its final contents (for copy-back).
    ///
    /// # Errors
    ///
    /// Returns [`PinError`] on double-free, kind mismatch, or an unknown
    /// id.
    pub fn release(&mut self, pin: PinId, kind: PinKind) -> Result<(ObjectId, PinData), PinError> {
        let result = self.release_inner(pin, kind);
        if self.recorder.is_enabled() {
            self.recorder
                .pin_release_id(jinn_obs::event::NO_THREAD, pin.0, result.is_ok());
            self.recorder.count_id(
                if result.is_ok() {
                    self.released_label
                } else {
                    self.invalid_label
                },
                1,
            );
        }
        result
    }

    fn release_inner(
        &mut self,
        pin: PinId,
        kind: PinKind,
    ) -> Result<(ObjectId, PinData), PinError> {
        let e = self
            .entries
            .get_mut(pin.0 as usize)
            .ok_or(PinError::Unknown)?;
        if e.released {
            return Err(PinError::AlreadyReleased);
        }
        if e.kind != kind {
            return Err(PinError::KindMismatch {
                acquired: e.kind,
                released: kind,
            });
        }
        e.released = true;
        Ok((e.object, e.data.clone()))
    }

    /// Read access to a live buffer's data (simulating the C pointer).
    ///
    /// Reading through a released pin returns `None` — the simulated
    /// equivalent of a use-after-free that the raw JVM cannot see.
    pub fn data(&self, pin: PinId) -> Option<&PinData> {
        let e = self.entries.get(pin.0 as usize)?;
        if e.released {
            None
        } else {
            Some(&e.data)
        }
    }

    /// Write access to a live buffer's data.
    pub fn data_mut(&mut self, pin: PinId) -> Option<&mut PinData> {
        let e = self.entries.get_mut(pin.0 as usize)?;
        if e.released {
            None
        } else {
            Some(&mut e.data)
        }
    }

    /// The acquisition kind of a pin (even if released).
    pub fn kind(&self, pin: PinId) -> Option<PinKind> {
        self.entries.get(pin.0 as usize).map(|e| e.kind)
    }

    /// The pinned object of a pin (even if released).
    pub fn object(&self, pin: PinId) -> Option<ObjectId> {
        self.entries.get(pin.0 as usize).map(|e| e.object)
    }

    /// Returns `true` if the pin exists and has not been released.
    pub fn is_live(&self, pin: PinId) -> bool {
        self.entries
            .get(pin.0 as usize)
            .map(|e| !e.released)
            .unwrap_or(false)
    }

    /// All unreleased pins — the leak report at VM death.
    pub fn leaked(&self) -> Vec<(PinId, ObjectId, PinKind)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.released)
            .map(|(i, e)| (PinId(i as u32), e.object, e.kind))
            .collect()
    }

    /// Number of unreleased pins.
    pub fn live_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.released).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::PrimType;

    #[test]
    fn acquire_release_roundtrip() {
        let mut t = PinTable::new();
        let p = t.acquire(
            ObjectId(1),
            PinKind::ArrayElements,
            PinData::Prim(PrimArray::zeroed(PrimType::Int, 2)),
        );
        assert!(t.is_live(p));
        assert_eq!(t.kind(p), Some(PinKind::ArrayElements));
        let (obj, _) = t.release(p, PinKind::ArrayElements).unwrap();
        assert_eq!(obj, ObjectId(1));
        assert!(!t.is_live(p));
    }

    #[test]
    fn double_free_detected() {
        let mut t = PinTable::new();
        let p = t.acquire(ObjectId(1), PinKind::StringUtfChars, PinData::Utf8(vec![0]));
        t.release(p, PinKind::StringUtfChars).unwrap();
        assert_eq!(
            t.release(p, PinKind::StringUtfChars),
            Err(PinError::AlreadyReleased)
        );
    }

    #[test]
    fn kind_mismatch_detected() {
        let mut t = PinTable::new();
        let p = t.acquire(ObjectId(1), PinKind::StringChars, PinData::Utf16(vec![65]));
        assert!(matches!(
            t.release(p, PinKind::StringUtfChars),
            Err(PinError::KindMismatch { .. })
        ));
        // Still live; correct release works.
        assert!(t.release(p, PinKind::StringChars).is_ok());
    }

    #[test]
    fn leak_sweep() {
        let mut t = PinTable::new();
        let _p1 = t.acquire(ObjectId(1), PinKind::ArrayCritical, PinData::Utf16(vec![]));
        let p2 = t.acquire(ObjectId(2), PinKind::StringCritical, PinData::Utf16(vec![]));
        t.release(p2, PinKind::StringCritical).unwrap();
        let leaked = t.leaked();
        assert_eq!(leaked.len(), 1);
        assert_eq!(leaked[0].1, ObjectId(1));
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn released_pin_data_inaccessible() {
        let mut t = PinTable::new();
        let p = t.acquire(ObjectId(1), PinKind::StringChars, PinData::Utf16(vec![104]));
        assert!(t.data(p).is_some());
        t.release(p, PinKind::StringChars).unwrap();
        assert!(t.data(p).is_none());
        assert!(t.data_mut(p).is_none());
    }

    #[test]
    fn critical_kinds() {
        assert!(PinKind::ArrayCritical.is_critical());
        assert!(PinKind::StringCritical.is_critical());
        assert!(!PinKind::ArrayElements.is_critical());
        assert!(!PinKind::StringChars.is_critical());
        assert!(!PinKind::StringUtfChars.is_critical());
    }

    #[test]
    fn unknown_pin() {
        let mut t = PinTable::new();
        assert_eq!(
            t.release(PinId(5), PinKind::StringChars),
            Err(PinError::Unknown)
        );
        assert!(!t.is_live(PinId(5)));
    }
}
