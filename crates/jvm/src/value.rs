//! Values and cross-language references.
//!
//! Native code never sees raw heap addresses: it holds opaque [`JRef`]
//! handles that indirect through per-thread local-reference tables or the
//! VM-wide global tables. The heap is managed by a *moving* collector, so a
//! handle that has been released (its table slot freed, and possibly
//! recycled) is genuinely dangling — exactly the failure mode of the
//! paper's Figure 1.

use std::fmt;

use crate::descriptor::PrimType;

/// Stable identity of a heap object. Unlike heap addresses, object ids
/// never change across garbage collections and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// A heap address ("ordinary object pointer"). **Unstable across GC** —
/// the collector moves objects, so an `Oop` must never be held across an
/// allocation point. Native code holds [`JRef`] handles instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Oop(pub(crate) u32);

impl Oop {
    /// Raw index into the current heap space.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identity of a simulated JVM thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u16);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread-{}", self.0)
    }
}

/// The kind of a cross-language reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// The null reference.
    Null,
    /// A local reference: valid only on its owning thread, only until the
    /// enclosing native method returns (or it is explicitly deleted).
    Local,
    /// A global reference: valid across threads and native calls until
    /// explicitly deleted; a GC root.
    Global,
    /// A weak global reference: like global but does not keep its target
    /// alive.
    WeakGlobal,
}

impl fmt::Display for RefKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RefKind::Null => "null",
            RefKind::Local => "local",
            RefKind::Global => "global",
            RefKind::WeakGlobal => "weak-global",
        };
        f.write_str(s)
    }
}

/// An opaque cross-language reference handle, as passed between "Java" and
/// "C" across the simulated JNI.
///
/// A reference names a slot in a handle table plus the slot's generation at
/// acquisition time; if the slot has since been freed (and possibly
/// recycled for a different object) the reference is *dangling* and
/// resolving it through the raw, unchecked JVM yields vendor-defined
/// undefined behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JRef {
    kind: RefKind,
    /// Owning thread for local references (garbage for others).
    owner: ThreadId,
    slot: u32,
    generation: u32,
}

impl JRef {
    /// The null reference.
    pub const NULL: JRef = JRef {
        kind: RefKind::Null,
        owner: ThreadId(0),
        slot: 0,
        generation: 0,
    };

    pub(crate) fn local(owner: ThreadId, slot: u32, generation: u32) -> JRef {
        JRef {
            kind: RefKind::Local,
            owner,
            slot,
            generation,
        }
    }

    pub(crate) fn global(slot: u32, generation: u32) -> JRef {
        JRef {
            kind: RefKind::Global,
            owner: ThreadId(0),
            slot,
            generation,
        }
    }

    pub(crate) fn weak_global(slot: u32, generation: u32) -> JRef {
        JRef {
            kind: RefKind::WeakGlobal,
            owner: ThreadId(0),
            slot,
            generation,
        }
    }

    /// Forges a reference from raw bits, simulating C code that casts an
    /// arbitrary pointer-sized value (for example a `jmethodID`) to
    /// `jobject` — pitfall 6 of the paper's Table 1. The result is almost
    /// certainly dangling or aliased.
    pub fn forged(bits: u64) -> JRef {
        JRef {
            kind: RefKind::Local,
            owner: ThreadId((bits >> 48) as u16),
            slot: (bits >> 16) as u32,
            generation: bits as u16 as u32,
        }
    }

    /// Reassembles a reference from its observable parts, as produced by
    /// [`JRef::kind`]/[`JRef::owner`]/[`JRef::slot`]/[`JRef::generation`].
    ///
    /// This exists so external tooling (trace recorders, replayers) can
    /// round-trip a reference through a serialized form without losing the
    /// slot/generation identity that makes dangling-handle bugs
    /// reproducible. The result is exactly as (in)valid as the original:
    /// the constructor performs no liveness check.
    pub fn from_parts(kind: RefKind, owner: ThreadId, slot: u32, generation: u32) -> JRef {
        JRef {
            kind,
            owner,
            slot,
            generation,
        }
    }

    /// Returns `true` for the null reference.
    pub fn is_null(self) -> bool {
        self.kind == RefKind::Null
    }

    /// The reference's kind.
    pub fn kind(self) -> RefKind {
        self.kind
    }

    /// The owning thread (meaningful for local references only).
    pub fn owner(self) -> ThreadId {
        self.owner
    }

    /// Handle-table slot index.
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// Slot generation at acquisition.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl fmt::Display for JRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            f.write_str("null")
        } else {
            write!(
                f,
                "{}ref[t{}@{}g{}]",
                self.kind, self.owner.0, self.slot, self.generation
            )
        }
    }
}

/// A method ID: an opaque handle to a resolved Java method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodId(pub(crate) u32);

impl MethodId {
    /// Raw index (for diagnostics).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Forges a method ID from raw bits (simulating C type confusion;
    /// pitfall 6). Validity is entirely accidental.
    pub fn forged(bits: u64) -> MethodId {
        MethodId(bits as u32)
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mid#{}", self.0)
    }
}

/// A field ID: an opaque handle to a resolved Java field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldId(pub(crate) u32);

impl FieldId {
    /// Raw index (for diagnostics).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Forges a field ID from raw bits (simulating C type confusion).
    pub fn forged(bits: u64) -> FieldId {
        FieldId(bits as u32)
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fid#{}", self.0)
    }
}

/// A Java value as passed across the language boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JValue {
    /// `boolean`
    Bool(bool),
    /// `byte`
    Byte(i8),
    /// `char` (UTF-16 code unit)
    Char(u16),
    /// `short`
    Short(i16),
    /// `int`
    Int(i32),
    /// `long`
    Long(i64),
    /// `float`
    Float(f32),
    /// `double`
    Double(f64),
    /// Any reference type (possibly [`JRef::NULL`]).
    Ref(JRef),
    /// The absence of a value (result of a `void` method).
    Void,
}

impl JValue {
    /// The null reference value.
    pub const NULL: JValue = JValue::Ref(JRef::NULL);

    /// Extracts a reference, if this is a reference value.
    pub fn as_ref(self) -> Option<JRef> {
        match self {
            JValue::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Extracts an `int`, if this is one.
    pub fn as_int(self) -> Option<i32> {
        match self {
            JValue::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Extracts a `long`, if this is one.
    pub fn as_long(self) -> Option<i64> {
        match self {
            JValue::Long(l) => Some(l),
            _ => None,
        }
    }

    /// Extracts a `boolean`, if this is one.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            JValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts a `double`, if this is one.
    pub fn as_double(self) -> Option<f64> {
        match self {
            JValue::Double(d) => Some(d),
            _ => None,
        }
    }

    /// The primitive type of this value, or `None` for references/void.
    pub fn prim_type(self) -> Option<PrimType> {
        Some(match self {
            JValue::Bool(_) => PrimType::Boolean,
            JValue::Byte(_) => PrimType::Byte,
            JValue::Char(_) => PrimType::Char,
            JValue::Short(_) => PrimType::Short,
            JValue::Int(_) => PrimType::Int,
            JValue::Long(_) => PrimType::Long,
            JValue::Float(_) => PrimType::Float,
            JValue::Double(_) => PrimType::Double,
            JValue::Ref(_) | JValue::Void => return None,
        })
    }

    /// The default ("zero") value for a primitive type.
    pub fn default_of(ty: PrimType) -> JValue {
        match ty {
            PrimType::Boolean => JValue::Bool(false),
            PrimType::Byte => JValue::Byte(0),
            PrimType::Char => JValue::Char(0),
            PrimType::Short => JValue::Short(0),
            PrimType::Int => JValue::Int(0),
            PrimType::Long => JValue::Long(0),
            PrimType::Float => JValue::Float(0.0),
            PrimType::Double => JValue::Double(0.0),
        }
    }
}

impl fmt::Display for JValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JValue::Bool(v) => write!(f, "{v}"),
            JValue::Byte(v) => write!(f, "{v}b"),
            JValue::Char(v) => write!(f, "'\\u{v:04x}'"),
            JValue::Short(v) => write!(f, "{v}s"),
            JValue::Int(v) => write!(f, "{v}"),
            JValue::Long(v) => write!(f, "{v}L"),
            JValue::Float(v) => write!(f, "{v}f"),
            JValue::Double(v) => write!(f, "{v}d"),
            JValue::Ref(r) => write!(f, "{r}"),
            JValue::Void => f.write_str("void"),
        }
    }
}

impl From<bool> for JValue {
    fn from(v: bool) -> JValue {
        JValue::Bool(v)
    }
}

impl From<i32> for JValue {
    fn from(v: i32) -> JValue {
        JValue::Int(v)
    }
}

impl From<i64> for JValue {
    fn from(v: i64) -> JValue {
        JValue::Long(v)
    }
}

impl From<f64> for JValue {
    fn from(v: f64) -> JValue {
        JValue::Double(v)
    }
}

impl From<JRef> for JValue {
    fn from(v: JRef) -> JValue {
        JValue::Ref(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ref_properties() {
        assert!(JRef::NULL.is_null());
        assert_eq!(JRef::NULL.kind(), RefKind::Null);
        assert_eq!(format!("{}", JRef::NULL), "null");
        assert_eq!(JValue::NULL.as_ref(), Some(JRef::NULL));
    }

    #[test]
    fn forged_refs_are_not_null() {
        let r = JRef::forged(0xdead_beef_cafe);
        assert!(!r.is_null());
        assert_eq!(r.kind(), RefKind::Local);
    }

    #[test]
    fn from_parts_round_trips() {
        let r = JRef::forged(0x0002_0000_0007_0003);
        let back = JRef::from_parts(r.kind(), r.owner(), r.slot(), r.generation());
        assert_eq!(back, r);
        let null = JRef::from_parts(RefKind::Null, ThreadId(0), 0, 0);
        assert!(null.is_null());
        assert_eq!(null, JRef::NULL);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(JValue::Int(3).as_int(), Some(3));
        assert_eq!(JValue::Int(3).as_long(), None);
        assert_eq!(JValue::Long(9).as_long(), Some(9));
        assert_eq!(JValue::Bool(true).as_bool(), Some(true));
        assert_eq!(JValue::Double(2.5).as_double(), Some(2.5));
        assert_eq!(JValue::Void.prim_type(), None);
        assert_eq!(JValue::Char(65).prim_type(), Some(PrimType::Char));
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(JValue::default_of(PrimType::Int), JValue::Int(0));
        assert_eq!(JValue::default_of(PrimType::Boolean), JValue::Bool(false));
        assert_eq!(JValue::default_of(PrimType::Double), JValue::Double(0.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(JValue::from(true), JValue::Bool(true));
        assert_eq!(JValue::from(7i32), JValue::Int(7));
        assert_eq!(JValue::from(7i64), JValue::Long(7));
        assert_eq!(JValue::from(1.5f64), JValue::Double(1.5));
    }

    #[test]
    fn displays_nonempty() {
        for v in [
            JValue::Bool(true),
            JValue::Byte(1),
            JValue::Char(65),
            JValue::Short(2),
            JValue::Int(3),
            JValue::Long(4),
            JValue::Float(1.0),
            JValue::Double(2.0),
            JValue::NULL,
            JValue::Void,
        ] {
            assert!(!format!("{v}").is_empty());
        }
    }
}
