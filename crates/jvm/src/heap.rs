//! The object heap and its moving (copying) garbage collector.
//!
//! The collector relocates every live object on each collection, so heap
//! addresses ([`Oop`]s) are only stable between allocation points. This is
//! deliberate: the JNI's local/global reference discipline exists precisely
//! because collectors move objects, and a simulated JVM with a non-moving
//! heap would make many of the paper's bugs (dangling local references,
//! cached `jobject`s in C heap structures) silently benign.

use std::collections::HashMap;

use crate::class::ClassId;
use crate::descriptor::PrimType;
use crate::value::{JValue, ObjectId, Oop};

/// A field or array-element storage slot inside the heap.
///
/// Unlike [`JValue`], reference slots hold raw heap addresses (updated by
/// the collector), not cross-language handles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Slot {
    /// `boolean`
    Bool(bool),
    /// `byte`
    Byte(i8),
    /// `char`
    Char(u16),
    /// `short`
    Short(i16),
    /// `int`
    Int(i32),
    /// `long`
    Long(i64),
    /// `float`
    Float(f32),
    /// `double`
    Double(f64),
    /// A reference (possibly null).
    Ref(Option<Oop>),
}

impl Slot {
    /// The zero value for a primitive type.
    pub fn default_of(ty: PrimType) -> Slot {
        match ty {
            PrimType::Boolean => Slot::Bool(false),
            PrimType::Byte => Slot::Byte(0),
            PrimType::Char => Slot::Char(0),
            PrimType::Short => Slot::Short(0),
            PrimType::Int => Slot::Int(0),
            PrimType::Long => Slot::Long(0),
            PrimType::Float => Slot::Float(0.0),
            PrimType::Double => Slot::Double(0.0),
        }
    }

    /// Converts a primitive [`JValue`] to a slot.
    ///
    /// # Panics
    ///
    /// Panics for reference or void values — reference translation is the
    /// VM's job because it involves handle resolution.
    pub fn from_prim(value: JValue) -> Slot {
        match value {
            JValue::Bool(v) => Slot::Bool(v),
            JValue::Byte(v) => Slot::Byte(v),
            JValue::Char(v) => Slot::Char(v),
            JValue::Short(v) => Slot::Short(v),
            JValue::Int(v) => Slot::Int(v),
            JValue::Long(v) => Slot::Long(v),
            JValue::Float(v) => Slot::Float(v),
            JValue::Double(v) => Slot::Double(v),
            JValue::Ref(_) | JValue::Void => panic!("not a primitive value"),
        }
    }

    /// Converts a primitive slot to a [`JValue`].
    ///
    /// # Panics
    ///
    /// Panics for reference slots.
    pub fn to_prim(self) -> JValue {
        match self {
            Slot::Bool(v) => JValue::Bool(v),
            Slot::Byte(v) => JValue::Byte(v),
            Slot::Char(v) => JValue::Char(v),
            Slot::Short(v) => JValue::Short(v),
            Slot::Int(v) => JValue::Int(v),
            Slot::Long(v) => JValue::Long(v),
            Slot::Float(v) => JValue::Float(v),
            Slot::Double(v) => JValue::Double(v),
            Slot::Ref(_) => panic!("not a primitive slot"),
        }
    }

    /// Returns the contained reference, if this is a reference slot.
    pub fn as_oop(self) -> Option<Option<Oop>> {
        match self {
            Slot::Ref(r) => Some(r),
            _ => None,
        }
    }
}

/// Backing storage of a primitive array.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimArray {
    /// `boolean[]`
    Bool(Vec<bool>),
    /// `byte[]`
    Byte(Vec<i8>),
    /// `char[]`
    Char(Vec<u16>),
    /// `short[]`
    Short(Vec<i16>),
    /// `int[]`
    Int(Vec<i32>),
    /// `long[]`
    Long(Vec<i64>),
    /// `float[]`
    Float(Vec<f32>),
    /// `double[]`
    Double(Vec<f64>),
}

impl PrimArray {
    /// Creates a zero-filled array of the given element type and length.
    pub fn zeroed(ty: PrimType, len: usize) -> PrimArray {
        match ty {
            PrimType::Boolean => PrimArray::Bool(vec![false; len]),
            PrimType::Byte => PrimArray::Byte(vec![0; len]),
            PrimType::Char => PrimArray::Char(vec![0; len]),
            PrimType::Short => PrimArray::Short(vec![0; len]),
            PrimType::Int => PrimArray::Int(vec![0; len]),
            PrimType::Long => PrimArray::Long(vec![0; len]),
            PrimType::Float => PrimArray::Float(vec![0.0; len]),
            PrimType::Double => PrimArray::Double(vec![0.0; len]),
        }
    }

    /// Element type.
    pub fn elem_type(&self) -> PrimType {
        match self {
            PrimArray::Bool(_) => PrimType::Boolean,
            PrimArray::Byte(_) => PrimType::Byte,
            PrimArray::Char(_) => PrimType::Char,
            PrimArray::Short(_) => PrimType::Short,
            PrimArray::Int(_) => PrimType::Int,
            PrimArray::Long(_) => PrimType::Long,
            PrimArray::Float(_) => PrimType::Float,
            PrimArray::Double(_) => PrimType::Double,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            PrimArray::Bool(v) => v.len(),
            PrimArray::Byte(v) => v.len(),
            PrimArray::Char(v) => v.len(),
            PrimArray::Short(v) => v.len(),
            PrimArray::Int(v) => v.len(),
            PrimArray::Long(v) => v.len(),
            PrimArray::Float(v) => v.len(),
            PrimArray::Double(v) => v.len(),
        }
    }

    /// Returns `true` for empty arrays.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads element `i` as a [`JValue`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> JValue {
        match self {
            PrimArray::Bool(v) => JValue::Bool(v[i]),
            PrimArray::Byte(v) => JValue::Byte(v[i]),
            PrimArray::Char(v) => JValue::Char(v[i]),
            PrimArray::Short(v) => JValue::Short(v[i]),
            PrimArray::Int(v) => JValue::Int(v[i]),
            PrimArray::Long(v) => JValue::Long(v[i]),
            PrimArray::Float(v) => JValue::Float(v[i]),
            PrimArray::Double(v) => JValue::Double(v[i]),
        }
    }

    /// Writes element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or the value's type doesn't match.
    pub fn set(&mut self, i: usize, value: JValue) {
        match (self, value) {
            (PrimArray::Bool(v), JValue::Bool(x)) => v[i] = x,
            (PrimArray::Byte(v), JValue::Byte(x)) => v[i] = x,
            (PrimArray::Char(v), JValue::Char(x)) => v[i] = x,
            (PrimArray::Short(v), JValue::Short(x)) => v[i] = x,
            (PrimArray::Int(v), JValue::Int(x)) => v[i] = x,
            (PrimArray::Long(v), JValue::Long(x)) => v[i] = x,
            (PrimArray::Float(v), JValue::Float(x)) => v[i] = x,
            (PrimArray::Double(v), JValue::Double(x)) => v[i] = x,
            (arr, v) => panic!(
                "type mismatch writing {v:?} into {:?} array",
                arr.elem_type()
            ),
        }
    }
}

/// Payload of a heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// An ordinary object with its instance fields in layout order.
    Object {
        /// Instance field slots.
        fields: Vec<Slot>,
    },
    /// A primitive array.
    PrimArray(PrimArray),
    /// A reference array.
    RefArray {
        /// Elements (null-initialised).
        elems: Vec<Option<Oop>>,
    },
    /// A `java.lang.String` with its UTF-16 contents.
    Str {
        /// UTF-16 code units (not NUL-terminated, as in a real JVM).
        chars: Vec<u16>,
    },
    /// A `java.lang.Class` instance mirroring a registered class.
    ClassMirror(ClassId),
}

/// One heap object: header (identity + class) and body.
#[derive(Debug, Clone)]
pub struct HeapObject {
    /// Stable identity (survives GC, never reused).
    pub id: ObjectId,
    /// The object's class.
    pub class: ClassId,
    /// Payload.
    pub body: Body,
}

/// Statistics for one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Objects copied to the new space.
    pub live: usize,
    /// Objects reclaimed.
    pub collected: usize,
    /// Weak references cleared because their target died.
    pub weak_cleared: usize,
}

/// The garbage-collected object heap.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<HeapObject>,
    next_id: u64,
    collections: u64,
    allocated_total: u64,
    id_index: HashMap<u64, Oop>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of objects currently in the heap (live + not-yet-collected
    /// garbage).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total number of collections performed.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Total number of objects ever allocated.
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    fn push(&mut self, class: ClassId, body: Body) -> Oop {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.allocated_total += 1;
        let oop = Oop(self.objects.len() as u32);
        self.objects.push(HeapObject { id, class, body });
        self.id_index.insert(id.0, oop);
        oop
    }

    /// Allocates an ordinary object with the given field slots.
    pub fn alloc_object(&mut self, class: ClassId, fields: Vec<Slot>) -> Oop {
        self.push(class, Body::Object { fields })
    }

    /// Allocates a primitive array.
    pub fn alloc_prim_array(&mut self, class: ClassId, data: PrimArray) -> Oop {
        self.push(class, Body::PrimArray(data))
    }

    /// Allocates a reference array of `len` null elements.
    pub fn alloc_ref_array(&mut self, class: ClassId, len: usize) -> Oop {
        self.push(
            class,
            Body::RefArray {
                elems: vec![None; len],
            },
        )
    }

    /// Allocates a string from UTF-16 code units.
    pub fn alloc_string(&mut self, class: ClassId, chars: Vec<u16>) -> Oop {
        self.push(class, Body::Str { chars })
    }

    /// Allocates a class mirror.
    pub fn alloc_class_mirror(&mut self, class_class: ClassId, mirrored: ClassId) -> Oop {
        self.push(class_class, Body::ClassMirror(mirrored))
    }

    /// Returns the object at `oop`.
    ///
    /// # Panics
    ///
    /// Panics if `oop` is out of range (stale across a GC). Callers must
    /// only pass addresses obtained since the last collection or resolved
    /// through a live handle.
    pub fn get(&self, oop: Oop) -> &HeapObject {
        &self.objects[oop.index()]
    }

    /// Mutable access to the object at `oop`.
    ///
    /// # Panics
    ///
    /// Panics if `oop` is out of range.
    pub fn get_mut(&mut self, oop: Oop) -> &mut HeapObject {
        &mut self.objects[oop.index()]
    }

    /// Returns the object at `oop` if in range (for tolerant, raw-JVM-style
    /// access to possibly-stale addresses).
    pub fn try_get(&self, oop: Oop) -> Option<&HeapObject> {
        self.objects.get(oop.index())
    }

    /// Stable identity of the object at `oop`.
    ///
    /// # Panics
    ///
    /// Panics if `oop` is out of range.
    pub fn id_of(&self, oop: Oop) -> ObjectId {
        self.get(oop).id
    }

    /// Current address of the object with identity `id`, if it is still
    /// live (or uncollected).
    pub fn oop_of(&self, id: ObjectId) -> Option<Oop> {
        self.id_index.get(&id.0).copied()
    }

    /// Performs a copying collection.
    ///
    /// `strong_roots` must yield a mutable location for every strong root
    /// (local/global handle targets, static fields, pending exceptions,
    /// class mirrors, monitor-held objects); the collector updates each
    /// location in place. `weak_roots` yields weak locations, which are
    /// updated if their target survives and cleared to `None` otherwise.
    pub fn collect(
        &mut self,
        strong_roots: &mut [&mut dyn Iterator<Item = &mut Option<Oop>>],
        weak_roots: &mut [&mut dyn Iterator<Item = &mut Option<Oop>>],
    ) -> GcStats {
        self.collections += 1;
        let old_len = self.objects.len();
        let mut forwarding: Vec<Option<Oop>> = vec![None; old_len];
        let mut to_space: Vec<HeapObject> = Vec::new();
        let mut worklist: Vec<Oop> = Vec::new();

        // A shallow evacuation helper, used for roots and then the BFS.
        fn forward(
            from: &mut [HeapObject],
            to: &mut Vec<HeapObject>,
            forwarding: &mut [Option<Oop>],
            worklist: &mut Vec<Oop>,
            old: Oop,
        ) -> Oop {
            if let Some(new) = forwarding[old.index()] {
                return new;
            }
            let new = Oop(to.len() as u32);
            // Leave a cheap tombstone behind; the body moves to to-space.
            let obj = std::mem::replace(
                &mut from[old.index()],
                HeapObject {
                    id: ObjectId(u64::MAX),
                    class: ClassId(u32::MAX),
                    body: Body::Object { fields: Vec::new() },
                },
            );
            to.push(obj);
            forwarding[old.index()] = Some(new);
            worklist.push(new);
            new
        }

        for roots in strong_roots.iter_mut() {
            for slot in roots.by_ref() {
                if let Some(old) = *slot {
                    *slot = Some(forward(
                        &mut self.objects,
                        &mut to_space,
                        &mut forwarding,
                        &mut worklist,
                        old,
                    ));
                }
            }
        }

        while let Some(new_oop) = worklist.pop() {
            // Gather outgoing edges by index, then forward and write back;
            // two passes keep the borrows disjoint.
            let targets: Vec<(usize, Oop)> = match &to_space[new_oop.index()].body {
                Body::Object { fields } => fields
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Slot::Ref(Some(o)) => Some((i, *o)),
                        _ => None,
                    })
                    .collect(),
                Body::RefArray { elems } => elems
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| e.map(|o| (i, o)))
                    .collect(),
                Body::PrimArray(_) | Body::Str { .. } | Body::ClassMirror(_) => Vec::new(),
            };
            for (i, old) in targets {
                let fwd = forward(
                    &mut self.objects,
                    &mut to_space,
                    &mut forwarding,
                    &mut worklist,
                    old,
                );
                match &mut to_space[new_oop.index()].body {
                    Body::Object { fields } => fields[i] = Slot::Ref(Some(fwd)),
                    Body::RefArray { elems } => elems[i] = Some(fwd),
                    _ => unreachable!("only objects and ref arrays have edges"),
                }
            }
        }

        let mut weak_cleared = 0;
        for roots in weak_roots.iter_mut() {
            for slot in roots.by_ref() {
                if let Some(old) = *slot {
                    match forwarding[old.index()] {
                        Some(new) => *slot = Some(new),
                        None => {
                            *slot = None;
                            weak_cleared += 1;
                        }
                    }
                }
            }
        }

        let live = to_space.len();
        let stats = GcStats {
            live,
            collected: old_len - live,
            weak_cleared,
        };
        self.objects = to_space;
        self.id_index.clear();
        for (i, obj) in self.objects.iter().enumerate() {
            self.id_index.insert(obj.id.0, Oop(i as u32));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;

    fn setup() -> (ClassRegistry, Heap, ClassId, ClassId) {
        let reg = ClassRegistry::with_core_classes();
        let obj = reg.class_by_name(crate::class::names::OBJECT).unwrap();
        let string = reg.class_by_name(crate::class::names::STRING).unwrap();
        (reg, Heap::new(), obj, string)
    }

    fn collect_with_roots(heap: &mut Heap, roots: &mut [Option<Oop>]) -> GcStats {
        let mut it = roots.iter_mut();
        heap.collect(&mut [&mut it], &mut [])
    }

    #[test]
    fn allocation_assigns_fresh_ids() {
        let (_, mut heap, obj, _) = setup();
        let a = heap.alloc_object(obj, vec![]);
        let b = heap.alloc_object(obj, vec![]);
        assert_ne!(heap.id_of(a), heap.id_of(b));
        assert_eq!(heap.len(), 2);
        assert_eq!(heap.allocated_total(), 2);
    }

    #[test]
    fn gc_keeps_rooted_objects_and_reclaims_garbage() {
        let (_, mut heap, obj, _) = setup();
        let keep = heap.alloc_object(obj, vec![]);
        let _garbage = heap.alloc_object(obj, vec![]);
        let keep_id = heap.id_of(keep);
        let mut roots = [Some(keep)];
        let stats = collect_with_roots(&mut heap, &mut roots);
        assert_eq!(stats.live, 1);
        assert_eq!(stats.collected, 1);
        let new_oop = roots[0].unwrap();
        assert_eq!(heap.id_of(new_oop), keep_id);
        assert_eq!(heap.oop_of(keep_id), Some(new_oop));
    }

    #[test]
    fn gc_moves_objects() {
        let (_, mut heap, obj, _) = setup();
        let _garbage = heap.alloc_object(obj, vec![]);
        let keep = heap.alloc_object(obj, vec![]);
        let mut roots = [Some(keep)];
        collect_with_roots(&mut heap, &mut roots);
        // `keep` was at index 1; with the garbage gone it is now at 0.
        assert_ne!(roots[0].unwrap(), keep, "address must change");
    }

    #[test]
    fn gc_traces_object_fields_transitively() {
        let (_, mut heap, obj, _) = setup();
        let inner = heap.alloc_object(obj, vec![]);
        let middle = heap.alloc_object(obj, vec![Slot::Ref(Some(inner))]);
        let outer = heap.alloc_object(obj, vec![Slot::Ref(Some(middle))]);
        let inner_id = heap.id_of(inner);
        let mut roots = [Some(outer)];
        let stats = collect_with_roots(&mut heap, &mut roots);
        assert_eq!(stats.live, 3);
        // Follow the chain through updated addresses.
        let outer = roots[0].unwrap();
        let middle = match &heap.get(outer).body {
            Body::Object { fields } => fields[0].as_oop().unwrap().unwrap(),
            _ => panic!(),
        };
        let inner = match &heap.get(middle).body {
            Body::Object { fields } => fields[0].as_oop().unwrap().unwrap(),
            _ => panic!(),
        };
        assert_eq!(heap.id_of(inner), inner_id);
    }

    #[test]
    fn gc_traces_ref_arrays_and_handles_cycles() {
        let (mut reg, mut heap, obj, _) = setup();
        let arr_class = reg.array_class(crate::descriptor::FieldType::object("java/lang/Object"));
        let a = heap.alloc_ref_array(arr_class, 2);
        let b = heap.alloc_object(obj, vec![Slot::Ref(Some(a))]);
        // Cycle: a[0] = b; a[1] = a.
        match &mut heap.get_mut(a).body {
            Body::RefArray { elems } => {
                elems[0] = Some(b);
                elems[1] = Some(a);
            }
            _ => panic!(),
        }
        let mut roots = [Some(a)];
        let stats = collect_with_roots(&mut heap, &mut roots);
        assert_eq!(stats.live, 2);
        let a = roots[0].unwrap();
        match &heap.get(a).body {
            Body::RefArray { elems } => {
                assert_eq!(elems[1], Some(a), "self edge preserved");
                assert!(elems[0].is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn weak_roots_cleared_when_target_dies() {
        let (_, mut heap, obj, _) = setup();
        let strong = heap.alloc_object(obj, vec![]);
        let weak_only = heap.alloc_object(obj, vec![]);
        let mut strong_roots = [Some(strong)];
        let mut weak_roots = [Some(strong), Some(weak_only)];
        let mut s = strong_roots.iter_mut();
        let mut w = weak_roots.iter_mut();
        let stats = heap.collect(&mut [&mut s], &mut [&mut w]);
        assert_eq!(stats.weak_cleared, 1);
        assert!(weak_roots[0].is_some(), "weak to live object survives");
        assert!(weak_roots[1].is_none(), "weak to dead object cleared");
    }

    #[test]
    fn strings_and_prim_arrays_survive() {
        let (mut reg, mut heap, _, string) = setup();
        let int_arr_class = reg.prim_array_class(PrimType::Int);
        let s = heap.alloc_string(string, vec![104, 105]);
        let a = heap.alloc_prim_array(int_arr_class, PrimArray::zeroed(PrimType::Int, 3));
        match &mut heap.get_mut(a).body {
            Body::PrimArray(arr) => arr.set(2, JValue::Int(9)),
            _ => panic!(),
        }
        let mut roots = [Some(s), Some(a)];
        collect_with_roots(&mut heap, &mut roots);
        match &heap.get(roots[0].unwrap()).body {
            Body::Str { chars } => assert_eq!(chars, &vec![104, 105]),
            _ => panic!(),
        }
        match &heap.get(roots[1].unwrap()).body {
            Body::PrimArray(arr) => assert_eq!(arr.get(2), JValue::Int(9)),
            _ => panic!(),
        }
    }

    #[test]
    fn id_index_tracks_moves() {
        let (_, mut heap, obj, _) = setup();
        let _g1 = heap.alloc_object(obj, vec![]);
        let _g2 = heap.alloc_object(obj, vec![]);
        let keep = heap.alloc_object(obj, vec![]);
        let id = heap.id_of(keep);
        let mut roots = [Some(keep)];
        collect_with_roots(&mut heap, &mut roots);
        assert_eq!(heap.oop_of(id), roots[0]);
        // Garbage ids are gone from the index.
        assert_eq!(heap.len(), 1);
        assert_eq!(heap.collections(), 1);
    }

    #[test]
    fn prim_array_roundtrip_all_types() {
        for ty in PrimType::ALL {
            let mut arr = PrimArray::zeroed(ty, 4);
            assert_eq!(arr.elem_type(), ty);
            assert_eq!(arr.len(), 4);
            assert!(!arr.is_empty());
            let v = JValue::default_of(ty);
            arr.set(1, v);
            assert_eq!(arr.get(1), v);
        }
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn prim_array_type_mismatch_panics() {
        let mut arr = PrimArray::zeroed(PrimType::Int, 1);
        arr.set(0, JValue::Long(1));
    }

    #[test]
    fn slot_prim_conversions() {
        assert_eq!(Slot::from_prim(JValue::Int(5)).to_prim(), JValue::Int(5));
        assert_eq!(
            Slot::from_prim(JValue::Bool(true)).to_prim(),
            JValue::Bool(true)
        );
        assert_eq!(Slot::Ref(None).as_oop(), Some(None));
        assert_eq!(Slot::Int(1).as_oop(), None);
    }

    #[test]
    #[should_panic(expected = "not a primitive value")]
    fn slot_from_ref_panics() {
        let _ = Slot::from_prim(JValue::NULL);
    }
}
