//! Simulated JVM threads: local-reference frames, pending exceptions, and
//! critical-section bookkeeping.
//!
//! Threads here are *logical*: the harness interleaves them explicitly, so
//! experiments are deterministic and no OS concurrency is needed. Each
//! thread owns a slab of local-reference slots organised into frames. A
//! frame is pushed when managed code calls a native method (and by
//! `PushLocalFrame`); popping a frame frees its slots — bumping each slot's
//! generation and recycling it — which is what makes an escaped local
//! reference *dangling*.

use crate::value::{JRef, ObjectId, Oop, RefKind, ThreadId};

/// The JNI guarantees capacity for this many local references per native
/// frame without an explicit `EnsureLocalCapacity`/`PushLocalFrame`
/// request (JNI spec ch. 5; paper Section 5.3).
pub const DEFAULT_LOCAL_CAPACITY: usize = 16;

/// Identifies a thread's `JNIEnv*` value. Each thread has exactly one; C
/// code caching an env token and using it on another thread violates the
/// JNIEnv* state constraint (pitfall 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnvToken(pub u32);

/// Why resolving a reference handle failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefFault {
    /// The handle is the null reference.
    Null,
    /// The handle's slot was freed; `reused` tells whether it has since
    /// been recycled for a *different* object (aliasing — the nastiest
    /// flavour of dangling reference).
    Stale {
        /// Kind of the faulting handle.
        kind: RefKind,
        /// The slot now holds an unrelated live reference.
        reused: bool,
    },
    /// The handle's slot index was never allocated (forged bits).
    OutOfRange {
        /// Kind of the faulting handle.
        kind: RefKind,
    },
    /// A local reference was used on a thread other than its owner.
    ///
    /// Mechanical resolution against the owner's slab may still succeed;
    /// the raw VM surfaces this fault only so vendor models can decide how
    /// undefined the behaviour gets.
    WrongThread {
        /// Thread the reference belongs to.
        owner: ThreadId,
        /// Thread attempting the use.
        current: ThreadId,
    },
}

impl std::error::Error for RefFault {}

impl std::fmt::Display for RefFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefFault::Null => write!(f, "null reference"),
            RefFault::Stale { kind, reused: true } => {
                write!(
                    f,
                    "dangling {kind} reference (slot recycled for another object)"
                )
            }
            RefFault::Stale {
                kind,
                reused: false,
            } => {
                write!(f, "dangling {kind} reference (slot freed)")
            }
            RefFault::OutOfRange { kind } => write!(f, "forged {kind} reference"),
            RefFault::WrongThread { owner, current } => {
                write!(f, "local reference of {owner} used on {current}")
            }
        }
    }
}

#[derive(Debug, Clone)]
struct LocalSlot {
    generation: u32,
    target: Option<Oop>,
    live: bool,
}

/// One local-reference frame.
#[derive(Debug, Clone)]
pub struct Frame {
    capacity: usize,
    slots: Vec<u32>,
}

impl Frame {
    /// The frame's guaranteed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live local references in the frame.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the frame holds no references.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A critical resource acquired via `Get*Critical`, identified by the
/// pinned object and a tally of nested acquisitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHold {
    /// The pinned string or array.
    pub object: ObjectId,
    /// Nested acquisition count.
    pub count: u32,
}

/// Per-thread VM state.
#[derive(Debug, Clone)]
pub struct ThreadState {
    id: ThreadId,
    env: EnvToken,
    slab: Vec<LocalSlot>,
    free: Vec<u32>,
    frames: Vec<Frame>,
    /// Pending Java exception (a GC root).
    pending_exception: Option<Oop>,
    criticals: Vec<CriticalHold>,
}

impl ThreadState {
    pub(crate) fn new(id: ThreadId, env: EnvToken) -> ThreadState {
        ThreadState {
            id,
            env,
            slab: Vec::new(),
            free: Vec::new(),
            frames: vec![Frame {
                capacity: DEFAULT_LOCAL_CAPACITY,
                slots: Vec::new(),
            }],
            pending_exception: None,
            criticals: Vec::new(),
        }
    }

    /// The thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The thread's `JNIEnv*` token.
    pub fn env(&self) -> EnvToken {
        self.env
    }

    /// The current (innermost) frame.
    pub fn current_frame(&self) -> &Frame {
        self.frames.last().expect("thread always has a base frame")
    }

    /// Number of frames (≥ 1; the base frame never pops).
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Total live local references across all frames.
    pub fn live_local_count(&self) -> usize {
        self.frames.iter().map(|f| f.slots.len()).sum()
    }

    /// Pushes a new local frame with the given capacity.
    pub fn push_frame(&mut self, capacity: usize) {
        self.frames.push(Frame {
            capacity,
            slots: Vec::new(),
        });
    }

    /// Pops the innermost frame, freeing its local references. Returns the
    /// number freed, or `None` if only the base frame remains (popping it
    /// is a JNI error the caller must handle).
    pub fn pop_frame(&mut self) -> Option<usize> {
        if self.frames.len() == 1 {
            return None;
        }
        let frame = self.frames.pop().expect("len checked");
        let n = frame.slots.len();
        for slot in frame.slots {
            self.free_slot(slot);
        }
        Some(n)
    }

    /// Raises the current frame's capacity to at least `capacity`
    /// (`EnsureLocalCapacity`).
    pub fn ensure_capacity(&mut self, capacity: usize) {
        let f = self.frames.last_mut().expect("base frame");
        f.capacity = f.capacity.max(capacity);
    }

    fn free_slot(&mut self, slot: u32) {
        let s = &mut self.slab[slot as usize];
        debug_assert!(s.live, "double free of local slot");
        s.live = false;
        s.generation = s.generation.wrapping_add(1);
        s.target = None;
        self.free.push(slot);
    }

    /// Acquires a new local reference to `target` in the current frame.
    ///
    /// The raw VM does **not** enforce the frame capacity — a real JVM's
    /// local-reference pool silently grows (or corrupts memory); detecting
    /// overflow is the checker's job.
    pub fn acquire_local(&mut self, target: Oop) -> JRef {
        let slot = match self.free.pop() {
            Some(s) => {
                let entry = &mut self.slab[s as usize];
                entry.target = Some(target);
                entry.live = true;
                s
            }
            None => {
                self.slab.push(LocalSlot {
                    generation: 0,
                    target: Some(target),
                    live: true,
                });
                (self.slab.len() - 1) as u32
            }
        };
        let generation = self.slab[slot as usize].generation;
        self.frames.last_mut().expect("base frame").slots.push(slot);
        JRef::local(self.id, slot, generation)
    }

    /// Deletes a local reference (`DeleteLocalRef`). Returns the fault if
    /// the handle was already dead or forged; the raw VM may choose to
    /// ignore it.
    pub fn delete_local(&mut self, r: JRef) -> Result<(), RefFault> {
        self.check_local(r)?;
        let slot = r.slot();
        // Remove from whichever frame holds it.
        for f in self.frames.iter_mut().rev() {
            if let Some(pos) = f.slots.iter().position(|&s| s == slot) {
                f.slots.remove(pos);
                self.free_slot(slot);
                return Ok(());
            }
        }
        unreachable!("live slot must be in some frame");
    }

    fn check_local(&self, r: JRef) -> Result<(), RefFault> {
        debug_assert_eq!(r.kind(), RefKind::Local);
        let Some(s) = self.slab.get(r.slot() as usize) else {
            return Err(RefFault::OutOfRange {
                kind: RefKind::Local,
            });
        };
        if !s.live {
            return Err(RefFault::Stale {
                kind: RefKind::Local,
                reused: false,
            });
        }
        if s.generation != r.generation() {
            return Err(RefFault::Stale {
                kind: RefKind::Local,
                reused: true,
            });
        }
        Ok(())
    }

    /// Resolves a local reference to its heap address.
    ///
    /// # Errors
    ///
    /// Returns the [`RefFault`] describing staleness or forgery.
    pub fn resolve_local(&self, r: JRef) -> Result<Oop, RefFault> {
        self.check_local(r)?;
        Ok(self.slab[r.slot() as usize]
            .target
            .expect("live slot has target"))
    }

    /// All strong GC roots of the thread: live local slots plus the
    /// pending exception.
    pub(crate) fn roots_mut(&mut self) -> impl Iterator<Item = &mut Option<Oop>> {
        let ThreadState {
            slab,
            pending_exception,
            ..
        } = self;
        slab.iter_mut()
            .filter(|s| s.live)
            .map(|s| &mut s.target)
            .chain(std::iter::once(pending_exception))
    }

    /// The pending exception, if any.
    pub fn pending_exception(&self) -> Option<Oop> {
        self.pending_exception
    }

    /// Sets or clears the pending exception.
    pub fn set_pending_exception(&mut self, e: Option<Oop>) {
        self.pending_exception = e;
    }

    /// Critical resources currently held by the thread.
    pub fn criticals(&self) -> &[CriticalHold] {
        &self.criticals
    }

    /// Returns `true` while the thread is inside a JNI critical section.
    pub fn in_critical_section(&self) -> bool {
        !self.criticals.is_empty()
    }

    /// Records acquisition of a critical resource.
    pub fn enter_critical(&mut self, object: ObjectId) {
        if let Some(h) = self.criticals.iter_mut().find(|h| h.object == object) {
            h.count += 1;
        } else {
            self.criticals.push(CriticalHold { object, count: 1 });
        }
    }

    /// Records release of a critical resource; returns `false` if the
    /// thread did not hold it (an unmatched release).
    pub fn exit_critical(&mut self, object: ObjectId) -> bool {
        if let Some(pos) = self.criticals.iter().position(|h| h.object == object) {
            self.criticals[pos].count -= 1;
            if self.criticals[pos].count == 0 {
                self.criticals.remove(pos);
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread() -> ThreadState {
        ThreadState::new(ThreadId(1), EnvToken(100))
    }

    #[test]
    fn base_frame_exists() {
        let t = thread();
        assert_eq!(t.frame_depth(), 1);
        assert_eq!(t.current_frame().capacity(), DEFAULT_LOCAL_CAPACITY);
        assert!(t.current_frame().is_empty());
    }

    #[test]
    fn acquire_resolve_roundtrip() {
        let mut t = thread();
        let r = t.acquire_local(Oop(42));
        assert_eq!(r.kind(), RefKind::Local);
        assert_eq!(r.owner(), ThreadId(1));
        assert_eq!(t.resolve_local(r).unwrap(), Oop(42));
        assert_eq!(t.live_local_count(), 1);
    }

    #[test]
    fn delete_makes_reference_stale() {
        let mut t = thread();
        let r = t.acquire_local(Oop(1));
        t.delete_local(r).unwrap();
        assert_eq!(
            t.resolve_local(r),
            Err(RefFault::Stale {
                kind: RefKind::Local,
                reused: false
            })
        );
        // Deleting again is a double free.
        assert!(t.delete_local(r).is_err());
    }

    #[test]
    fn slot_recycling_is_detected_as_aliasing() {
        let mut t = thread();
        let r1 = t.acquire_local(Oop(1));
        t.delete_local(r1).unwrap();
        let r2 = t.acquire_local(Oop(2));
        assert_eq!(r1.slot(), r2.slot(), "slot should be recycled");
        assert_eq!(
            t.resolve_local(r1),
            Err(RefFault::Stale {
                kind: RefKind::Local,
                reused: true
            })
        );
        assert_eq!(t.resolve_local(r2).unwrap(), Oop(2));
    }

    #[test]
    fn pop_frame_frees_references() {
        let mut t = thread();
        let outer = t.acquire_local(Oop(1));
        t.push_frame(DEFAULT_LOCAL_CAPACITY);
        let inner = t.acquire_local(Oop(2));
        assert_eq!(t.live_local_count(), 2);
        assert_eq!(t.pop_frame(), Some(1));
        assert!(
            t.resolve_local(inner).is_err(),
            "inner ref dangles after pop"
        );
        assert_eq!(t.resolve_local(outer).unwrap(), Oop(1));
    }

    #[test]
    fn base_frame_cannot_pop() {
        let mut t = thread();
        assert_eq!(t.pop_frame(), None);
    }

    #[test]
    fn overflow_is_not_enforced_by_raw_vm() {
        let mut t = thread();
        for i in 0..40 {
            t.acquire_local(Oop(i));
        }
        // The raw VM leaks past capacity 16 without complaint (Table 1
        // row 12 default behaviour).
        assert_eq!(t.live_local_count(), 40);
        assert_eq!(t.current_frame().capacity(), DEFAULT_LOCAL_CAPACITY);
    }

    #[test]
    fn ensure_capacity_grows() {
        let mut t = thread();
        t.ensure_capacity(64);
        assert_eq!(t.current_frame().capacity(), 64);
        t.ensure_capacity(8);
        assert_eq!(t.current_frame().capacity(), 64, "never shrinks");
    }

    #[test]
    fn forged_reference_is_out_of_range() {
        let t = thread();
        let forged = JRef::forged(0x0001_0000_dead_0001);
        assert!(matches!(
            t.resolve_local(forged),
            Err(RefFault::OutOfRange { .. })
        ));
    }

    #[test]
    fn critical_section_tally() {
        let mut t = thread();
        assert!(!t.in_critical_section());
        t.enter_critical(ObjectId(5));
        t.enter_critical(ObjectId(5));
        t.enter_critical(ObjectId(6));
        assert!(t.in_critical_section());
        assert_eq!(t.criticals().len(), 2);
        assert!(t.exit_critical(ObjectId(5)));
        assert!(t.exit_critical(ObjectId(5)));
        assert!(!t.exit_critical(ObjectId(5)), "unmatched release detected");
        assert!(t.exit_critical(ObjectId(6)));
        assert!(!t.in_critical_section());
    }

    #[test]
    fn pending_exception_set_and_clear() {
        let mut t = thread();
        assert!(t.pending_exception().is_none());
        t.set_pending_exception(Some(Oop(3)));
        assert_eq!(t.pending_exception(), Some(Oop(3)));
        t.set_pending_exception(None);
        assert!(t.pending_exception().is_none());
    }
}
