//! VM-wide handle tables for global and weak-global references.

use crate::thread::RefFault;
use crate::value::{JRef, Oop, RefKind};

#[derive(Debug, Clone)]
struct HandleSlot {
    generation: u32,
    target: Option<Oop>,
    live: bool,
}

/// A slab of explicitly-managed reference handles (global or weak-global).
///
/// Slots are recycled after deletion with a bumped generation, so a stale
/// handle is distinguishable from a live one — and, when the slot has been
/// reused, is detectably *aliased* to an unrelated object, the worst-case
/// dangling-reference scenario.
#[derive(Debug, Clone)]
pub struct HandleSlab {
    kind: RefKind,
    slots: Vec<HandleSlot>,
    free: Vec<u32>,
    live_count: usize,
}

impl HandleSlab {
    /// Creates a slab issuing handles of the given kind.
    ///
    /// # Panics
    ///
    /// Panics unless `kind` is [`RefKind::Global`] or
    /// [`RefKind::WeakGlobal`].
    pub fn new(kind: RefKind) -> HandleSlab {
        assert!(
            matches!(kind, RefKind::Global | RefKind::WeakGlobal),
            "handle slab holds global or weak-global refs"
        );
        HandleSlab {
            kind,
            slots: Vec::new(),
            free: Vec::new(),
            live_count: 0,
        }
    }

    /// The kind of handle this slab issues.
    pub fn kind(&self) -> RefKind {
        self.kind
    }

    /// Number of live handles.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Acquires a new handle to `target`.
    pub fn acquire(&mut self, target: Oop) -> JRef {
        self.live_count += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                let e = &mut self.slots[s as usize];
                e.target = Some(target);
                e.live = true;
                s
            }
            None => {
                self.slots.push(HandleSlot {
                    generation: 0,
                    target: Some(target),
                    live: true,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        match self.kind {
            RefKind::Global => JRef::global(slot, generation),
            RefKind::WeakGlobal => JRef::weak_global(slot, generation),
            _ => unreachable!(),
        }
    }

    fn check(&self, r: JRef) -> Result<&HandleSlot, RefFault> {
        let Some(s) = self.slots.get(r.slot() as usize) else {
            return Err(RefFault::OutOfRange { kind: self.kind });
        };
        if !s.live {
            return Err(RefFault::Stale {
                kind: self.kind,
                reused: false,
            });
        }
        if s.generation != r.generation() {
            return Err(RefFault::Stale {
                kind: self.kind,
                reused: true,
            });
        }
        Ok(s)
    }

    /// Resolves a handle to its target.
    ///
    /// Returns `Ok(None)` for a live *weak* handle whose target has been
    /// collected (the JNI treats such references as null).
    ///
    /// # Errors
    ///
    /// Returns a [`RefFault`] for deleted or forged handles.
    pub fn resolve(&self, r: JRef) -> Result<Option<Oop>, RefFault> {
        Ok(self.check(r)?.target)
    }

    /// Deletes a handle.
    ///
    /// # Errors
    ///
    /// Returns a [`RefFault`] if the handle was already deleted (a
    /// double-free) or forged.
    pub fn delete(&mut self, r: JRef) -> Result<(), RefFault> {
        self.check(r)?;
        let s = &mut self.slots[r.slot() as usize];
        s.live = false;
        s.generation = s.generation.wrapping_add(1);
        s.target = None;
        self.free.push(r.slot());
        self.live_count -= 1;
        Ok(())
    }

    /// Iterates mutably over live handle targets (GC roots: strong for a
    /// global slab, weak locations for a weak slab).
    pub fn roots_mut(&mut self) -> impl Iterator<Item = &mut Option<Oop>> {
        self.slots
            .iter_mut()
            .filter(|s| s.live)
            .map(|s| &mut s.target)
    }

    /// After a GC, live weak handles whose target was cleared still occupy
    /// their slot; this sweeps the count of such cleared-but-live handles.
    pub fn cleared_weak_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.live && s.target.is_none())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_resolve_delete_roundtrip() {
        let mut slab = HandleSlab::new(RefKind::Global);
        let r = slab.acquire(Oop(9));
        assert_eq!(r.kind(), RefKind::Global);
        assert_eq!(slab.resolve(r).unwrap(), Some(Oop(9)));
        assert_eq!(slab.live_count(), 1);
        slab.delete(r).unwrap();
        assert_eq!(slab.live_count(), 0);
        assert!(matches!(
            slab.resolve(r),
            Err(RefFault::Stale { reused: false, .. })
        ));
    }

    #[test]
    fn double_free_detected() {
        let mut slab = HandleSlab::new(RefKind::Global);
        let r = slab.acquire(Oop(1));
        slab.delete(r).unwrap();
        assert!(slab.delete(r).is_err());
    }

    #[test]
    fn recycled_slot_detected_as_aliased() {
        let mut slab = HandleSlab::new(RefKind::WeakGlobal);
        let r1 = slab.acquire(Oop(1));
        slab.delete(r1).unwrap();
        let r2 = slab.acquire(Oop(2));
        assert_eq!(r1.slot(), r2.slot());
        assert!(matches!(
            slab.resolve(r1),
            Err(RefFault::Stale { reused: true, .. })
        ));
        assert_eq!(slab.resolve(r2).unwrap(), Some(Oop(2)));
    }

    #[test]
    fn weak_clearing_resolves_to_none() {
        let mut slab = HandleSlab::new(RefKind::WeakGlobal);
        let r = slab.acquire(Oop(1));
        // Simulate the collector clearing the weak target.
        for t in slab.roots_mut() {
            *t = None;
        }
        assert_eq!(slab.resolve(r).unwrap(), None);
        assert_eq!(slab.cleared_weak_count(), 1);
    }

    #[test]
    #[should_panic(expected = "global or weak-global")]
    fn local_kind_rejected() {
        let _ = HandleSlab::new(RefKind::Local);
    }
}
