//! Stop-the-world rendezvous for multi-shard execution.
//!
//! The single-threaded [`crate::Jvm`] reaches a safepoint by simply
//! calling [`crate::Jvm::safepoint`] — there is nobody else to stop.
//! When the workload is sharded across OS threads (one `Jvm`+session per
//! shard), the moving collector must keep its stop-the-world semantics:
//! no shard may mutate its heap while any shard is collecting.
//!
//! [`SafepointRendezvous`] provides that: every shard polls
//! [`SafepointRendezvous::poll`] at its safepoints. When some shard
//! requests a collection ([`SafepointRendezvous::request_gc`]), all
//! shards park at the next poll; the last one to arrive runs its
//! collection callback while the world is stopped, then releases
//! everyone. Shards that finish their workload deregister so a stopped
//! world never waits on an exited thread.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct RendezvousState {
    /// Threads currently participating in safepoint polls.
    registered: usize,
    /// Threads parked at the current rendezvous.
    waiting: usize,
    /// Rendezvous generation; bumped when a stopped world resumes, so a
    /// late poller never waits on an already-finished rendezvous.
    generation: u64,
}

/// A stop-the-world barrier shared by all execution shards.
///
/// Lifecycle per shard thread: [`register`](SafepointRendezvous::register)
/// once, [`poll`](SafepointRendezvous::poll) at every safepoint,
/// [`deregister`](SafepointRendezvous::deregister) before exiting.
#[derive(Debug, Default)]
pub struct SafepointRendezvous {
    state: Mutex<RendezvousState>,
    cv: Condvar,
    gc_requested: AtomicBool,
    /// Number of stop-the-world rendezvous completed.
    worlds_stopped: AtomicU64,
}

impl SafepointRendezvous {
    /// Creates a rendezvous with no registered threads.
    pub fn new() -> SafepointRendezvous {
        SafepointRendezvous::default()
    }

    /// Registers the calling thread as a safepoint participant.
    pub fn register(&self) {
        lock(&self.state, &self.cv).registered += 1;
    }

    /// Removes the calling thread from the rendezvous. If a stop-the-world
    /// is pending and this thread was the last straggler, the parked
    /// threads are released.
    pub fn deregister(&self) {
        let mut st = lock(&self.state, &self.cv);
        st.registered = st.registered.saturating_sub(1);
        // Leaving may complete a pending rendezvous.
        self.cv.notify_all();
    }

    /// Asks every shard to stop at its next safepoint poll.
    pub fn request_gc(&self) {
        self.gc_requested.store(true, Ordering::SeqCst);
    }

    /// Whether a stop-the-world has been requested and not yet served.
    pub fn gc_pending(&self) -> bool {
        self.gc_requested.load(Ordering::SeqCst)
    }

    /// Number of completed stop-the-world rendezvous.
    pub fn worlds_stopped(&self) -> u64 {
        self.worlds_stopped.load(Ordering::SeqCst)
    }

    /// Safepoint poll. Returns immediately (false) when no collection is
    /// pending. Otherwise parks until every registered thread has arrived;
    /// the *last* arrival runs `collect` while the world is stopped, then
    /// the world resumes. Returns true if this call participated in a
    /// stop-the-world.
    ///
    /// `collect` runs on exactly one thread per rendezvous, with all other
    /// registered threads parked — the moving collector's stop-the-world
    /// window.
    pub fn poll(&self, collect: impl FnOnce()) -> bool {
        if !self.gc_requested.load(Ordering::SeqCst) {
            return false;
        }
        let mut st = lock(&self.state, &self.cv);
        // Re-check under the lock: the rendezvous may have completed
        // between the fast-path check and the lock acquisition.
        if !self.gc_requested.load(Ordering::SeqCst) {
            return false;
        }
        st.waiting += 1;
        if st.waiting >= st.registered {
            // Last to arrive: the world is stopped. Collect, then resume.
            collect();
            self.gc_requested.store(false, Ordering::SeqCst);
            self.worlds_stopped.fetch_add(1, Ordering::SeqCst);
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return true;
        }
        let generation = st.generation;
        while st.generation == generation {
            // A deregistering straggler may have made us the effective
            // last arrival.
            if st.waiting >= st.registered && self.gc_requested.load(Ordering::SeqCst) {
                collect();
                self.gc_requested.store(false, Ordering::SeqCst);
                self.worlds_stopped.fetch_add(1, Ordering::SeqCst);
                st.waiting = 0;
                st.generation = st.generation.wrapping_add(1);
                self.cv.notify_all();
                return true;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        true
    }
}

fn lock<'a>(
    m: &'a Mutex<RendezvousState>,
    _cv: &Condvar,
) -> std::sync::MutexGuard<'a, RendezvousState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SafepointRendezvous>();
    };

    #[test]
    fn poll_without_request_is_free() {
        let r = SafepointRendezvous::new();
        r.register();
        assert!(!r.poll(|| panic!("no collection requested")));
        assert_eq!(r.worlds_stopped(), 0);
        r.deregister();
    }

    #[test]
    fn single_thread_rendezvous_collects_inline() {
        let r = SafepointRendezvous::new();
        r.register();
        r.request_gc();
        assert!(r.gc_pending());
        let collected = AtomicBool::new(false);
        assert!(r.poll(|| collected.store(true, Ordering::SeqCst)));
        assert!(collected.load(Ordering::SeqCst));
        assert!(!r.gc_pending());
        assert_eq!(r.worlds_stopped(), 1);
        r.deregister();
    }

    #[test]
    fn world_stop_runs_exactly_one_collection() {
        let r = Arc::new(SafepointRendezvous::new());
        let collections = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                let collections = Arc::clone(&collections);
                r.register();
                scope.spawn(move || {
                    // Each thread does some "work" with safepoint polls.
                    for i in 0..100 {
                        if i == 10 {
                            r.request_gc();
                        }
                        r.poll(|| {
                            collections.fetch_add(1, Ordering::SeqCst);
                        });
                        std::hint::spin_loop();
                    }
                    r.deregister();
                });
            }
        });
        // 4 threads each requested one GC at i==10, but requests coalesce:
        // at least one world stop happened, and every stop ran exactly one
        // collection callback.
        let stops = r.worlds_stopped();
        assert!(stops >= 1, "at least one stop-the-world");
        assert_eq!(
            collections.load(Ordering::SeqCst) as u64,
            stops,
            "one collection per stopped world"
        );
        assert!(!r.gc_pending());
    }

    #[test]
    fn deregistering_straggler_releases_the_world() {
        let r = Arc::new(SafepointRendezvous::new());
        r.register(); // the parked thread
        r.register(); // the straggler that exits instead of polling
        r.request_gc();
        std::thread::scope(|scope| {
            let rr = Arc::clone(&r);
            let parked = scope.spawn(move || rr.poll(|| {}));
            // Give the parked thread time to park, then exit the straggler.
            std::thread::sleep(std::time::Duration::from_millis(20));
            r.deregister();
            assert!(parked.join().unwrap(), "the parked thread participated");
        });
        assert_eq!(r.worlds_stopped(), 1);
    }
}
