//! Stop-the-world rendezvous for multi-shard execution.
//!
//! The single-threaded [`crate::Jvm`] reaches a safepoint by simply
//! calling [`crate::Jvm::safepoint`] — there is nobody else to stop.
//! When the workload is sharded across OS threads (one `Jvm`+session per
//! shard), the moving collector must keep its stop-the-world semantics:
//! no shard may mutate its heap while any shard is collecting.
//!
//! [`SafepointRendezvous`] provides that: every shard polls
//! [`SafepointRendezvous::poll`] at its safepoints. When some shard
//! requests a collection ([`SafepointRendezvous::request_gc`]), all
//! shards park at the next poll; the last one to arrive runs its
//! collection callback while the world is stopped, then releases
//! everyone. Shards that finish their workload deregister so a stopped
//! world never waits on an exited thread.
//!
//! [`EpochParticipants`] is the *non*-stopping alternative for sweeps
//! that only need a consistent cut, not a frozen world — checker
//! leak/death sweeps over a lock-free store. Each participant
//! advertises the global epoch it has most recently observed
//! ([`EpochHandle::pin`], one load + one store); a sweeper bumps the
//! global epoch and waits — yielding, never parking anyone — until
//! every online participant has advertised the new epoch
//! ([`EpochHandle::quiesce`]). At that point every operation the other
//! threads started *before* the bump has completed and is visible, so
//! a sorted sweep of the store is a deterministic function of the
//! pre-epoch operation set; no thread ever stops running.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug, Default)]
struct RendezvousState {
    /// Threads currently participating in safepoint polls.
    registered: usize,
    /// Threads parked at the current rendezvous.
    waiting: usize,
    /// Rendezvous generation; bumped when a stopped world resumes, so a
    /// late poller never waits on an already-finished rendezvous.
    generation: u64,
}

/// A stop-the-world barrier shared by all execution shards.
///
/// Lifecycle per shard thread: [`register`](SafepointRendezvous::register)
/// once, [`poll`](SafepointRendezvous::poll) at every safepoint,
/// [`deregister`](SafepointRendezvous::deregister) before exiting.
#[derive(Debug, Default)]
pub struct SafepointRendezvous {
    state: Mutex<RendezvousState>,
    cv: Condvar,
    gc_requested: AtomicBool,
    /// Number of stop-the-world rendezvous completed.
    worlds_stopped: AtomicU64,
}

impl SafepointRendezvous {
    /// Creates a rendezvous with no registered threads.
    pub fn new() -> SafepointRendezvous {
        SafepointRendezvous::default()
    }

    /// Registers the calling thread as a safepoint participant.
    pub fn register(&self) {
        lock(&self.state, &self.cv).registered += 1;
    }

    /// Removes the calling thread from the rendezvous. If a stop-the-world
    /// is pending and this thread was the last straggler, the parked
    /// threads are released.
    pub fn deregister(&self) {
        let mut st = lock(&self.state, &self.cv);
        st.registered = st.registered.saturating_sub(1);
        // Leaving may complete a pending rendezvous.
        self.cv.notify_all();
    }

    /// Asks every shard to stop at its next safepoint poll.
    pub fn request_gc(&self) {
        self.gc_requested.store(true, Ordering::SeqCst);
    }

    /// Whether a stop-the-world has been requested and not yet served.
    pub fn gc_pending(&self) -> bool {
        self.gc_requested.load(Ordering::SeqCst)
    }

    /// Number of completed stop-the-world rendezvous.
    pub fn worlds_stopped(&self) -> u64 {
        self.worlds_stopped.load(Ordering::SeqCst)
    }

    /// Safepoint poll. Returns immediately (false) when no collection is
    /// pending. Otherwise parks until every registered thread has arrived;
    /// the *last* arrival runs `collect` while the world is stopped, then
    /// the world resumes. Returns true if this call participated in a
    /// stop-the-world.
    ///
    /// `collect` runs on exactly one thread per rendezvous, with all other
    /// registered threads parked — the moving collector's stop-the-world
    /// window.
    pub fn poll(&self, collect: impl FnOnce()) -> bool {
        if !self.gc_requested.load(Ordering::SeqCst) {
            return false;
        }
        let mut st = lock(&self.state, &self.cv);
        // Re-check under the lock: the rendezvous may have completed
        // between the fast-path check and the lock acquisition.
        if !self.gc_requested.load(Ordering::SeqCst) {
            return false;
        }
        st.waiting += 1;
        if st.waiting >= st.registered {
            // Last to arrive: the world is stopped. Collect, then resume.
            collect();
            self.gc_requested.store(false, Ordering::SeqCst);
            self.worlds_stopped.fetch_add(1, Ordering::SeqCst);
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return true;
        }
        let generation = st.generation;
        while st.generation == generation {
            // A deregistering straggler may have made us the effective
            // last arrival.
            if st.waiting >= st.registered && self.gc_requested.load(Ordering::SeqCst) {
                collect();
                self.gc_requested.store(false, Ordering::SeqCst);
                self.worlds_stopped.fetch_add(1, Ordering::SeqCst);
                st.waiting = 0;
                st.generation = st.generation.wrapping_add(1);
                self.cv.notify_all();
                return true;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        true
    }
}

fn lock<'a>(
    m: &'a Mutex<RendezvousState>,
    _cv: &Condvar,
) -> std::sync::MutexGuard<'a, RendezvousState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One participant's epoch cell.
#[derive(Debug)]
struct EpochSlot {
    /// The newest global epoch this participant has observed.
    seen: AtomicU64,
    /// `false` once the participant's handle is dropped; offline
    /// participants never block a quiesce.
    online: AtomicBool,
}

/// Epoch-based quiescence for sweeps that must not stop the world.
///
/// Protocol:
///
/// 1. Every worker [`register`](EpochParticipants::register)s once and
///    [`pin`](EpochHandle::pin)s between units of work (one relaxed
///    load + one release store — no contention, no branch on others).
/// 2. A sweeper calls [`EpochHandle::quiesce`]: it bumps the global
///    epoch and spins (yielding) until every *online* participant has
///    pinned at or past the bumped value, then runs its sweep closure
///    while the other threads keep running.
///
/// The guarantee is a consistent *cut*, not mutual exclusion: once
/// every participant has advertised epoch `E`, every operation begun
/// before `E` was published has completed and its effects are visible
/// (pins are release stores read with acquire loads). Operations begun
/// after the bump may or may not be observed — exactly the semantics a
/// leak/death sweep needs, because an entity transitioned concurrently
/// with the sweep was by definition still live at the cut. Sweep output
/// stays deterministic because the store's sweeps are sorted and each
/// entity is single-writer in a correct program.
///
/// Concurrent quiescers are safe: while waiting, a quiescer keeps
/// re-pinning its own slot to the newest global epoch, so two sweeps
/// racing each other both complete (each may then observe the other's
/// sweep as concurrent work).
#[derive(Debug, Default)]
pub struct EpochParticipants {
    /// The global epoch clock.
    epoch: AtomicU64,
    slots: Mutex<Vec<Arc<EpochSlot>>>,
    /// Completed quiesced sweeps.
    sweeps: AtomicU64,
}

impl EpochParticipants {
    /// Creates an epoch domain with no participants.
    pub fn new() -> EpochParticipants {
        EpochParticipants::default()
    }

    /// Registers the calling thread; the handle pins and quiesces, and
    /// marks the participant offline on drop.
    pub fn register(&self) -> EpochHandle<'_> {
        let slot = Arc::new(EpochSlot {
            seen: AtomicU64::new(self.epoch.load(Ordering::SeqCst)),
            online: AtomicBool::new(true),
        });
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&slot));
        EpochHandle {
            participants: self,
            slot,
        }
    }

    /// The current global epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of completed quiesced sweeps.
    pub fn sweeps(&self) -> u64 {
        self.sweeps.load(Ordering::SeqCst)
    }

    /// True when every online participant has advertised `target`.
    fn quiesced_at(&self, target: u64) -> bool {
        let slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        slots
            .iter()
            .all(|s| !s.online.load(Ordering::Acquire) || s.seen.load(Ordering::Acquire) >= target)
    }
}

/// One registered participant of an [`EpochParticipants`] domain.
#[derive(Debug)]
pub struct EpochHandle<'a> {
    participants: &'a EpochParticipants,
    slot: Arc<EpochSlot>,
}

impl EpochHandle<'_> {
    /// Advertises the newest global epoch: call between units of work.
    /// One relaxed load and one release store — the whole per-iteration
    /// cost of sweep support.
    #[inline]
    pub fn pin(&self) {
        let now = self.participants.epoch.load(Ordering::Relaxed);
        self.slot.seen.store(now, Ordering::Release);
    }

    /// Bumps the global epoch, waits (yielding, never parking) until
    /// every online participant has pinned past the bump, then runs
    /// `sweep` against the quiesced cut. Returns the sweep's value.
    ///
    /// The calling thread's own slot is kept pinned to the newest epoch
    /// throughout, so concurrent quiescers cannot wait on each other.
    pub fn quiesce<T>(&self, sweep: impl FnOnce() -> T) -> T {
        let target = self.participants.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        loop {
            // Keep self current: another quiescer may have bumped past
            // our target and be waiting on us.
            let now = self.participants.epoch.load(Ordering::SeqCst);
            self.slot.seen.fetch_max(now, Ordering::AcqRel);
            if self.participants.quiesced_at(target) {
                break;
            }
            std::thread::yield_now();
        }
        let out = sweep();
        self.participants.sweeps.fetch_add(1, Ordering::SeqCst);
        out
    }
}

impl Drop for EpochHandle<'_> {
    fn drop(&mut self) {
        self.slot.online.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SafepointRendezvous>();
    };

    #[test]
    fn poll_without_request_is_free() {
        let r = SafepointRendezvous::new();
        r.register();
        assert!(!r.poll(|| panic!("no collection requested")));
        assert_eq!(r.worlds_stopped(), 0);
        r.deregister();
    }

    #[test]
    fn single_thread_rendezvous_collects_inline() {
        let r = SafepointRendezvous::new();
        r.register();
        r.request_gc();
        assert!(r.gc_pending());
        let collected = AtomicBool::new(false);
        assert!(r.poll(|| collected.store(true, Ordering::SeqCst)));
        assert!(collected.load(Ordering::SeqCst));
        assert!(!r.gc_pending());
        assert_eq!(r.worlds_stopped(), 1);
        r.deregister();
    }

    #[test]
    fn world_stop_runs_exactly_one_collection() {
        let r = Arc::new(SafepointRendezvous::new());
        let collections = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                let collections = Arc::clone(&collections);
                r.register();
                scope.spawn(move || {
                    // Each thread does some "work" with safepoint polls.
                    for i in 0..100 {
                        if i == 10 {
                            r.request_gc();
                        }
                        r.poll(|| {
                            collections.fetch_add(1, Ordering::SeqCst);
                        });
                        std::hint::spin_loop();
                    }
                    r.deregister();
                });
            }
        });
        // 4 threads each requested one GC at i==10, but requests coalesce:
        // at least one world stop happened, and every stop ran exactly one
        // collection callback.
        let stops = r.worlds_stopped();
        assert!(stops >= 1, "at least one stop-the-world");
        assert_eq!(
            collections.load(Ordering::SeqCst) as u64,
            stops,
            "one collection per stopped world"
        );
        assert!(!r.gc_pending());
    }

    #[test]
    fn epoch_quiesce_single_participant_is_immediate() {
        let e = EpochParticipants::new();
        let h = e.register();
        let swept = h.quiesce(|| 42);
        assert_eq!(swept, 42);
        assert_eq!(e.sweeps(), 1);
        assert_eq!(e.epoch(), 1);
    }

    #[test]
    fn epoch_quiesce_waits_for_online_participants() {
        let e = EpochParticipants::new();
        let sweeps_seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let e = &e;
                let sweeps_seen = &sweeps_seen;
                scope.spawn(move || {
                    let h = e.register();
                    for i in 0..500 {
                        h.pin();
                        if t == 0 && i % 100 == 99 {
                            h.quiesce(|| {
                                sweeps_seen.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(sweeps_seen.load(Ordering::SeqCst), 5);
        assert_eq!(e.sweeps(), 5);
    }

    #[test]
    fn offline_participants_do_not_block_quiesce() {
        let e = EpochParticipants::new();
        {
            let _gone = e.register(); // never pins again after drop
        }
        let h = e.register();
        h.quiesce(|| ());
        assert_eq!(e.sweeps(), 1);
    }

    #[test]
    fn concurrent_quiescers_do_not_deadlock() {
        let e = EpochParticipants::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let e = &e;
                scope.spawn(move || {
                    let h = e.register();
                    for _ in 0..50 {
                        h.pin();
                        h.quiesce(|| ());
                    }
                });
            }
        });
        assert_eq!(e.sweeps(), 200);
    }

    #[test]
    fn quiesce_observes_pre_epoch_writes() {
        // A worker increments a counter, pins, and parks on a flag; the
        // sweeper's quiesced read must see every pre-pin increment.
        let e = EpochParticipants::new();
        let counter = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let eh = &e;
            let c = &counter;
            let s = &stop;
            scope.spawn(move || {
                let h = eh.register();
                while !s.load(Ordering::Acquire) {
                    c.fetch_add(1, Ordering::Relaxed);
                    h.pin();
                }
            });
            let h = e.register();
            // Let the worker run a bit, then take a cut.
            std::thread::sleep(std::time::Duration::from_millis(5));
            let at_cut = h.quiesce(|| counter.load(Ordering::Acquire));
            assert!(at_cut > 0, "worker progressed before the cut");
            stop.store(true, Ordering::Release);
        });
    }

    #[test]
    fn deregistering_straggler_releases_the_world() {
        let r = Arc::new(SafepointRendezvous::new());
        r.register(); // the parked thread
        r.register(); // the straggler that exits instead of polling
        r.request_gc();
        std::thread::scope(|scope| {
            let rr = Arc::clone(&r);
            let parked = scope.spawn(move || rr.poll(|| {}));
            // Give the parked thread time to park, then exit the straggler.
            std::thread::sleep(std::time::Duration::from_millis(20));
            r.deregister();
            assert!(parked.join().unwrap(), "the parked thread participated");
        });
        assert_eq!(r.worlds_stopped(), 1);
    }
}
