//! The [`Strategy`] trait and the combinators the workspace uses.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy simply produces one value per call from the deterministic
/// test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the previous depth and returns the strategy for one level deeper.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Strategy for Recursive<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        // Bias toward shallow values, like the real crate does: each
        // extra level is taken with probability 1/2.
        let mut depth = 0;
        while depth < self.depth && rng.ratio(1, 2) {
            depth += 1;
        }
        let mut strategy = self.base.clone();
        for _ in 0..depth {
            strategy = (self.recurse)(strategy);
        }
        strategy.generate(rng)
    }
}

/// Uniform choice among same-typed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given options (at least one).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.in_range(0, self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as regex-shaped string strategies (a small subset
/// of the syntax; see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
