//! Option strategies (`proptest::option::of`).

use std::fmt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `Some(value)` most of the time and `None` about a fifth of
/// the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.ratio(1, 5) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
