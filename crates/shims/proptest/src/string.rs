//! A tiny regex-*generator*: turns a pattern literal into random strings
//! that match it.
//!
//! Supports exactly the constructs the workspace's property tests use:
//! literal characters, `.`, `\PC` (printable), character classes
//! `[a-z0-9_$]`, groups `( ... )`, and the quantifiers `{m}`, `{m,n}`,
//! `?`, `*`, `+`. Alternation, anchors and negated classes are not
//! implemented — patterns using them panic so the gap is loud.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive character ranges, e.g. `[a-zA-Z0-9_$]`.
    Class(Vec<(char, char)>),
    /// `.` or `\PC`: an arbitrary printable character (ASCII plus a few
    /// multi-byte code points so encoders see surrogate pairs too).
    AnyPrintable,
    Group(Vec<(Node, Quant)>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: usize,
    max: usize,
}

const ONE: Quant = Quant { min: 1, max: 1 };

/// Non-ASCII sample characters mixed into `.`/`\PC` output: Latin-1,
/// BMP CJK, and an astral-plane character (a UTF-16 surrogate pair).
const WIDE_SAMPLES: [char; 5] = ['é', 'λ', '中', 'ﬃ', '🦀'];

/// Generates a random string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax this mini-generator does not support.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = parse_seq(&mut pattern.chars().peekable(), pattern, false);
    let mut out = String::new();
    for (node, quant) in &nodes {
        emit(node, *quant, rng, &mut out);
    }
    out
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_seq(chars: &mut Chars<'_>, pattern: &str, in_group: bool) -> Vec<(Node, Quant)> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            assert!(in_group, "unbalanced `)` in pattern {pattern:?}");
            chars.next();
            return nodes;
        }
        chars.next();
        let node = match c {
            '.' => Node::AnyPrintable,
            '[' => Node::Class(parse_class(chars, pattern)),
            '(' => Node::Group(parse_seq(chars, pattern, true)),
            '\\' => match chars.next() {
                Some('P') => {
                    let category = chars.next();
                    assert_eq!(
                        category,
                        Some('C'),
                        "only \\PC is supported, got \\P{category:?} in {pattern:?}"
                    );
                    Node::AnyPrintable
                }
                Some(escaped @ ('\\' | '.' | '[' | ']' | '(' | ')' | '{' | '}' | '$' | '-')) => {
                    Node::Literal(escaped)
                }
                other => panic!("unsupported escape \\{other:?} in pattern {pattern:?}"),
            },
            '|' => panic!("alternation is not supported (pattern {pattern:?})"),
            other => Node::Literal(other),
        };
        let quant = parse_quant(chars, pattern);
        nodes.push((node, quant));
    }
    assert!(!in_group, "unbalanced `(` in pattern {pattern:?}");
    nodes
}

fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated `[` in pattern {pattern:?}"));
        match c {
            ']' => break,
            '^' if ranges.is_empty() => {
                panic!("negated classes are not supported (pattern {pattern:?})")
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                ranges.push((escaped, escaped));
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.next() {
                        Some(']') => {
                            // Trailing `-` is a literal.
                            ranges.push((lo, lo));
                            ranges.push(('-', '-'));
                            break;
                        }
                        Some(hi) => ranges.push((lo, hi)),
                        None => panic!("unterminated `[` in pattern {pattern:?}"),
                    }
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    ranges
}

fn parse_quant(chars: &mut Chars<'_>, pattern: &str) -> Quant {
    match chars.peek() {
        Some('?') => {
            chars.next();
            Quant { min: 0, max: 1 }
        }
        Some('*') => {
            chars.next();
            Quant { min: 0, max: 8 }
        }
        Some('+') => {
            chars.next();
            Quant { min: 1, max: 8 }
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier minimum"),
                            hi.trim().parse().expect("quantifier maximum"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    };
                    assert!(min <= max, "bad quantifier {{{spec}}} in {pattern:?}");
                    return Quant { min, max };
                }
                spec.push(c);
            }
            panic!("unterminated `{{` in pattern {pattern:?}");
        }
        _ => ONE,
    }
}

fn emit(node: &Node, quant: Quant, rng: &mut TestRng, out: &mut String) {
    let count = quant.min + rng.below((quant.max - quant.min + 1) as u64) as usize;
    for _ in 0..count {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.in_range(0, ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                let code = lo as u32 + rng.below(u64::from(span)) as u32;
                out.push(char::from_u32(code).expect("class ranges stay in valid scalars"));
            }
            Node::AnyPrintable => {
                // 1-in-8 a wide sample, otherwise printable ASCII.
                if rng.ratio(1, 8) {
                    out.push(WIDE_SAMPLES[rng.in_range(0, WIDE_SAMPLES.len())]);
                } else {
                    out.push(char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii"));
                }
            }
            Node::Group(nodes) => {
                for (inner, q) in nodes {
                    emit(inner, *q, rng, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string-tests")
    }

    #[test]
    fn classes_quantifiers_and_groups() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z][a-zA-Z0-9_$]{0,8}(/[a-z]{1,3}){0,2}", &mut r);
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.split('/').count() <= 3);
        }
    }

    #[test]
    fn printable_patterns_bound_their_length() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("\\PC{0,32}", &mut r);
            assert!(s.chars().count() <= 32);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn exact_counts() {
        let mut r = rng();
        let s = generate_matching("a{3}b?", &mut r);
        assert!(s.starts_with("aaa"));
        assert!(s.len() == 3 || s.len() == 4);
    }
}
