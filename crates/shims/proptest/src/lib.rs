//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds where crates.io is unreachable, so the real
//! proptest cannot be vendored. This shim reimplements the subset the
//! repository's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`
//!   and `boxed`,
//! * integer-range, [`strategy::Just`], `any::<T>()`, [`prop_oneof!`],
//!   [`collection::vec`], [`option::of`] and regex-literal string
//!   strategies,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, deliberately accepted: generation is
//! seeded deterministically per test (reproducible by construction, so no
//! failure-persistence files), and there is **no shrinking** — on failure
//! the offending inputs are printed in full instead.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property body.
///
/// The real proptest returns an error to the runner so the case can
/// shrink; without shrinking a plain panic carries the same information.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Picks one of several strategies (uniformly) for each generated value.
/// All branches must share one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. On a failing case the inputs are printed before the panic
/// propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                let described = format!(
                    concat!(
                        "failing case {} of ", stringify!($name), ":"
                        $(, "\n  ", stringify!($arg), " = {:?}")*
                    ),
                    case, $(&$arg),*
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(panic) = outcome {
                    eprintln!("{described}");
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, b in any::<bool>()) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(b || !b);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u16),
            Just(9u16),
        ]) {
            prop_assert!(v < 4 || v == 9);
        }

        #[test]
        fn vectors_respect_their_size(xs in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&xs.len()));
        }

        #[test]
        fn strings_match_simple_patterns(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = crate::test_runner::TestRng::for_test("option_of");
        let strategy = crate::option::of(0u8..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strategy = crate::collection::vec(any::<u16>(), 0..8);
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        for _ in 0..50 {
            assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        }
    }
}
