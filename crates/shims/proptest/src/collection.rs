//! Collection strategies (`proptest::collection::vec`).

use std::fmt;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec`s of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
