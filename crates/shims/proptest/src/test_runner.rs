//! Test configuration and the deterministic RNG behind generation.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator: splitmix64 seeded from the test's name, so
/// every run of a property replays the same case stream (reproducibility
/// replaces the real crate's failure-persistence files).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, mixed with a fixed offset so the empty
        // name is fine too.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`; the range must be non-empty.
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A boolean that is true with probability `num/denom`.
    pub fn ratio(&mut self, num: u32, denom: u32) -> bool {
        self.below(u64::from(denom)) < u64::from(num)
    }
}
