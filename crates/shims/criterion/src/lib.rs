//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API this workspace's benches use
//! (`Criterion`, benchmark groups, `bench_with_input`, `Bencher::iter`,
//! the `criterion_group!`/`criterion_main!` macros) on top of a plain
//! `Instant`-based timing loop. No statistics, plots, or baselines — it
//! warms up, measures, and prints one mean-per-iteration line per bench,
//! which is enough for the relative comparisons the experiment harness
//! makes.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Criterion {
        self.run_one(&id.0, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `name`.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        self.run_one(&name.into(), |b| f(b));
        self
    }

    fn run_one(&self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(m) => println!(
                "bench {label:<50} {:>12.1} ns/iter ({} iters)",
                m.nanos_per_iter, m.iters
            ),
            None => println!("bench {label:<50} (no measurement: iter() was never called)"),
        }
    }
}

/// One measurement produced by [`Bencher::iter`].
#[derive(Debug, Clone, Copy)]
struct Measurement {
    nanos_per_iter: f64,
    iters: u64,
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Times `body`, running it repeatedly for the configured budget.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(body());
            warm_iters += 1;
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: split the budget into `samples` batches sized from
        // the warm-up rate, and keep the overall mean.
        let per_iter = self.warm_up.as_secs_f64() / warm_iters as f64;
        let batch = (((self.budget.as_secs_f64() / self.samples as f64) / per_iter.max(1e-9))
            as u64)
            .max(1);
        let mut total_iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.budget {
            for _ in 0..batch {
                black_box(body());
            }
            total_iters += batch;
        }
        let elapsed = measure_start.elapsed();
        self.result = Some(Measurement {
            nanos_per_iter: elapsed.as_nanos() as f64 / total_iters.max(1) as f64,
            iters: total_iters,
        });
    }
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `group/label` id.
    pub fn new(group: impl Into<String>, label: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{label}", group.into()))
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }
}

/// A named group of benchmarks sharing the parent harness's settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input` under this group's name.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under this group's name.
    pub fn bench_function(
        &mut self,
        label: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{label}", self.name);
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-runner function from benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn measures_a_trivial_body() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| {
                ran += x;
                ran
            });
        });
        group.finish();
        assert!(ran > 0);
    }

    criterion_group! {
        name = shim_benches;
        config = quick();
        targets = trivial_target
    }

    fn trivial_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        shim_benches();
    }
}
