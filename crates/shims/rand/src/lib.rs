//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! shim provides the small deterministic subset of `rand`'s API that the
//! repository needs: an [`Rng`] trait with range sampling and a seedable
//! xorshift64* generator. Determinism is a feature here — experiments and
//! tests want reproducible streams.

#![forbid(unsafe_code)]

/// Minimal random-number-generator interface.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `[0, bound)`. `bound` must be non-zero.
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64: empty range");
        // Multiply-shift bounded sampling; bias is negligible for the
        // bounds this workspace uses (all far below 2^32).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` in `[0, bound)`.
    fn gen_range_usize(&mut self, bound: usize) -> usize {
        self.gen_range_u64(bound as u64) as usize
    }

    /// A boolean that is `true` with probability `num / denom`.
    fn gen_ratio(&mut self, num: u32, denom: u32) -> bool {
        self.gen_range_u64(u64::from(denom)) < u64::from(num)
    }
}

/// A seedable xorshift64* generator: tiny, fast, and good enough for
/// workload shuffling and test-case generation.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is remapped to a fixed
    /// non-zero constant — xorshift has a zero fixed point).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }
}

impl Rng for XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let bound = 1 + (a.next_u64() % 1000);
            let x = a.gen_range_u64(bound);
            // Same seed, same stream.
            b.next_u64();
            assert_eq!(x, b.gen_range_u64(bound));
            assert!(x < bound);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
