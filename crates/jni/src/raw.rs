//! Raw (unchecked) JNI function semantics.
//!
//! This module is the "production JVM" side of each JNI function: it does
//! exactly what the JNI specification promises and **no more**. Where the
//! specification leaves behaviour undefined — dangling references, type
//! confusion, calls with exceptions pending, critical-section violations —
//! it consults the VM's [`crate::VendorModel`] to decide between silently
//! proceeding, crashing, NPE-ing, or deadlocking, which is how the
//! "Default Behavior" columns of the paper's Table 1 are reproduced.

use minijvm::class::names;
use minijvm::{
    Body, FieldId, FieldSlot, FieldType, JRef, JValue, MethodBody, MethodId, MonitorError, PinData,
    PinKind, PrimArray, PrimType, RefKind, Slot,
};

use crate::env::{Abort, JniEnv, RawResult, JNI_ABORT};
use crate::error::JniError;
use crate::interpose::{JniArg, JniRet, UbSituation};
use crate::registry::{CallMode, CallRet, FuncId, FuncSpec, Op};

// ----- argument extraction ---------------------------------------------

fn arg_ref(args: &[JniArg], i: usize) -> JRef {
    match args.get(i) {
        Some(JniArg::Ref(r)) => *r,
        other => panic!("argument {i} should be a reference, got {other:?}"),
    }
}

fn arg_method(args: &[JniArg], i: usize) -> MethodId {
    match args.get(i) {
        Some(JniArg::Method(m)) => *m,
        other => panic!("argument {i} should be a method id, got {other:?}"),
    }
}

fn arg_field(args: &[JniArg], i: usize) -> FieldId {
    match args.get(i) {
        Some(JniArg::Field(f)) => *f,
        other => panic!("argument {i} should be a field id, got {other:?}"),
    }
}

fn arg_size(args: &[JniArg], i: usize) -> i64 {
    match args.get(i) {
        Some(JniArg::Size(s)) => *s,
        Some(JniArg::Val(JValue::Int(v))) => *v as i64,
        Some(JniArg::Val(JValue::Long(v))) => *v,
        other => panic!("argument {i} should be a size, got {other:?}"),
    }
}

fn arg_name(args: &[JniArg], i: usize) -> Option<&str> {
    match args.get(i) {
        Some(JniArg::Name(s)) => Some(s),
        Some(JniArg::Opaque) | None => None,
        other => panic!("argument {i} should be a name, got {other:?}"),
    }
}

fn arg_vargs(args: &[JniArg], i: usize) -> Vec<JValue> {
    match args.get(i) {
        Some(JniArg::Args(v)) => v.clone(),
        Some(JniArg::Opaque) | None => Vec::new(),
        other => panic!("argument {i} should be a jvalue array, got {other:?}"),
    }
}

fn arg_val(args: &[JniArg], i: usize) -> JValue {
    match args.get(i) {
        Some(JniArg::Val(v)) => *v,
        Some(JniArg::Ref(r)) => JValue::Ref(*r),
        other => panic!("argument {i} should be a value, got {other:?}"),
    }
}

fn arg_buf(args: &[JniArg], i: usize) -> Option<minijvm::PinId> {
    match args.get(i) {
        Some(JniArg::Buf(p)) => Some(*p),
        _ => None,
    }
}

// ----- dispatch ----------------------------------------------------------

/// Executes the raw semantics of `func`.
pub(crate) fn execute(env: &mut JniEnv<'_>, func: FuncId, args: &[JniArg]) -> RawResult<JniRet> {
    let spec = func.spec();

    // JVM-state preconditions the *unchecked* JVM does not verify but
    // whose violation changes its behaviour (Table 1 defaults).
    let thread_env = env.jvm().thread(env.thread()).env();
    if env.presented_env() != thread_env {
        env.ub_continue(UbSituation::EnvMismatch { func: spec }, &spec.name)?;
    }
    if env.jvm().thread(env.thread()).in_critical_section() && !spec.critical_ok {
        env.ub_continue(UbSituation::CriticalViolation { func: spec }, &spec.name)?;
    }
    if env.jvm().thread(env.thread()).pending_exception().is_some() && !spec.exception_oblivious {
        env.ub_continue(UbSituation::ExceptionPending { func: spec }, &spec.name)?;
    }

    run_op(env, spec, args)
}

#[allow(clippy::too_many_lines)]
fn run_op(env: &mut JniEnv<'_>, spec: &'static FuncSpec, args: &[JniArg]) -> RawResult<JniRet> {
    let thread = env.thread();
    match spec.op {
        Op::GetVersion => Ok(JniRet::Val(JValue::Int(0x0001_0006))),

        Op::DefineClass => {
            let name = arg_name(args, 0).unwrap_or("<anonymous>").to_string();
            let class = match env.jvm().find_class(&name) {
                Some(c) => c,
                None => match env.jvm_mut().registry_mut().define(&name).build() {
                    Ok(c) => c,
                    Err(e) => {
                        return Err(Abort::Hard(
                            env.java_throw(names::NO_CLASS_DEF, &e.to_string()),
                        ))
                    }
                },
            };
            let mirror = env.jvm_mut().mirror_oop(class);
            Ok(JniRet::Ref(env.make_local(mirror)))
        }

        Op::FindClass => {
            let name = arg_name(args, 0).unwrap_or_default().to_string();
            match env.jvm().find_class(&name) {
                Some(class) => {
                    let mirror = env.jvm_mut().mirror_oop(class);
                    Ok(JniRet::Ref(env.make_local(mirror)))
                }
                None => Err(Abort::Hard(env.java_throw(names::NO_CLASS_DEF, &name))),
            }
        }

        Op::FromReflectedMethod | Op::FromReflectedField => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "method")?;
            let class = env.jvm().class_of(oop);
            let class_name = env.jvm().registry().class(class).name().to_string();
            let want_method = matches!(spec.op, Op::FromReflectedMethod);
            let ok_type = if want_method {
                class_name == names::REFLECT_METHOD || class_name == names::REFLECT_CONSTRUCTOR
            } else {
                class_name == names::REFLECT_FIELD
            };
            if !ok_type {
                env.ub_or_skip(
                    UbSituation::TypeConfusion {
                        func: spec,
                        expected: "reflected entity",
                    },
                    &spec.name,
                )?;
                return Err(Abort::Skip);
            }
            let fid = env
                .jvm()
                .registry()
                .resolve_field(class, "slot", "I", false)
                .expect("reflect classes have slot");
            let Slot::Int(slot) = env.jvm().get_instance_field(oop, fid) else {
                return Err(Abort::Skip);
            };
            if want_method {
                Ok(JniRet::Method(MethodId::forged(slot as u32 as u64)))
            } else {
                Ok(JniRet::Field(FieldId::forged(slot as u32 as u64)))
            }
        }

        Op::ToReflectedMethod | Op::ToReflectedField => {
            let _cls = env.expect_class(arg_ref(args, 0), spec, "cls")?;
            let want_method = matches!(spec.op, Op::ToReflectedMethod);
            let (slot_bits, mirror_class_name) = if want_method {
                let mid = arg_method(args, 1);
                if env.jvm().registry().method(mid).is_none() {
                    env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
                    return Err(Abort::Skip);
                }
                (mid.index() as i32, names::REFLECT_METHOD)
            } else {
                let fid = arg_field(args, 1);
                if env.jvm().registry().field(fid).is_none() {
                    env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
                    return Err(Abort::Skip);
                }
                (fid.index() as i32, names::REFLECT_FIELD)
            };
            let rclass = env
                .jvm()
                .find_class(mirror_class_name)
                .expect("bootstrapped");
            let obj = env.jvm_mut().alloc_object(rclass);
            let fid = env
                .jvm()
                .registry()
                .resolve_field(rclass, "slot", "I", false)
                .expect("slot field");
            env.jvm_mut()
                .set_instance_field(obj, fid, Slot::Int(slot_bits));
            Ok(JniRet::Ref(env.make_local(obj)))
        }

        Op::GetSuperclass => {
            let class = env.expect_class(arg_ref(args, 0), spec, "sub")?;
            match env.jvm().registry().class(class).superclass() {
                Some(sup) => {
                    let mirror = env.jvm_mut().mirror_oop(sup);
                    Ok(JniRet::Ref(env.make_local(mirror)))
                }
                None => Ok(JniRet::Ref(JRef::NULL)),
            }
        }

        Op::IsAssignableFrom => {
            let sub = env.expect_class(arg_ref(args, 0), spec, "sub")?;
            let sup = env.expect_class(arg_ref(args, 1), spec, "sup")?;
            Ok(JniRet::Val(JValue::Bool(
                env.jvm().registry().is_assignable(sub, sup),
            )))
        }

        Op::Throw => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "obj")?;
            env.jvm_mut().throw_existing(thread, oop);
            Ok(JniRet::Size(0))
        }

        Op::ThrowNew => {
            let class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
            let msg = arg_name(args, 1).unwrap_or("").to_string();
            let class_name = env.jvm().registry().class(class).name().to_string();
            env.jvm_mut().throw_new(thread, &class_name, &msg);
            Ok(JniRet::Size(0))
        }

        Op::ExceptionOccurred => match env.jvm().thread(thread).pending_exception() {
            Some(exc) => Ok(JniRet::Ref(env.make_local(exc))),
            None => Ok(JniRet::Ref(JRef::NULL)),
        },

        Op::ExceptionDescribe => {
            if let Some(exc) = env.jvm().thread(thread).pending_exception() {
                let desc = env.jvm().describe_exception(exc);
                env.log_line(format!("Exception description: {desc}"));
            }
            Ok(JniRet::Void)
        }

        Op::ExceptionClear => {
            env.jvm_mut().thread_mut(thread).set_pending_exception(None);
            Ok(JniRet::Void)
        }

        Op::ExceptionCheck => Ok(JniRet::Val(JValue::Bool(
            env.jvm().thread(thread).pending_exception().is_some(),
        ))),

        Op::FatalError => {
            let msg = arg_name(args, 0).unwrap_or("FatalError").to_string();
            Err(Abort::Hard(JniError::Death(minijvm::JvmDeath::fatal(msg))))
        }

        Op::PushLocalFrame => {
            let cap = arg_size(args, 0).max(0) as usize;
            env.jvm_mut().thread_mut(thread).push_frame(cap);
            Ok(JniRet::Size(0))
        }

        Op::PopLocalFrame => {
            let result = arg_ref(args, 0);
            let oop = if result.is_null() {
                None
            } else {
                env.raw_resolve(result, spec)?
            };
            if env.jvm_mut().thread_mut(thread).pop_frame().is_none() {
                // Popping the base frame is undefined.
                env.ub_or_skip(
                    UbSituation::RefFault {
                        fault: minijvm::RefFault::OutOfRange {
                            kind: RefKind::Local,
                        },
                        func: spec,
                    },
                    &spec.name,
                )?;
                return Err(Abort::Skip);
            }
            match oop {
                Some(o) => Ok(JniRet::Ref(env.make_local(o))),
                None => Ok(JniRet::Ref(JRef::NULL)),
            }
        }

        Op::NewGlobalRef => match env.raw_resolve(arg_ref(args, 0), spec)? {
            Some(oop) => Ok(JniRet::Ref(env.jvm_mut().new_global(oop))),
            None => Ok(JniRet::Ref(JRef::NULL)),
        },

        Op::DeleteGlobalRef => {
            let r = arg_ref(args, 0);
            if r.kind() != RefKind::Global {
                // Deleting a non-global through DeleteGlobalRef is UB.
                env.ub_or_skip(
                    UbSituation::TypeConfusion {
                        func: spec,
                        expected: "global reference",
                    },
                    &spec.name,
                )?;
                return Err(Abort::Skip);
            }
            if let Err(fault) = env.jvm_mut().delete_global(r) {
                env.ub_ref_fault(fault, spec)?;
            }
            Ok(JniRet::Void)
        }

        Op::NewWeakGlobalRef => match env.raw_resolve(arg_ref(args, 0), spec)? {
            Some(oop) => Ok(JniRet::Ref(env.jvm_mut().new_weak_global(oop))),
            None => Ok(JniRet::Ref(JRef::NULL)),
        },

        Op::DeleteWeakGlobalRef => {
            let r = arg_ref(args, 0);
            if r.kind() != RefKind::WeakGlobal {
                env.ub_or_skip(
                    UbSituation::TypeConfusion {
                        func: spec,
                        expected: "weak global reference",
                    },
                    &spec.name,
                )?;
                return Err(Abort::Skip);
            }
            if let Err(fault) = env.jvm_mut().delete_weak_global(r) {
                env.ub_ref_fault(fault, spec)?;
            }
            Ok(JniRet::Void)
        }

        Op::DeleteLocalRef => {
            let r = arg_ref(args, 0);
            if r.kind() != RefKind::Local {
                env.ub_or_skip(
                    UbSituation::TypeConfusion {
                        func: spec,
                        expected: "local reference",
                    },
                    &spec.name,
                )?;
                return Err(Abort::Skip);
            }
            let res = env.jvm_mut().thread_mut(thread).delete_local(r);
            if let Err(fault) = res {
                env.ub_ref_fault(fault, spec)?;
            }
            Ok(JniRet::Void)
        }

        Op::IsSameObject => {
            let a = env.raw_resolve(arg_ref(args, 0), spec)?;
            let b = env.raw_resolve(arg_ref(args, 1), spec)?;
            let same = match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => env.jvm().heap().id_of(x) == env.jvm().heap().id_of(y),
                _ => false,
            };
            Ok(JniRet::Val(JValue::Bool(same)))
        }

        Op::NewLocalRef => match env.raw_resolve(arg_ref(args, 0), spec)? {
            Some(oop) => Ok(JniRet::Ref(env.make_local(oop))),
            None => Ok(JniRet::Ref(JRef::NULL)),
        },

        Op::EnsureLocalCapacity => {
            let cap = arg_size(args, 0).max(0) as usize;
            env.jvm_mut().thread_mut(thread).ensure_capacity(cap);
            Ok(JniRet::Size(0))
        }

        Op::AllocObject => {
            let class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
            let oop = env.jvm_mut().alloc_object(class);
            Ok(JniRet::Ref(env.make_local(oop)))
        }

        Op::NewObject => {
            let class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
            let mid = arg_method(args, 1);
            let vargs = arg_vargs(args, 2);
            let oop = env.jvm_mut().alloc_object(class);
            let this = env.make_local(oop);
            // Run the constructor if one is bound; absent constructors are
            // tolerated (simulation classes usually have none).
            if let Some(info) = env.jvm().registry().method(mid).cloned() {
                let mut full = vec![JValue::Ref(this)];
                full.extend(vargs);
                match info.body {
                    MethodBody::Managed(_) => {
                        env.call_managed_method(mid, &full).map_err(Abort::Hard)?;
                    }
                    MethodBody::Native(Some(_)) => {
                        env.call_native_method(mid, &full).map_err(Abort::Hard)?;
                    }
                    _ => {}
                }
            }
            Ok(JniRet::Ref(this))
        }

        Op::GetObjectClass => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "obj")?;
            let class = env.jvm().class_of(oop);
            let mirror = env.jvm_mut().mirror_oop(class);
            Ok(JniRet::Ref(env.make_local(mirror)))
        }

        Op::IsInstanceOf => {
            let class = env.expect_class(arg_ref(args, 1), spec, "clazz")?;
            match env.raw_resolve(arg_ref(args, 0), spec)? {
                // null is an instance of every type, per the JNI spec.
                None => Ok(JniRet::Val(JValue::Bool(true))),
                Some(oop) => Ok(JniRet::Val(JValue::Bool(
                    env.jvm().is_instance_of(oop, class),
                ))),
            }
        }

        Op::GetObjectRefType => {
            let r = arg_ref(args, 0);
            let ty = match r.kind() {
                RefKind::Null => 0,
                RefKind::Local => {
                    if env.jvm().resolve_ignoring_thread(r).is_ok() {
                        1
                    } else {
                        0
                    }
                }
                RefKind::Global => {
                    if env.jvm().resolve(thread, r).is_ok() {
                        2
                    } else {
                        0
                    }
                }
                RefKind::WeakGlobal => {
                    if env.jvm().resolve(thread, r).is_ok() {
                        3
                    } else {
                        0
                    }
                }
            };
            Ok(JniRet::Val(JValue::Int(ty)))
        }

        Op::GetMethodId { stat } => {
            let class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
            let name = arg_name(args, 1).unwrap_or_default().to_string();
            let sig = arg_name(args, 2).unwrap_or_default().to_string();
            match env
                .jvm()
                .registry()
                .resolve_method(class, &name, &sig, stat)
            {
                Ok(mid) => Ok(JniRet::Method(mid)),
                Err(e) => Err(Abort::Hard(
                    env.java_throw(names::NO_SUCH_METHOD, &e.to_string()),
                )),
            }
        }

        Op::GetFieldId { stat } => {
            let class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
            let name = arg_name(args, 1).unwrap_or_default().to_string();
            let sig = arg_name(args, 2).unwrap_or_default().to_string();
            match env.jvm().registry().resolve_field(class, &name, &sig, stat) {
                Ok(fid) => Ok(JniRet::Field(fid)),
                Err(e) => Err(Abort::Hard(
                    env.java_throw(names::NO_SUCH_FIELD, &e.to_string()),
                )),
            }
        }

        Op::Call { mode, ret } => run_call(env, spec, args, mode, ret),

        Op::GetField { stat, ty } => run_get_field(env, spec, args, stat, ty),
        Op::SetField { stat, ty } => run_set_field(env, spec, args, stat, ty),

        Op::NewString => {
            let chars = match args.first() {
                Some(JniArg::Chars(c)) => c.clone(),
                _ => Vec::new(),
            };
            let oop = env.jvm_mut().alloc_string_utf16(chars);
            Ok(JniRet::Ref(env.make_local(oop)))
        }

        Op::GetStringLength => {
            let chars = expect_string(env, spec, arg_ref(args, 0))?;
            Ok(JniRet::Size(chars.len() as i64))
        }

        Op::GetStringChars => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "str")?;
            let chars = expect_string_at(env, spec, oop)?;
            let id = env.jvm().heap().id_of(oop);
            // NOT NUL-terminated — pitfall 8 lives here.
            let pin =
                env.jvm_mut()
                    .pins_mut()
                    .acquire(id, PinKind::StringChars, PinData::Utf16(chars));
            Ok(JniRet::Buf(pin))
        }

        Op::ReleaseStringChars => release_pin(env, spec, args, PinKind::StringChars),

        Op::NewStringUtf => {
            let s = arg_name(args, 0).unwrap_or_default().to_string();
            let oop = env.jvm_mut().alloc_string(&s);
            Ok(JniRet::Ref(env.make_local(oop)))
        }

        Op::GetStringUtfLength => {
            let chars = expect_string(env, spec, arg_ref(args, 0))?;
            Ok(JniRet::Size(minijvm::mutf8::encode(&chars).len() as i64))
        }

        Op::GetStringUtfChars => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "str")?;
            let chars = expect_string_at(env, spec, oop)?;
            let id = env.jvm().heap().id_of(oop);
            let mut bytes = minijvm::mutf8::encode(&chars);
            bytes.push(0); // modified-UTF-8 form IS NUL-terminated
            let pin =
                env.jvm_mut()
                    .pins_mut()
                    .acquire(id, PinKind::StringUtfChars, PinData::Utf8(bytes));
            Ok(JniRet::Buf(pin))
        }

        Op::ReleaseStringUtfChars => release_pin(env, spec, args, PinKind::StringUtfChars),

        Op::GetStringRegion | Op::GetStringUtfRegion => {
            let chars = expect_string(env, spec, arg_ref(args, 0))?;
            let start = arg_size(args, 1);
            let len = arg_size(args, 2);
            if start < 0 || len < 0 || (start + len) as usize > chars.len() {
                return Err(Abort::Hard(env.java_throw(
                    names::STRING_INDEX,
                    &format!(
                        "region [{start}, {}) of string length {}",
                        start + len,
                        chars.len()
                    ),
                )));
            }
            let slice = &chars[start as usize..(start + len) as usize];
            if matches!(spec.op, Op::GetStringRegion) {
                Ok(JniRet::Chars(slice.to_vec()))
            } else {
                Ok(JniRet::Bytes(minijvm::mutf8::encode(slice)))
            }
        }

        Op::GetStringCritical => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "string")?;
            let chars = expect_string_at(env, spec, oop)?;
            let id = env.jvm().heap().id_of(oop);
            let pin = env.jvm_mut().pins_mut().acquire(
                id,
                PinKind::StringCritical,
                PinData::Utf16(chars),
            );
            env.jvm_mut().thread_mut(thread).enter_critical(id);
            Ok(JniRet::Buf(pin))
        }

        Op::ReleaseStringCritical => {
            let result = release_pin(env, spec, args, PinKind::StringCritical);
            if let Some(pin) = arg_buf(args, 1) {
                if let Some(id) = env.jvm().pins().object(pin) {
                    env.jvm_mut().thread_mut(thread).exit_critical(id);
                }
            }
            result
        }

        Op::GetArrayLength => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "array")?;
            let len = match &env.jvm().heap().get(oop).body {
                Body::PrimArray(a) => a.len(),
                Body::RefArray { elems } => elems.len(),
                _ => {
                    env.ub_or_skip(
                        UbSituation::TypeConfusion {
                            func: spec,
                            expected: "array",
                        },
                        &spec.name,
                    )?;
                    return Err(Abort::Skip);
                }
            };
            Ok(JniRet::Size(len as i64))
        }

        Op::NewObjectArray => {
            let len = arg_size(args, 0).max(0) as usize;
            let class = env.expect_class(arg_ref(args, 1), spec, "clazz")?;
            let elem_name = env.jvm().registry().class(class).name().to_string();
            let elem_ty = if elem_name.starts_with('[') {
                FieldType::parse(&elem_name).unwrap_or(FieldType::object(names::OBJECT))
            } else {
                FieldType::object(elem_name)
            };
            let arr = env.jvm_mut().alloc_ref_array(elem_ty, len);
            let init = env.raw_resolve(arg_ref(args, 2), spec)?;
            if let Some(init_oop) = init {
                if let Body::RefArray { elems } = &mut env.jvm_mut().heap_mut().get_mut(arr).body {
                    for e in elems.iter_mut() {
                        *e = Some(init_oop);
                    }
                }
            }
            Ok(JniRet::Ref(env.make_local(arr)))
        }

        Op::GetObjectArrayElement => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "array")?;
            let index = arg_size(args, 1);
            let elem = match &env.jvm().heap().get(oop).body {
                Body::RefArray { elems } => {
                    if index < 0 || index as usize >= elems.len() {
                        return Err(Abort::Hard(env.java_throw(
                            names::ARRAY_INDEX,
                            &format!("index {index} of array length {}", elems.len()),
                        )));
                    }
                    elems[index as usize]
                }
                _ => {
                    env.ub_or_skip(
                        UbSituation::TypeConfusion {
                            func: spec,
                            expected: "object array",
                        },
                        &spec.name,
                    )?;
                    return Err(Abort::Skip);
                }
            };
            match elem {
                Some(e) => Ok(JniRet::Ref(env.make_local(e))),
                None => Ok(JniRet::Ref(JRef::NULL)),
            }
        }

        Op::SetObjectArrayElement => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "array")?;
            let index = arg_size(args, 1);
            let value = env.raw_resolve(arg_ref(args, 2), spec)?;
            match &mut env.jvm_mut().heap_mut().get_mut(oop).body {
                Body::RefArray { elems } => {
                    if index < 0 || index as usize >= elems.len() {
                        let len = elems.len();
                        return Err(Abort::Hard(env.java_throw(
                            names::ARRAY_INDEX,
                            &format!("index {index} of array length {len}"),
                        )));
                    }
                    elems[index as usize] = value;
                    Ok(JniRet::Void)
                }
                _ => {
                    env.ub_or_skip(
                        UbSituation::TypeConfusion {
                            func: spec,
                            expected: "object array",
                        },
                        &spec.name,
                    )?;
                    Err(Abort::Skip)
                }
            }
        }

        Op::NewPrimArray(ty) => {
            let len = arg_size(args, 0).max(0) as usize;
            let arr = env.jvm_mut().alloc_prim_array(ty, len);
            Ok(JniRet::Ref(env.make_local(arr)))
        }

        Op::GetArrayElements(ty) => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "array")?;
            let data = expect_prim_array(env, spec, oop, ty)?;
            let id = env.jvm().heap().id_of(oop);
            let pin =
                env.jvm_mut()
                    .pins_mut()
                    .acquire(id, PinKind::ArrayElements, PinData::Prim(data));
            Ok(JniRet::Buf(pin))
        }

        Op::ReleaseArrayElements(_ty) => {
            let mode = arg_size(args, 2);
            release_array_pin(env, spec, args, PinKind::ArrayElements, mode)
        }

        Op::GetArrayRegion(ty) => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "array")?;
            let data = expect_prim_array(env, spec, oop, ty)?;
            let start = arg_size(args, 1);
            let len = arg_size(args, 2);
            if start < 0 || len < 0 || (start + len) as usize > data.len() {
                return Err(Abort::Hard(env.java_throw(
                    names::ARRAY_INDEX,
                    &format!(
                        "region [{start}, {}) of array length {}",
                        start + len,
                        data.len()
                    ),
                )));
            }
            let mut out = PrimArray::zeroed(ty, len as usize);
            for i in 0..len as usize {
                out.set(i, data.get(start as usize + i));
            }
            Ok(JniRet::Prims(out))
        }

        Op::SetArrayRegion(ty) => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "array")?;
            let start = arg_size(args, 1);
            let len = arg_size(args, 2);
            let src = match args.get(3) {
                Some(JniArg::Prims(p)) => p.clone(),
                _ => PrimArray::zeroed(ty, 0),
            };
            match &mut env.jvm_mut().heap_mut().get_mut(oop).body {
                Body::PrimArray(a) if a.elem_type() == ty => {
                    if start < 0 || len < 0 || (start + len) as usize > a.len() {
                        let alen = a.len();
                        return Err(Abort::Hard(env.java_throw(
                            names::ARRAY_INDEX,
                            &format!("region [{start}, {}) of array length {alen}", start + len),
                        )));
                    }
                    for i in 0..(len as usize).min(src.len()) {
                        a.set(start as usize + i, src.get(i));
                    }
                    Ok(JniRet::Void)
                }
                _ => {
                    env.ub_or_skip(
                        UbSituation::TypeConfusion {
                            func: spec,
                            expected: "primitive array",
                        },
                        &spec.name,
                    )?;
                    Err(Abort::Skip)
                }
            }
        }

        Op::GetPrimitiveArrayCritical => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "array")?;
            let data = match &env.jvm().heap().get(oop).body {
                Body::PrimArray(a) => a.clone(),
                _ => {
                    env.ub_or_skip(
                        UbSituation::TypeConfusion {
                            func: spec,
                            expected: "primitive array",
                        },
                        &spec.name,
                    )?;
                    return Err(Abort::Skip);
                }
            };
            let id = env.jvm().heap().id_of(oop);
            let pin =
                env.jvm_mut()
                    .pins_mut()
                    .acquire(id, PinKind::ArrayCritical, PinData::Prim(data));
            env.jvm_mut().thread_mut(thread).enter_critical(id);
            Ok(JniRet::Buf(pin))
        }

        Op::ReleasePrimitiveArrayCritical => {
            let mode = arg_size(args, 2);
            let result = release_array_pin(env, spec, args, PinKind::ArrayCritical, mode);
            if let Some(pin) = arg_buf(args, 1) {
                if let Some(id) = env.jvm().pins().object(pin) {
                    env.jvm_mut().thread_mut(thread).exit_critical(id);
                }
            }
            result
        }

        Op::RegisterNatives => {
            // The actual closure binding happens in the typed wrapper
            // (closures cannot travel through the generic argument
            // representation); the raw semantics validate the class.
            let _class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
            Ok(JniRet::Size(0))
        }

        Op::UnregisterNatives => {
            let class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
            env.jvm_mut().registry_mut().unbind_natives(class);
            Ok(JniRet::Size(0))
        }

        Op::MonitorEnter => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "obj")?;
            match env.jvm_mut().monitor_enter(thread, oop) {
                Ok(()) => Ok(JniRet::Size(0)),
                Err(MonitorError::WouldBlock { owner }) => {
                    Err(Abort::Hard(JniError::Death(minijvm::JvmDeath::deadlock(
                        format!("MonitorEnter would block on monitor owned by {owner}"),
                    ))))
                }
                Err(MonitorError::NotOwner) => unreachable!("enter cannot fail with NotOwner"),
            }
        }

        Op::MonitorExit => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "obj")?;
            match env.jvm_mut().monitor_exit(thread, oop) {
                Ok(()) => Ok(JniRet::Size(0)),
                Err(_) => Err(Abort::Hard(
                    env.java_throw(names::ILLEGAL_MONITOR, "thread does not own monitor"),
                )),
            }
        }

        Op::GetJavaVm => Ok(JniRet::Size(0)),

        Op::NewDirectByteBuffer => {
            let address = arg_val(args, 0).as_long().unwrap_or(0);
            let capacity = arg_val(args, 1).as_long().unwrap_or(0);
            let class = env
                .jvm()
                .find_class(names::DIRECT_BYTE_BUFFER)
                .expect("bootstrapped");
            let oop = env.jvm_mut().alloc_object(class);
            let fa = env
                .jvm()
                .registry()
                .resolve_field(class, "address", "J", false)
                .expect("address field");
            let fc = env
                .jvm()
                .registry()
                .resolve_field(class, "capacity", "J", false)
                .expect("capacity field");
            env.jvm_mut()
                .set_instance_field(oop, fa, Slot::Long(address));
            env.jvm_mut()
                .set_instance_field(oop, fc, Slot::Long(capacity));
            Ok(JniRet::Ref(env.make_local(oop)))
        }

        Op::GetDirectBufferAddress | Op::GetDirectBufferCapacity => {
            let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "buf")?;
            let class = env.jvm().class_of(oop);
            if env.jvm().registry().class(class).name() != names::DIRECT_BYTE_BUFFER {
                env.ub_or_skip(
                    UbSituation::TypeConfusion {
                        func: spec,
                        expected: "direct buffer",
                    },
                    &spec.name,
                )?;
                return Err(Abort::Skip);
            }
            let field = if matches!(spec.op, Op::GetDirectBufferAddress) {
                "address"
            } else {
                "capacity"
            };
            let fid = env
                .jvm()
                .registry()
                .resolve_field(class, field, "J", false)
                .expect("buffer fields");
            let Slot::Long(v) = env.jvm().get_instance_field(oop, fid) else {
                return Err(Abort::Skip);
            };
            Ok(JniRet::Val(JValue::Long(v)))
        }
    }
}

// ----- family implementations -------------------------------------------

fn run_call(
    env: &mut JniEnv<'_>,
    spec: &'static FuncSpec,
    args: &[JniArg],
    mode: CallMode,
    ret: CallRet,
) -> RawResult<JniRet> {
    let (this_ref, mid, vargs) = match mode {
        CallMode::Virtual => (
            Some(arg_ref(args, 0)),
            arg_method(args, 1),
            arg_vargs(args, 2),
        ),
        CallMode::Nonvirtual => {
            // clazz (args[1]) names the dispatch class; the raw JVM trusts
            // the method id.
            (
                Some(arg_ref(args, 0)),
                arg_method(args, 2),
                arg_vargs(args, 3),
            )
        }
        CallMode::Static => (None, arg_method(args, 1), arg_vargs(args, 2)),
    };

    let Some(info) = env.jvm().registry().method(mid).cloned() else {
        env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
        return Err(Abort::Skip);
    };

    // Resolve the receiver / class argument. The raw JVM does NOT check
    // that the receiver conforms to the method's class, that staticness
    // matches, or that the named class declares the method (the Eclipse
    // SWT bug of Section 6.4.3 survives precisely because of this).
    let mut full_args = Vec::with_capacity(vargs.len() + 1);
    let target_mid = match mode {
        CallMode::Static => {
            let _class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
            mid
        }
        CallMode::Nonvirtual => {
            let this = arg_ref(args, 0);
            env.raw_resolve_nonnull(this, spec, "obj")?;
            let _class = env.expect_class(arg_ref(args, 1), spec, "clazz")?;
            full_args.push(JValue::Ref(this));
            mid
        }
        CallMode::Virtual => {
            let this = this_ref.expect("virtual call has receiver");
            let this_oop = env.raw_resolve_nonnull(this, spec, "obj")?;
            full_args.push(JValue::Ref(this));
            // Virtual dispatch: prefer an override on the dynamic class.
            let dynamic = env.jvm().class_of(this_oop);
            env.jvm()
                .registry()
                .resolve_method(dynamic, &info.name, &info.sig.descriptor(), false)
                .unwrap_or(mid)
        }
    };
    full_args.extend(vargs);

    let target = env
        .jvm()
        .registry()
        .method(target_mid)
        .cloned()
        .expect("resolved");
    let result = match target.body {
        MethodBody::Managed(_) => env.call_managed_method(target_mid, &full_args),
        MethodBody::Native(Some(_)) => env.call_native_method(target_mid, &full_args),
        MethodBody::Native(None) => Err(env.java_throw(
            names::RUNTIME_EXCEPTION,
            &format!("java.lang.UnsatisfiedLinkError: {}", target.name),
        )),
        MethodBody::Abstract => Err(env.java_throw(names::ABSTRACT_METHOD, &target.name)),
    };
    let value = result.map_err(Abort::Hard)?;

    Ok(coerce_ret(ret, value))
}

fn coerce_ret(ret: CallRet, value: JValue) -> JniRet {
    match ret {
        CallRet::Void => JniRet::Void,
        CallRet::Prim(p) => {
            if value.prim_type() == Some(p) {
                JniRet::Val(value)
            } else {
                // Type-confused call: garbage-but-stable default.
                JniRet::Val(JValue::default_of(p))
            }
        }
        CallRet::Object => match value {
            JValue::Ref(r) => JniRet::Ref(r),
            _ => JniRet::Ref(JRef::NULL),
        },
    }
}

fn run_get_field(
    env: &mut JniEnv<'_>,
    spec: &'static FuncSpec,
    args: &[JniArg],
    stat: bool,
    ty: CallRet,
) -> RawResult<JniRet> {
    let fid = arg_field(args, 1);
    let Some(info) = env.jvm().registry().field(fid).cloned() else {
        env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
        return Err(Abort::Skip);
    };
    let slot = if stat {
        let _class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
        match info.slot {
            FieldSlot::Static(_) => env.jvm().registry().static_slot(fid),
            FieldSlot::Instance(_) => {
                env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
                return Err(Abort::Skip);
            }
        }
    } else {
        let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "obj")?;
        match info.slot {
            FieldSlot::Instance(i) => {
                match &env.jvm().heap().get(oop).body {
                    Body::Object { fields } if (i as usize) < fields.len() => fields[i as usize],
                    // Field id from an unrelated class: out-of-bounds
                    // object access — classic silent corruption.
                    _ => {
                        env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
                        return Err(Abort::Skip);
                    }
                }
            }
            FieldSlot::Static(_) => {
                env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
                return Err(Abort::Skip);
            }
        }
    };
    match (ty, slot) {
        (CallRet::Object, Slot::Ref(Some(o))) => Ok(JniRet::Ref(env.make_local(o))),
        (CallRet::Object, Slot::Ref(None)) => Ok(JniRet::Ref(JRef::NULL)),
        (CallRet::Object, _) => Ok(JniRet::Ref(JRef::NULL)),
        (CallRet::Prim(p), s) => match s {
            Slot::Ref(_) => Ok(JniRet::Val(JValue::default_of(p))),
            prim => {
                let v = prim.to_prim();
                if v.prim_type() == Some(p) {
                    Ok(JniRet::Val(v))
                } else {
                    Ok(JniRet::Val(JValue::default_of(p)))
                }
            }
        },
        (CallRet::Void, _) => unreachable!("field families have no void type"),
    }
}

fn run_set_field(
    env: &mut JniEnv<'_>,
    spec: &'static FuncSpec,
    args: &[JniArg],
    stat: bool,
    ty: CallRet,
) -> RawResult<JniRet> {
    let fid = arg_field(args, 1);
    let Some(info) = env.jvm().registry().field(fid).cloned() else {
        env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
        return Err(Abort::Skip);
    };
    if info.flags.is_final {
        env.ub_continue(UbSituation::FinalFieldWrite { func: spec }, &spec.name)?;
    }
    let value = arg_val(args, 2);
    let slot_value = match (ty, value) {
        (CallRet::Object, JValue::Ref(r)) => Slot::Ref(env.raw_resolve(r, spec)?),
        (CallRet::Prim(p), v) if v.prim_type() == Some(p) => Slot::from_prim(v),
        // Type-confused write: skipped (storing garbage would corrupt the
        // simulation rather than simulate corruption).
        _ => return Err(Abort::Skip),
    };
    if stat {
        let _class = env.expect_class(arg_ref(args, 0), spec, "clazz")?;
        match info.slot {
            FieldSlot::Static(_) => {
                env.jvm_mut()
                    .registry_mut()
                    .set_static_slot(fid, slot_value);
                Ok(JniRet::Void)
            }
            FieldSlot::Instance(_) => {
                env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
                Err(Abort::Skip)
            }
        }
    } else {
        let oop = env.raw_resolve_nonnull(arg_ref(args, 0), spec, "obj")?;
        match info.slot {
            FieldSlot::Instance(i) => match &mut env.jvm_mut().heap_mut().get_mut(oop).body {
                Body::Object { fields } if (i as usize) < fields.len() => {
                    fields[i as usize] = slot_value;
                    Ok(JniRet::Void)
                }
                _ => {
                    env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
                    Err(Abort::Skip)
                }
            },
            FieldSlot::Static(_) => {
                env.ub_or_skip(UbSituation::BadEntityId { func: spec }, &spec.name)?;
                Err(Abort::Skip)
            }
        }
    }
}

// ----- shared helpers -----------------------------------------------------

fn expect_string(env: &mut JniEnv<'_>, spec: &'static FuncSpec, r: JRef) -> RawResult<Vec<u16>> {
    let oop = env.raw_resolve_nonnull(r, spec, "str")?;
    expect_string_at(env, spec, oop)
}

fn expect_string_at(
    env: &mut JniEnv<'_>,
    spec: &'static FuncSpec,
    oop: minijvm::Oop,
) -> RawResult<Vec<u16>> {
    match env.jvm().string_chars(oop) {
        Some(c) => Ok(c.to_vec()),
        None => {
            env.ub_or_skip(
                UbSituation::TypeConfusion {
                    func: spec,
                    expected: "java.lang.String",
                },
                &spec.name,
            )?;
            Err(Abort::Skip)
        }
    }
}

fn expect_prim_array(
    env: &mut JniEnv<'_>,
    spec: &'static FuncSpec,
    oop: minijvm::Oop,
    ty: PrimType,
) -> RawResult<PrimArray> {
    match &env.jvm().heap().get(oop).body {
        Body::PrimArray(a) if a.elem_type() == ty => Ok(a.clone()),
        _ => {
            env.ub_or_skip(
                UbSituation::TypeConfusion {
                    func: spec,
                    expected: "primitive array",
                },
                &spec.name,
            )?;
            Err(Abort::Skip)
        }
    }
}

/// Releases a string pin (`ReleaseStringChars` and friends); no copy-back
/// because strings are immutable.
fn release_pin(
    env: &mut JniEnv<'_>,
    spec: &'static FuncSpec,
    args: &[JniArg],
    kind: PinKind,
) -> RawResult<JniRet> {
    // The string argument may be dangling (the Subversion destructor bug);
    // many JVMs ignore it entirely, so only the vendor model sees a fault.
    let str_ref = arg_ref(args, 0);
    if !str_ref.is_null() {
        let _ = env.raw_resolve(str_ref, spec)?;
    }
    let Some(pin) = arg_buf(args, 1) else {
        return Ok(JniRet::Void);
    };
    if let Err(e) = env.jvm_mut().pins_mut().release(pin, kind) {
        env.ub_or_skip(
            UbSituation::PinFault {
                error: e,
                func: spec,
            },
            &spec.name,
        )?;
        return Err(Abort::Skip);
    }
    Ok(JniRet::Void)
}

/// Releases an array pin with copy-back semantics.
fn release_array_pin(
    env: &mut JniEnv<'_>,
    spec: &'static FuncSpec,
    args: &[JniArg],
    kind: PinKind,
    mode: i64,
) -> RawResult<JniRet> {
    let arr_ref = arg_ref(args, 0);
    let arr_oop = if arr_ref.is_null() {
        None
    } else {
        env.raw_resolve(arr_ref, spec)?
    };
    let Some(pin) = arg_buf(args, 1) else {
        return Ok(JniRet::Void);
    };
    match env.jvm_mut().pins_mut().release(pin, kind) {
        Ok((_id, PinData::Prim(data))) => {
            if mode != JNI_ABORT {
                if let Some(oop) = arr_oop {
                    if let Body::PrimArray(a) = &mut env.jvm_mut().heap_mut().get_mut(oop).body {
                        if a.elem_type() == data.elem_type() && a.len() == data.len() {
                            *a = data;
                        }
                    }
                }
            }
            Ok(JniRet::Void)
        }
        Ok(_) => Ok(JniRet::Void),
        Err(e) => {
            env.ub_or_skip(
                UbSituation::PinFault {
                    error: e,
                    func: spec,
                },
                &spec.name,
            )?;
            Err(Abort::Skip)
        }
    }
}
