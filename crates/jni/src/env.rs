//! The JNI environment: the driver that fires interposition hooks around
//! every language transition and dispatches to the raw function semantics.
//!
//! A [`JniEnv`] is the simulated `JNIEnv*`: native code receives one and
//! performs every interaction with the VM through it. The flow of one JNI
//! call mirrors the paper's synthesized wrappers (Figures 3 and 4):
//!
//! ```text
//! invoke(F, args)
//!   ├─ safepoint (the GC may run here — references move)
//!   ├─ pre_jni hooks        (Call:C→Java transitions; may throw)
//!   ├─ raw semantics of F   (vendor-modelled UB on misuse)
//!   └─ post_jni hooks       (Return:Java→C transitions; may throw)
//! ```
//!
//! and of one native method call:
//!
//! ```text
//! call_native_method(M, args)
//!   ├─ safepoint; push local frame; re-register reference args
//!   ├─ native_enter hooks   (Call:Java→C; Acquire transitions)
//!   ├─ the native body (a Rust closure standing in for C)
//!   ├─ native_exit hooks    (Return:C→Java; Use + Release transitions)
//!   └─ pop local frame; translate the returned reference outward
//! ```

use jinn_obs::{forensics, VerdictAction};
use minijvm::class::names;
use minijvm::{
    EnvToken, JRef, JValue, Jvm, MethodBody, MethodId, Oop, RefFault, ThreadId,
    DEFAULT_LOCAL_CAPACITY,
};

use crate::error::JniError;
use crate::interpose::{
    death_of, CallCx, Interpose, JniArg, JniRet, Report, ReportAction, UbOutcome, UbSituation,
    Violation,
};
use crate::raw;
use crate::registry::{FuncId, FuncSpec, RetKind};
use crate::tap::ManagedOutcome;
use crate::vm::Vm;

/// The class of the exception Jinn throws at the point of failure.
pub const JINN_EXCEPTION_CLASS: &str = "jinn/JNIAssertionFailure";

/// Release mode: copy back and free the buffer.
pub const JNI_COMMIT: i64 = 1;
/// Release mode: free the buffer without copying back.
pub const JNI_ABORT: i64 = 2;

/// Flow control for raw semantics: abort hard (error propagates to the
/// caller) or skip the operation and return the function's default value
/// (the "keeps running with undefined results" outcome).
#[derive(Debug)]
pub(crate) enum Abort {
    Hard(JniError),
    Skip,
}

pub(crate) type RawResult<T> = Result<T, Abort>;

/// The simulated `JNIEnv*` handed to native code.
pub struct JniEnv<'s> {
    pub(crate) vm: &'s mut Vm,
    interposers: &'s mut Vec<Box<dyn Interpose>>,
    log: &'s mut Vec<String>,
    thread: ThreadId,
    presented: EnvToken,
}

impl std::fmt::Debug for JniEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JniEnv")
            .field("thread", &self.thread)
            .field("presented", &self.presented)
            .finish_non_exhaustive()
    }
}

impl<'s> JniEnv<'s> {
    pub(crate) fn new(
        vm: &'s mut Vm,
        interposers: &'s mut Vec<Box<dyn Interpose>>,
        log: &'s mut Vec<String>,
        thread: ThreadId,
        presented: EnvToken,
    ) -> JniEnv<'s> {
        JniEnv {
            vm,
            interposers,
            log,
            thread,
            presented,
        }
    }

    /// The executing thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The `JNIEnv*` token this environment presents to the VM.
    pub fn presented_env(&self) -> EnvToken {
        self.presented
    }

    /// Overrides the presented `JNIEnv*` token — the vehicle for
    /// simulating C code that cached another thread's env (pitfall 14).
    pub fn set_presented_env(&mut self, token: EnvToken) {
        self.presented = token;
    }

    /// Read access to the JVM (assertions in tests and examples).
    pub fn jvm(&self) -> &Jvm {
        &self.vm.jvm
    }

    /// Mutable access to the JVM (test setup through an env).
    pub fn jvm_mut(&mut self) -> &mut Jvm {
        &mut self.vm.jvm
    }

    /// Appends a line to the session's diagnostic log.
    pub fn log_line(&mut self, line: impl Into<String>) {
        self.log.push(line.into());
    }

    // ----- call stack (for Figure 9 style reports) -----------------------

    fn stack_snapshot(&self) -> Vec<String> {
        self.vm
            .stacks
            .get(self.thread.0 as usize)
            .map(|s| {
                // Innermost frame first, like a Java stack trace.
                s.iter().rev().cloned().collect()
            })
            .unwrap_or_default()
    }

    fn push_stack(&mut self, frame: String) {
        let idx = self.thread.0 as usize;
        if self.vm.stacks.len() <= idx {
            self.vm.stacks.resize(idx + 1, Vec::new());
        }
        self.vm.stacks[idx].push(frame);
    }

    fn pop_stack(&mut self) {
        if let Some(s) = self.vm.stacks.get_mut(self.thread.0 as usize) {
            s.pop();
        }
    }

    /// The current Java-style backtrace, innermost first.
    pub fn backtrace(&self) -> Vec<String> {
        self.stack_snapshot()
    }

    /// Pushes a synthetic "Java" frame (harness entry points use this so
    /// backtraces read like Figure 9's).
    pub fn enter_java_frame(&mut self, frame: impl Into<String>) {
        self.push_stack(frame.into());
    }

    /// Pops a synthetic frame pushed with [`JniEnv::enter_java_frame`].
    pub fn exit_java_frame(&mut self) {
        self.pop_stack();
    }

    // ----- report handling -----------------------------------------------

    fn handle_reports(&mut self, reports: Vec<Report>) -> Result<(), JniError> {
        let mut fatal: Option<JniError> = None;
        for Report { violation, action } in reports {
            if self.vm.recorder.is_enabled() {
                // Verdicts are rare: interning here (rather than caching
                // ids) keeps this cold path simple.
                let machine = self.vm.recorder.intern(violation.machine);
                let function = self.vm.recorder.intern(&violation.function);
                self.vm.recorder.verdict_id(
                    self.thread.0,
                    machine,
                    function,
                    match action {
                        ReportAction::Warn => VerdictAction::Warn,
                        ReportAction::AbortVm => VerdictAction::AbortVm,
                        ReportAction::ThrowException => VerdictAction::ThrowException,
                    },
                );
                self.vm.recorder.count("checks.violations", 1);
                // Bug forensics: snapshot the history that led to any
                // non-warning verdict (the JNIAssertionFailure / abort
                // moment), before the verdict mutates VM state.
                if action != ReportAction::Warn {
                    self.vm.last_forensics = Some(forensics::capture(
                        &self.vm.recorder,
                        self.vm.forensics_config,
                        violation.machine,
                        violation.error_state,
                        &violation.function,
                        &violation.message,
                        self.thread.0,
                        violation.backtrace.clone(),
                    ));
                }
            }
            match action {
                ReportAction::Warn => {
                    self.log.push(format!("WARNING: {violation}"));
                    for frame in &violation.backtrace {
                        self.log.push(format!("\tat {frame}"));
                    }
                }
                ReportAction::AbortVm => {
                    self.log.push(format!("FATAL: {violation}"));
                    for frame in &violation.backtrace {
                        self.log.push(format!("\tat {frame}"));
                    }
                    if fatal.is_none() {
                        fatal = Some(JniError::Death(minijvm::JvmDeath::fatal(format!(
                            "checker abort: {violation}"
                        ))));
                    }
                }
                ReportAction::ThrowException => {
                    if fatal.is_none() {
                        let class = if self.vm.jvm.find_class(JINN_EXCEPTION_CLASS).is_some() {
                            JINN_EXCEPTION_CLASS
                        } else {
                            names::RUNTIME_EXCEPTION
                        };
                        // Chain the exception that was already pending, as
                        // Jinn's reports do ("Caused by: ..." in Figure 9c).
                        let mut violation = violation;
                        if let Some(prev) = self.vm.jvm.thread(self.thread).pending_exception() {
                            let cause = self.vm.jvm.describe_exception(prev);
                            violation.message =
                                format!("{}\nCaused by: {cause}", violation.message);
                        }
                        self.vm
                            .jvm
                            .throw_new(self.thread, class, &violation.message);
                        fatal = Some(JniError::Detected(violation));
                    }
                }
            }
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ----- the JNI call driver --------------------------------------------

    /// Invokes a JNI function through the full interposition pipeline.
    ///
    /// This is the generic core; the typed methods (e.g.
    /// [`crate::typed`]'s `find_class`) pack their arguments and delegate
    /// here.
    ///
    /// # Errors
    ///
    /// [`JniError::Exception`] when the call completes with a Java
    /// exception pending, [`JniError::Detected`] when an attached checker
    /// throws, and [`JniError::Death`] when the simulated process dies.
    pub fn invoke(&mut self, func: FuncId, args: Vec<JniArg>) -> Result<JniRet, JniError> {
        // Boundary tap: sees the call with full arguments and the
        // presented env token, before checkers run and after the call
        // settles. No tap = one branch.
        if let Some(tap) = self.vm.tap.clone() {
            tap.borrow_mut()
                .jni_enter(self.thread, self.presented, func, &args);
            let result = self.invoke_recorded(func, args);
            tap.borrow_mut().jni_exit(self.thread, func, &result);
            return result;
        }
        self.invoke_recorded(func, args)
    }

    fn invoke_recorded(&mut self, func: FuncId, args: Vec<JniArg>) -> Result<JniRet, JniError> {
        // Observability wrapper: when a recorder is attached, bracket the
        // call with Call:C→Java / Return:Java→C events and feed the
        // per-function latency histogram. Disabled recorder = one branch.
        if !self.vm.recorder.is_enabled() {
            return self.invoke_inner(func, args);
        }
        let label = self.vm.func_label(func);
        let thread = self.thread.0;
        self.vm.recorder.jni_enter_id(thread, label);
        let timer = self.vm.recorder.timer();
        let result = self.invoke_inner(func, args);
        let nanos = timer.map(|t| t.elapsed().as_nanos() as u64);
        let failed = result.is_err();
        self.vm.recorder.jni_exit_id(thread, label, nanos, failed);
        result
    }

    fn invoke_inner(&mut self, func: FuncId, args: Vec<JniArg>) -> Result<JniRet, JniError> {
        if let Some(d) = &self.vm.dead {
            return Err(JniError::Death(d.clone()));
        }
        self.vm.stats.c_to_java += 1;
        self.boundary_safepoint();
        // Fast path: with no agent attached there is no interposition
        // work at all — this is the production-run baseline of Table 3.
        if self.interposers.is_empty() {
            return match raw::execute(self, func, &args) {
                Ok(ret) => Ok(ret),
                Err(Abort::Hard(e)) => {
                    if let JniError::Death(d) = &e {
                        self.vm.dead.get_or_insert_with(|| d.clone());
                    }
                    Err(e)
                }
                Err(Abort::Skip) => Ok(default_ret(func.spec())),
            };
        }
        // Call:C→Java hooks. The stack is passed as a borrow (outermost
        // frame first); checkers reverse it only when building a report.
        let mut pre_reports = Vec::new();
        {
            let cx = CallCx {
                func,
                thread: self.thread,
                presented_env: self.presented,
                args: &args,
                stack: self
                    .vm
                    .stacks
                    .get(self.thread.0 as usize)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
            };
            for i in 0..self.interposers.len() {
                let name = self.interposers[i].name().to_string();
                let (jvm, checker) = (&self.vm.jvm, &mut self.interposers[i]);
                pre_reports.extend(guard_hook(&name, "pre_jni", || checker.pre_jni(jvm, &cx)));
            }
        }
        // A throwing checker prevents the wrapped function from running
        // (Figure 4: "return jinn_throw_JNIException(...)").
        if let Err(e) = self.handle_reports(pre_reports) {
            if let JniError::Death(d) = &e {
                self.vm.dead.get_or_insert_with(|| d.clone());
            }
            return Err(e);
        }

        // Raw semantics, with vendor-modelled UB.
        let result = match raw::execute(self, func, &args) {
            Ok(ret) => Ok(ret),
            Err(Abort::Hard(e)) => Err(e),
            Err(Abort::Skip) => Ok(default_ret(func.spec())),
        };

        // Return:Java→C hooks.
        let mut post_reports = Vec::new();
        {
            let cx = CallCx {
                func,
                thread: self.thread,
                presented_env: self.presented,
                args: &args,
                stack: self
                    .vm
                    .stacks
                    .get(self.thread.0 as usize)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
            };
            let ret = result.as_ref().ok();
            for i in 0..self.interposers.len() {
                let name = self.interposers[i].name().to_string();
                let (jvm, checker) = (&self.vm.jvm, &mut self.interposers[i]);
                post_reports.extend(guard_hook(&name, "post_jni", || {
                    checker.post_jni(jvm, &cx, ret)
                }));
            }
        }
        let result = match self.handle_reports(post_reports) {
            Ok(()) => result,
            Err(e) => Err(e),
        };
        if let Err(JniError::Death(d)) = &result {
            self.vm.dead.get_or_insert_with(|| d.clone());
        }
        result
    }

    /// Calls a native method from "Java" — the `Call:Java→C` language
    /// transition. Reference arguments are re-registered as local
    /// references in the method's fresh frame; the returned reference (if
    /// any) is translated into the caller's frame.
    ///
    /// # Errors
    ///
    /// As for [`JniEnv::invoke`]; additionally, if the native method
    /// completes with a Java exception pending, the result is
    /// [`JniError::Exception`] (Java would rethrow at this point).
    ///
    /// # Panics
    ///
    /// Panics if `method` is not a registered method — a harness bug, not
    /// a simulated one.
    pub fn call_native_method(
        &mut self,
        method: MethodId,
        args: &[JValue],
    ) -> Result<JValue, JniError> {
        if let Some(d) = &self.vm.dead {
            return Err(JniError::Death(d.clone()));
        }
        // Boundary tap: the Call:Java→C transition with the *caller's*
        // view of the arguments (before frame-local re-registration).
        // The matching native_exit fires inside the inner driver, with
        // the body's raw result.
        if let Some(tap) = self.vm.tap.clone() {
            tap.borrow_mut().native_enter(self.thread, method, args);
        }
        if !self.vm.recorder.is_enabled() {
            let result = self.call_native_method_inner(method, args);
            if let Err(JniError::Death(d)) = &result {
                self.vm.dead.get_or_insert_with(|| d.clone());
            }
            return result;
        }
        // Observability wrapper: Call:Java→C / Return:C→Java events around
        // the native body.
        let label = self.vm.native_label(method);
        let thread = self.thread.0;
        self.vm.recorder.native_enter_id(thread, label);
        let timer = self.vm.recorder.timer();
        let result = self.call_native_method_inner(method, args);
        let nanos = timer.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        let failed = result.is_err();
        self.vm
            .recorder
            .native_exit_id(thread, label, nanos, failed);
        self.vm.recorder.count_id(self.vm.native_calls_label, 1);
        if let Err(JniError::Death(d)) = &result {
            self.vm.dead.get_or_insert_with(|| d.clone());
        }
        result
    }

    fn call_native_method_inner(
        &mut self,
        method: MethodId,
        args: &[JValue],
    ) -> Result<JValue, JniError> {
        let info = self
            .vm
            .jvm
            .registry()
            .method(method)
            .unwrap_or_else(|| panic!("call_native_method: unknown method id {method}"))
            .clone();
        let MethodBody::Native(bound) = info.body else {
            panic!("call_native_method: `{}` is not native", info.name);
        };
        let Some(fn_idx) = bound else {
            self.java_throw(
                names::RUNTIME_EXCEPTION,
                &format!("java.lang.UnsatisfiedLinkError: {}", info.name),
            );
            let err = Err(JniError::Exception);
            if let Some(tap) = self.vm.tap.clone() {
                tap.borrow_mut().native_exit(self.thread, method, &err);
            }
            return err;
        };

        self.vm.stats.java_to_c += 1;
        self.boundary_safepoint();
        self.vm
            .jvm
            .thread_mut(self.thread)
            .push_frame(DEFAULT_LOCAL_CAPACITY);

        // Re-register reference arguments in the callee frame.
        let mut callee_args = Vec::with_capacity(args.len());
        let mut arg_refs = Vec::new();
        for v in args {
            match v {
                JValue::Ref(r) if !r.is_null() => match self.vm.jvm.resolve(self.thread, *r) {
                    Ok(Some(oop)) => {
                        let nr = self.vm.jvm.new_local(self.thread, oop);
                        arg_refs.push(nr);
                        callee_args.push(JValue::Ref(nr));
                    }
                    _ => callee_args.push(JValue::NULL),
                },
                other => callee_args.push(*other),
            }
        }

        let class_name = self.vm.jvm.registry().class(info.class).dotted_name();
        self.push_stack(format!("{}.{}(Native Method)", class_name, info.name));
        let stack = self.stack_snapshot();

        // Call:Java→C hooks (Acquire transitions for the argument refs).
        let mut reports = Vec::new();
        for i in 0..self.interposers.len() {
            let name = self.interposers[i].name().to_string();
            let (jvm, checker) = (&self.vm.jvm, &mut self.interposers[i]);
            let thread = self.thread;
            reports.extend(guard_hook(&name, "native_enter", || {
                checker.native_enter(jvm, thread, method, &arg_refs, &stack)
            }));
        }
        if let Err(e) = self.handle_reports(reports) {
            self.pop_stack();
            let _ = self.vm.jvm.thread_mut(self.thread).pop_frame();
            let err = Err(e);
            if let Some(tap) = self.vm.tap.clone() {
                tap.borrow_mut().native_exit(self.thread, method, &err);
            }
            return err;
        }

        // The native body itself.
        let f = self.vm.natives[fn_idx as usize].clone();
        let result = f(self, &callee_args);
        // Boundary tap: the body's raw result, before returned-reference
        // translation and before the frame pops — the substitution point
        // for deterministic replay.
        if let Some(tap) = self.vm.tap.clone() {
            tap.borrow_mut().native_exit(self.thread, method, &result);
        }

        // Return:C→Java hooks, fired before the frame pops: the checker
        // must see the frame's references while they are still live (Use
        // of the returned ref, then Release of the frame).
        let returned_ref = match &result {
            Ok(JValue::Ref(r)) if !r.is_null() => Some(*r),
            _ => None,
        };
        let stack = self.stack_snapshot();
        let mut reports = Vec::new();
        for i in 0..self.interposers.len() {
            let name = self.interposers[i].name().to_string();
            let (jvm, checker) = (&self.vm.jvm, &mut self.interposers[i]);
            let thread = self.thread;
            reports.extend(guard_hook(&name, "native_exit", || {
                checker.native_exit(jvm, thread, method, returned_ref, &stack)
            }));
        }
        let hook_result = self.handle_reports(reports);

        // Translate the returned reference out of the dying frame. The
        // raw JVM resolves it before the pop; a dangling returned ref is
        // vendor-defined behaviour.
        let mut ret_oop: Option<Oop> = None;
        let mut final_err: Option<JniError> = hook_result.err();
        if final_err.is_none() {
            if let (Some(r), Ok(_)) = (returned_ref, &result) {
                match self.vm.jvm.resolve(self.thread, r) {
                    Ok(o) => ret_oop = o,
                    Err(fault) => {
                        let spec = crate::func_id!("PopLocalFrame").spec();
                        let outcome = self.decide_ub(&UbSituation::RefFault { fault, func: spec });
                        match outcome {
                            UbOutcome::Proceed => {
                                ret_oop = self.vm.jvm.resolve_ignoring_thread(r).unwrap_or(None);
                            }
                            UbOutcome::Npe => {
                                self.java_throw(names::NPE, &fault.to_string());
                                final_err = Some(JniError::Exception);
                            }
                            other => {
                                final_err =
                                    death_of(&other, self.vm.vendor.name(), "native method return")
                                        .map(JniError::Death);
                            }
                        }
                    }
                }
            }
        }

        self.pop_stack();
        let _ = self.vm.jvm.thread_mut(self.thread).pop_frame();

        if let Some(e) = final_err {
            return Err(e);
        }
        let value = match result? {
            JValue::Ref(r) if !r.is_null() => match ret_oop {
                Some(oop) => JValue::Ref(self.vm.jvm.new_local(self.thread, oop)),
                None => JValue::NULL,
            },
            other => other,
        };
        // Returning to Java with an exception pending rethrows there.
        if self
            .vm
            .jvm
            .thread(self.thread)
            .pending_exception()
            .is_some()
        {
            return Err(JniError::Exception);
        }
        Ok(value)
    }

    /// Executes a managed ("Java") method body. Used by the raw `Call…`
    /// semantics; exposed for harness entry points that start in Java.
    ///
    /// # Errors
    ///
    /// Propagates whatever the managed body produces.
    ///
    /// # Panics
    ///
    /// Panics if `method` is not a managed method of this VM.
    pub fn call_managed_method(
        &mut self,
        method: MethodId,
        args: &[JValue],
    ) -> Result<JValue, JniError> {
        let info = self
            .vm
            .jvm
            .registry()
            .method(method)
            .unwrap_or_else(|| panic!("call_managed_method: unknown method id {method}"))
            .clone();
        let MethodBody::Managed(idx) = info.body else {
            panic!("call_managed_method: `{}` is not managed", info.name);
        };
        let class_name = self.vm.jvm.registry().class(info.class).dotted_name();
        let file = class_name.rsplit('.').next().unwrap_or("Unknown");
        let line = 5 + method.index() % 13;
        self.push_stack(format!(
            "{}.{}({}.java:{})",
            class_name, info.name, file, line
        ));
        if let Some(tap) = self.vm.tap.clone() {
            tap.borrow_mut().managed_enter(self.thread, method, args);
        }
        let f = self.vm.managed[idx as usize].clone();
        let result = f(self, args);
        if let Some(tap) = self.vm.tap.clone() {
            let outcome = match &result {
                Ok(v) => ManagedOutcome::Return(*v),
                Err(JniError::Exception) => {
                    let pending = self.vm.jvm.thread(self.thread).pending_exception();
                    let (class, message) = match pending {
                        Some(exc) => {
                            let class_id = self.vm.jvm.class_of(exc);
                            let class = self.vm.jvm.registry().class(class_id).name().to_string();
                            let message = self.vm.jvm.exception_message(exc).unwrap_or_default();
                            (class, message)
                        }
                        None => (names::THROWABLE.to_string(), String::new()),
                    };
                    ManagedOutcome::Threw { class, message }
                }
                Err(JniError::Death(_)) => ManagedOutcome::Died,
                Err(JniError::Detected(_)) => ManagedOutcome::Detected,
            };
            tap.borrow_mut().managed_exit(self.thread, method, &outcome);
        }
        self.pop_stack();
        result
    }

    /// Stores a native function body, returning its code index for
    /// binding (used by `RegisterNatives`).
    pub fn add_native_code(&mut self, f: crate::vm::NativeFn) -> u32 {
        self.vm.natives.push(f);
        self.vm.natives.len() as u32 - 1
    }

    /// Java-side throw: sets a pending exception *without* crossing the
    /// JNI (managed code throwing does not transit the boundary).
    pub fn java_throw(&mut self, class_name: &str, message: &str) -> JniError {
        self.vm.jvm.throw_new(self.thread, class_name, message);
        JniError::Exception
    }

    // ----- helpers shared with the raw semantics --------------------------

    pub(crate) fn make_local(&mut self, oop: Oop) -> JRef {
        self.vm.jvm.new_local(self.thread, oop)
    }

    /// Runs the boundary safepoint, reporting any collection that ran to
    /// the attached tap (GC schedule is part of a reproducible trace).
    fn boundary_safepoint(&mut self) {
        if let Some(stats) = self.vm.jvm.safepoint() {
            if let Some(tap) = self.vm.tap.clone() {
                tap.borrow_mut().gc_point(self.thread, &stats);
            }
        }
    }

    /// Single funnel for vendor undefined-behaviour decisions: consults
    /// the vendor model and reports the (situation, outcome) pair to the
    /// attached tap.
    pub(crate) fn decide_ub(&mut self, situation: &UbSituation<'_>) -> UbOutcome {
        let outcome = self.vm.vendor.on_violation(situation);
        if let Some(tap) = self.vm.tap.clone() {
            tap.borrow_mut().vendor_ub(self.thread, situation, &outcome);
        }
        outcome
    }

    /// Consults the vendor model for a UB situation where the operation
    /// *can* still proceed (exception pending, env mismatch, final write…).
    pub(crate) fn ub_continue(
        &mut self,
        situation: UbSituation<'_>,
        func_name: &str,
    ) -> RawResult<()> {
        let outcome = self.decide_ub(&situation);
        self.apply_ub(outcome, func_name)
    }

    /// Consults the vendor model for a UB situation where the operation is
    /// mechanically impossible; `Proceed` therefore means "skip it and
    /// return a garbage default".
    pub(crate) fn ub_or_skip(
        &mut self,
        situation: UbSituation<'_>,
        func_name: &str,
    ) -> RawResult<()> {
        let outcome = self.decide_ub(&situation);
        match outcome {
            UbOutcome::Proceed => Err(Abort::Skip),
            other => self.apply_ub(other, func_name),
        }
    }

    fn apply_ub(&mut self, outcome: UbOutcome, func_name: &str) -> RawResult<()> {
        match outcome {
            UbOutcome::Proceed => Ok(()),
            UbOutcome::Npe => {
                self.java_throw(names::NPE, &format!("in {func_name}"));
                Err(Abort::Hard(JniError::Exception))
            }
            other => {
                let death =
                    death_of(&other, self.vm.vendor.name(), func_name).expect("crash or deadlock");
                Err(Abort::Hard(JniError::Death(death)))
            }
        }
    }

    /// Resolves a possibly-null reference argument with vendor-modelled
    /// fault handling. `Ok(None)` means null (or cleared weak).
    pub(crate) fn raw_resolve(
        &mut self,
        r: JRef,
        spec: &'static FuncSpec,
    ) -> RawResult<Option<Oop>> {
        match self.vm.jvm.resolve(self.thread, r) {
            Ok(o) => Ok(o),
            Err(fault) => {
                let outcome = self.decide_ub(&UbSituation::RefFault { fault, func: spec });
                match outcome {
                    UbOutcome::Proceed => {
                        // Permissive JVMs "get lucky": mechanical resolution
                        // may still find an object (possibly the wrong one).
                        Ok(self.vm.jvm.resolve_ignoring_thread(r).unwrap_or(None))
                    }
                    UbOutcome::Npe => {
                        self.java_throw(names::NPE, &fault.to_string());
                        Err(Abort::Hard(JniError::Exception))
                    }
                    other => {
                        let death = death_of(&other, self.vm.vendor.name(), &spec.name)
                            .expect("crash or deadlock");
                        Err(Abort::Hard(JniError::Death(death)))
                    }
                }
            }
        }
    }

    /// Resolves a reference argument that must not be null.
    pub(crate) fn raw_resolve_nonnull(
        &mut self,
        r: JRef,
        spec: &'static FuncSpec,
        param: &'static str,
    ) -> RawResult<Oop> {
        match self.raw_resolve(r, spec)? {
            Some(oop) => Ok(oop),
            None => {
                self.ub_or_skip(UbSituation::NullArgument { func: spec, param }, &spec.name)?;
                Err(Abort::Skip)
            }
        }
    }

    /// Resolves a reference that must be a class mirror, with vendor UB on
    /// confusion (pitfall 3).
    pub(crate) fn expect_class(
        &mut self,
        r: JRef,
        spec: &'static FuncSpec,
        param: &'static str,
    ) -> RawResult<minijvm::ClassId> {
        let oop = self.raw_resolve_nonnull(r, spec, param)?;
        match self.vm.jvm.class_of_mirror(oop) {
            Some(c) => Ok(c),
            None => {
                self.ub_or_skip(
                    UbSituation::TypeConfusion {
                        func: spec,
                        expected: "java.lang.Class",
                    },
                    &spec.name,
                )?;
                Err(Abort::Skip)
            }
        }
    }

    /// Checks a reference fault without resolving (used by delete
    /// operations).
    pub(crate) fn ub_ref_fault(
        &mut self,
        fault: RefFault,
        spec: &'static FuncSpec,
    ) -> RawResult<()> {
        self.ub_or_skip(UbSituation::RefFault { fault, func: spec }, &spec.name)
    }
}

/// Extracts a printable message from a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Runs one interposition hook, converting a checker panic into a fatal
/// `AbortVm` report instead of letting the unwind tear through the
/// driver mid-transition. A panicking checker must not poison the
/// `JniEnv`: the simulated process dies deterministically, with the
/// panic text as its diagnosis, and the VM's own state stays coherent
/// (frames are popped and death is latched by the normal report path).
pub(crate) fn guard_hook(
    checker_name: &str,
    site: &'static str,
    f: impl FnOnce() -> Vec<Report>,
) -> Vec<Report> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(reports) => reports,
        Err(payload) => vec![Report {
            violation: Violation {
                machine: "checker-internal",
                error_state: "Error:Panic",
                function: site.to_string(),
                message: format!(
                    "checker `{checker_name}` panicked during {site}: {}",
                    panic_text(payload.as_ref())
                ),
                backtrace: Vec::new(),
            },
            action: ReportAction::AbortVm,
        }],
    }
}

/// The default ("garbage") return value when the raw JVM skips an
/// operation it cannot perform.
pub(crate) fn default_ret(spec: &FuncSpec) -> JniRet {
    match spec.ret {
        RetKind::Void => JniRet::Void,
        RetKind::Prim(p) => JniRet::Val(JValue::default_of(p)),
        RetKind::LocalRef | RetKind::GlobalRef | RetKind::WeakRef => JniRet::Ref(JRef::NULL),
        RetKind::MethodId => JniRet::Method(MethodId::forged(0xDEAD)),
        RetKind::FieldId => JniRet::Field(minijvm::FieldId::forged(0xDEAD)),
        RetKind::Size => JniRet::Size(-1),
        RetKind::Pin => JniRet::Buf(minijvm::PinId(u32::MAX)),
        RetKind::Address => JniRet::Val(JValue::Long(0)),
    }
}
