//! Error type for JNI calls.

use std::fmt;

use minijvm::{JvmDeath, JvmError};

use crate::interpose::Violation;

/// Why a JNI call did not complete normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JniError {
    /// A Java exception is (now) pending on the calling thread — the
    /// ordinary Java error path, not a failure of the FFI machinery.
    Exception,
    /// The simulated JVM process died (crash, deadlock, fatal error).
    Death(JvmDeath),
    /// A dynamic checker detected an FFI constraint violation and aborted
    /// the call by throwing its checker exception (Jinn's
    /// `JNIAssertionFailure`).
    Detected(Violation),
}

impl JniError {
    /// The violation, if this error came from a checker.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            JniError::Detected(v) => Some(v),
            _ => None,
        }
    }

    /// The death record, if the VM died.
    pub fn death(&self) -> Option<&JvmDeath> {
        match self {
            JniError::Death(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for JniError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JniError::Exception => f.write_str("java exception pending"),
            JniError::Death(d) => write!(f, "{d}"),
            JniError::Detected(v) => write!(f, "JNI assertion failure: {v}"),
        }
    }
}

impl std::error::Error for JniError {}

impl From<JvmDeath> for JniError {
    fn from(d: JvmDeath) -> JniError {
        JniError::Death(d)
    }
}

impl From<JvmError> for JniError {
    fn from(e: JvmError) -> JniError {
        match e {
            JvmError::Exception => JniError::Exception,
            JvmError::Death(d) => JniError::Death(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        let e: JniError = JvmDeath::crash("segv").into();
        assert!(e.death().is_some());
        assert!(e.violation().is_none());
        let e: JniError = JvmError::Exception.into();
        assert_eq!(e, JniError::Exception);
        let v = Violation {
            machine: "nullness",
            error_state: "Error:Null",
            function: "CallVoidMethod".into(),
            message: "method is null".into(),
            backtrace: vec![],
        };
        let e = JniError::Detected(v);
        assert!(e.violation().is_some());
        assert!(e.to_string().contains("assertion failure"));
    }
}
