//! The `Vm` (simulated JVM + native/managed code tables) and the
//! `Session` (a VM plus its interposed checkers).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use jinn_obs::{BugReport, ForensicsConfig, LabelId, Recorder};
use minijvm::{
    ClassId, EnvToken, JValue, Jvm, JvmDeath, MemberFlags, MethodBody, MethodId, ThreadId,
};

use crate::env::JniEnv;
use crate::error::JniError;
use crate::interpose::{Interpose, PermissiveVendor, Report, ReportAction, VendorModel};
use crate::tap::BoundaryTap;

/// A native method body: Rust standing in for C. It receives the JNI
/// environment (through which *all* interaction with the VM must go) and
/// its arguments; reference arguments arrive as local references in the
/// method's fresh frame.
pub type NativeFn = Rc<dyn Fn(&mut JniEnv<'_>, &[JValue]) -> Result<JValue, JniError>>;

/// A managed ("Java") method body. Managed code may freely use VM
/// facilities; it exists so call chains like Java → C → Java → C can be
/// scripted.
pub type ManagedFn = Rc<dyn Fn(&mut JniEnv<'_>, &[JValue]) -> Result<JValue, JniError>>;

/// Counters of boundary crossings, the quantity Table 3's second column
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionStats {
    /// `Call:Java→C` crossings (native method invocations).
    pub java_to_c: u64,
    /// `Call:C→Java` crossings (JNI function invocations).
    pub c_to_java: u64,
}

impl TransitionStats {
    /// Total language transitions, counting each call and its return.
    pub fn total(&self) -> u64 {
        2 * (self.java_to_c + self.c_to_java)
    }
}

/// A simulated JVM instance together with its vendor model and the
/// registered native/managed code.
pub struct Vm {
    pub(crate) jvm: Jvm,
    pub(crate) vendor: Box<dyn VendorModel>,
    pub(crate) natives: Vec<NativeFn>,
    pub(crate) managed: Vec<ManagedFn>,
    pub(crate) stats: TransitionStats,
    /// Per-thread Java-style call stacks (frame text, outermost first).
    pub(crate) stacks: Vec<Vec<String>>,
    /// Once the simulated process dies (crash/deadlock/fatal error) it
    /// stays dead: every subsequent operation returns the same death.
    pub(crate) dead: Option<JvmDeath>,
    /// Observability handle; shared with the JVM substrate.
    pub(crate) recorder: Recorder,
    /// Interned trace label per JNI function, indexed by `FuncId`; built
    /// once in [`set_recorder`](Self::set_recorder) so the record path
    /// carries only a `u32`.
    pub(crate) func_labels: Vec<LabelId>,
    /// Interned trace labels for native methods (`Class.method`), filled
    /// lazily on first call of each method.
    pub(crate) native_labels: HashMap<minijvm::MethodId, LabelId>,
    /// Interned id of the `native.calls` counter.
    pub(crate) native_calls_label: LabelId,
    /// Passive boundary observer (trace recording); see [`BoundaryTap`].
    pub(crate) tap: Option<Rc<RefCell<dyn BoundaryTap>>>,
    /// How much history bug reports keep.
    pub(crate) forensics_config: ForensicsConfig,
    /// The forensics report of the most recent checker verdict.
    pub(crate) last_forensics: Option<BugReport>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("vendor", &self.vendor.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Vm {
    /// Creates a VM with the given vendor model.
    pub fn new(vendor: Box<dyn VendorModel>) -> Vm {
        Vm {
            jvm: Jvm::new(),
            vendor,
            natives: Vec::new(),
            managed: Vec::new(),
            stats: TransitionStats::default(),
            stacks: Vec::new(),
            dead: None,
            recorder: Recorder::disabled(),
            func_labels: Vec::new(),
            native_labels: HashMap::new(),
            native_calls_label: LabelId(0),
            tap: None,
            forensics_config: ForensicsConfig::default(),
            last_forensics: None,
        }
    }

    /// Attaches (or with `None`, detaches) a passive [`BoundaryTap`].
    /// At most one tap is installed at a time; the caller typically keeps
    /// its own `Rc` clone to retrieve the accumulated trace afterwards.
    pub fn set_tap(&mut self, tap: Option<Rc<RefCell<dyn BoundaryTap>>>) {
        self.tap = tap;
    }

    /// Whether a boundary tap is installed.
    pub fn has_tap(&self) -> bool {
        self.tap.is_some()
    }

    /// Attaches an observability recorder to the whole stack: the JNI
    /// driver (boundary-crossing events, per-function metrics, verdict
    /// forensics) and the JVM substrate (GC and pin events).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.jvm.set_recorder(recorder.clone());
        // Intern every JNI function name up front: the invoke hot path
        // then records by dense id, and trace policies can address any
        // function before its first call.
        self.func_labels = crate::registry::registry()
            .iter()
            .map(|(_, spec)| recorder.intern(&spec.name))
            .collect();
        self.native_labels.clear();
        self.native_calls_label = recorder.intern("native.calls");
        self.recorder = recorder;
    }

    /// The interned trace label for a JNI function (recorder attached).
    #[inline]
    pub(crate) fn func_label(&self, func: crate::registry::FuncId) -> LabelId {
        self.func_labels
            .get(func.0 as usize)
            .copied()
            .unwrap_or(LabelId(0))
    }

    /// The interned trace label for a native method, `Class.method`,
    /// computed on its first recorded call.
    pub(crate) fn native_label(&mut self, method: minijvm::MethodId) -> LabelId {
        if let Some(&label) = self.native_labels.get(&method) {
            return label;
        }
        let label = match self.jvm.registry().method(method) {
            Some(info) => {
                let class = self.jvm.registry().class(info.class).dotted_name();
                self.recorder.intern(&format!("{class}.{}", info.name))
            }
            None => self.recorder.intern("<unknown native method>"),
        };
        self.native_labels.insert(method, label);
        label
    }

    /// The attached recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Configures how much history forensics reports keep.
    pub fn set_forensics_config(&mut self, config: ForensicsConfig) {
        self.forensics_config = config;
    }

    /// The forensics report captured at the most recent checker verdict,
    /// if any.
    pub fn last_bug_report(&self) -> Option<&BugReport> {
        self.last_forensics.as_ref()
    }

    /// Takes (and clears) the most recent forensics report.
    pub fn take_bug_report(&mut self) -> Option<BugReport> {
        self.last_forensics.take()
    }

    /// The recorded process death, if the simulated JVM has died.
    pub fn death(&self) -> Option<&JvmDeath> {
        self.dead.as_ref()
    }

    /// Creates a VM with the permissive spec-faithful vendor.
    pub fn permissive() -> Vm {
        Vm::new(Box::new(PermissiveVendor))
    }

    /// The underlying JVM.
    pub fn jvm(&self) -> &Jvm {
        &self.jvm
    }

    /// Mutable access to the underlying JVM (class definition, test
    /// setup).
    pub fn jvm_mut(&mut self) -> &mut Jvm {
        &mut self.jvm
    }

    /// The vendor model.
    pub fn vendor(&self) -> &dyn VendorModel {
        &*self.vendor
    }

    /// Language-transition counters.
    pub fn stats(&self) -> TransitionStats {
        self.stats
    }

    /// Stores a native function body and returns its code index (to be
    /// bound with [`minijvm::ClassRegistry::bind_native`] or
    /// `RegisterNatives`).
    pub fn add_native_code(&mut self, f: NativeFn) -> u32 {
        self.natives.push(f);
        self.natives.len() as u32 - 1
    }

    /// Stores a managed function body and returns its code index.
    pub fn add_managed_code(&mut self, f: ManagedFn) -> u32 {
        self.managed.push(f);
        self.managed.len() as u32 - 1
    }

    /// Convenience: defines a class with a single bound native method and
    /// returns `(class, method)`.
    ///
    /// # Panics
    ///
    /// Panics if the class already exists or the descriptor is malformed —
    /// setup-time errors in harness code.
    pub fn define_native_class(
        &mut self,
        class_name: &str,
        method_name: &str,
        descriptor: &str,
        is_static: bool,
        body: NativeFn,
    ) -> (ClassId, MethodId) {
        let idx = self.add_native_code(body);
        let class = self
            .jvm
            .registry_mut()
            .define(class_name)
            .method(
                method_name,
                descriptor,
                MemberFlags {
                    is_static,
                    ..Default::default()
                },
                MethodBody::Native(Some(idx)),
            )
            .build()
            .unwrap_or_else(|e| panic!("define_native_class({class_name}): {e}"));
        let method = self
            .jvm
            .registry()
            .resolve_method(class, method_name, descriptor, is_static)
            .expect("just defined");
        (class, method)
    }

    /// Convenience: adds a bound managed method to an existing or new
    /// class and returns `(class, method)`.
    ///
    /// # Panics
    ///
    /// As for [`Vm::define_native_class`].
    pub fn define_managed_class(
        &mut self,
        class_name: &str,
        method_name: &str,
        descriptor: &str,
        is_static: bool,
        body: ManagedFn,
    ) -> (ClassId, MethodId) {
        let idx = self.add_managed_code(body);
        let class = self
            .jvm
            .registry_mut()
            .define(class_name)
            .method(
                method_name,
                descriptor,
                MemberFlags {
                    is_static,
                    ..Default::default()
                },
                MethodBody::Managed(idx),
            )
            .build()
            .unwrap_or_else(|e| panic!("define_managed_class({class_name}): {e}"));
        let method = self
            .jvm
            .registry()
            .resolve_method(class, method_name, descriptor, is_static)
            .expect("just defined");
        (class, method)
    }
}

/// How a finished program run ended, as the harness observes it.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Completed normally with a value.
    Completed(JValue),
    /// Terminated with an uncaught Java exception (description attached).
    UncaughtException(String),
    /// The simulated process died.
    Died(JvmDeath),
    /// A checker aborted with a thrown checker exception.
    CheckerException(crate::interpose::Violation),
}

/// A VM plus its interposition stack and diagnostic log: one "java
/// process" launch, e.g. `java -agentlib:jinn Main`.
pub struct Session {
    vm: Vm,
    interposers: Vec<Box<dyn Interpose>>,
    log: Vec<String>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("vm", &self.vm)
            .field(
                "interposers",
                &self
                    .interposers
                    .iter()
                    .map(|i| i.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("log_lines", &self.log.len())
            .finish()
    }
}

impl Session {
    /// Creates a session around a VM with no checkers attached.
    pub fn new(vm: Vm) -> Session {
        Session {
            vm,
            interposers: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Attaches a checker (order matters: earlier checkers see calls
    /// first).
    pub fn attach(&mut self, checker: Box<dyn Interpose>) {
        self.interposers.push(checker);
    }

    /// The VM.
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Mutable VM access (setup).
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Attaches an observability recorder to the session's VM stack.
    /// Call before [`Session::attach`] so checkers can pick it up too.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.vm.set_recorder(recorder);
    }

    /// Attaches (or detaches) a passive [`BoundaryTap`] on the session's
    /// VM.
    pub fn set_tap(&mut self, tap: Option<Rc<RefCell<dyn BoundaryTap>>>) {
        self.vm.set_tap(tap);
    }

    /// The session's recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        self.vm.recorder()
    }

    /// The forensics report captured at the most recent checker verdict.
    pub fn last_bug_report(&self) -> Option<&BugReport> {
        self.vm.last_bug_report()
    }

    /// Takes (and clears) the most recent forensics report.
    pub fn take_bug_report(&mut self) -> Option<BugReport> {
        self.vm.take_bug_report()
    }

    /// Diagnostic log lines (checker warnings, `ExceptionDescribe` output).
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Takes and clears the log.
    pub fn take_log(&mut self) -> Vec<String> {
        std::mem::take(&mut self.log)
    }

    /// A JNI environment for `thread`, presenting the thread's own
    /// (correct) `JNIEnv*`.
    pub fn env(&mut self, thread: ThreadId) -> JniEnv<'_> {
        let token = self.vm.jvm.thread(thread).env();
        self.env_with_token(thread, token)
    }

    /// A JNI environment presenting an arbitrary `JNIEnv*` token — the
    /// vehicle for simulating pitfall 14 (cached env used on the wrong
    /// thread).
    pub fn env_with_token(&mut self, thread: ThreadId, token: EnvToken) -> JniEnv<'_> {
        JniEnv::new(
            &mut self.vm,
            &mut self.interposers,
            &mut self.log,
            thread,
            token,
        )
    }

    /// Runs a native method from "Java" (the program entry of most
    /// experiments) and classifies the outcome.
    pub fn run_native(
        &mut self,
        thread: ThreadId,
        method: MethodId,
        args: &[JValue],
    ) -> RunOutcome {
        let result = self.env(thread).call_native_method(method, args);
        // A crash or deadlock kills the process even when buggy native
        // code ignored the failing call's result.
        if let Some(d) = self.vm.death() {
            return RunOutcome::Died(d.clone());
        }
        match result {
            Ok(v) => RunOutcome::Completed(v),
            Err(JniError::Exception) => {
                let desc = self
                    .vm
                    .jvm
                    .thread(thread)
                    .pending_exception()
                    .map(|e| self.vm.jvm.describe_exception(e))
                    .unwrap_or_else(|| "unknown exception".to_string());
                RunOutcome::UncaughtException(desc)
            }
            Err(JniError::Death(d)) => RunOutcome::Died(d),
            Err(JniError::Detected(v)) => RunOutcome::CheckerException(v),
        }
    }

    /// Terminates the program: fires every checker's `vm_death` sweep
    /// (leak reports) and returns all reports. `Warn` reports are also
    /// appended to the log.
    pub fn shutdown(&mut self) -> Vec<Report> {
        let mut all = Vec::new();
        for checker in &mut self.interposers {
            let name = checker.name().to_string();
            let jvm = &self.vm.jvm;
            let reports = crate::env::guard_hook(&name, "vm_death", || checker.vm_death(jvm));
            for r in &reports {
                if r.action == ReportAction::Warn {
                    self.log
                        .push(format!("{}: {}", checker.name(), r.violation));
                }
            }
            all.extend(reports);
        }
        all
    }
}
