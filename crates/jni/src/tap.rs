//! The [`BoundaryTap`]: a passive observation seam below the checker
//! stack.
//!
//! [`Interpose`](crate::interpose::Interpose) is the paper's *checker*
//! seam: hooks may report violations and change execution (abort, throw).
//! A `BoundaryTap` is strictly weaker — it only *watches*. It sees every
//! language transition of Figure 2 with full arguments, plus the
//! substrate decisions (GC points, vendor undefined-behaviour outcomes)
//! that make a run reproducible. The `jinn-replay` crate hangs its
//! `TraceWriter` here; nothing in this crate depends on what a tap does
//! with the stream.
//!
//! Taps fire even when no checkers are attached, and they fire *before*
//! checkers on entry events and *after* the raw operation on exit events,
//! so a recorded stream reflects what the program did rather than what a
//! checker made of it. The native-exit tap in particular fires with the
//! native body's raw result, **before** returned-reference translation —
//! the point at which a replayed body can substitute the recorded value
//! and let the driver re-run translation identically.

use minijvm::{EnvToken, GcStats, JValue, MethodId, ThreadId};

use crate::error::JniError;
use crate::interpose::{JniArg, JniRet, UbOutcome, UbSituation};
use crate::registry::FuncId;

/// How a managed ("Java") method body finished, as observed by the tap.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagedOutcome {
    /// Returned normally with a value.
    Return(JValue),
    /// Raised a Java exception (left pending on the thread).
    Threw {
        /// Slashed class name of the exception (e.g.
        /// `java/lang/RuntimeException`).
        class: String,
        /// Exception message (empty when absent).
        message: String,
    },
    /// The simulated process died inside the managed body.
    Died,
    /// A checker threw inside the managed body (nested native code).
    Detected,
}

/// Passive observer of every language transition and substrate decision.
///
/// All methods default to no-ops so a tap implements only what it needs.
/// Single-threaded like the rest of the workspace: taps are stored as
/// `Rc<RefCell<dyn BoundaryTap>>` on the [`Vm`](crate::Vm).
pub trait BoundaryTap {
    /// `Call:C→Java` — a JNI function is about to execute. `presented` is
    /// the `JNIEnv*` token the C code used (possibly the wrong thread's).
    fn jni_enter(&mut self, thread: ThreadId, presented: EnvToken, func: FuncId, args: &[JniArg]) {
        let _ = (thread, presented, func, args);
    }

    /// `Return:Java→C` — the JNI function finished (any status).
    fn jni_exit(&mut self, thread: ThreadId, func: FuncId, result: &Result<JniRet, JniError>) {
        let _ = (thread, func, result);
    }

    /// `Call:Java→C` — a native method is being invoked with the caller's
    /// view of the arguments (before re-registration into the callee's
    /// local frame).
    fn native_enter(&mut self, thread: ThreadId, method: MethodId, args: &[JValue]) {
        let _ = (thread, method, args);
    }

    /// `Return:C→Java` — the native body returned. Fires with the body's
    /// raw result, before returned-reference translation and before the
    /// frame pops.
    fn native_exit(
        &mut self,
        thread: ThreadId,
        method: MethodId,
        result: &Result<JValue, JniError>,
    ) {
        let _ = (thread, method, result);
    }

    /// A managed method body is being invoked (nested Java inside C).
    fn managed_enter(&mut self, thread: ThreadId, method: MethodId, args: &[JValue]) {
        let _ = (thread, method, args);
    }

    /// A managed method body finished.
    fn managed_exit(&mut self, thread: ThreadId, method: MethodId, outcome: &ManagedOutcome) {
        let _ = (thread, method, outcome);
    }

    /// A garbage collection ran at a boundary safepoint.
    fn gc_point(&mut self, thread: ThreadId, stats: &GcStats) {
        let _ = (thread, stats);
    }

    /// The vendor model decided the outcome of an undefined-behaviour
    /// situation.
    fn vendor_ub(&mut self, thread: ThreadId, situation: &UbSituation<'_>, outcome: &UbOutcome) {
        let _ = (thread, situation, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingTap(u32);
    impl BoundaryTap for CountingTap {
        fn jni_enter(
            &mut self,
            _thread: ThreadId,
            _presented: EnvToken,
            _func: FuncId,
            _args: &[JniArg],
        ) {
            self.0 += 1;
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut tap = CountingTap(0);
        tap.jni_exit(ThreadId(0), FuncId::of("GetVersion"), &Ok(JniRet::Void));
        tap.native_enter(ThreadId(0), MethodId::forged(0), &[]);
        tap.managed_exit(
            ThreadId(0),
            MethodId::forged(0),
            &ManagedOutcome::Return(JValue::Void),
        );
        assert_eq!(tap.0, 0);
        tap.jni_enter(ThreadId(0), EnvToken(0), FuncId::of("GetVersion"), &[]);
        assert_eq!(tap.0, 1);
    }
}
