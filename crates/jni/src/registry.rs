//! The JNI function registry: all 229 `JNIEnv` functions with their
//! constraint metadata.
//!
//! The paper extracts JNI constraints "by scanning the JNI header file for
//! C parameters with well-defined corresponding Java types" plus the
//! informal explanations in Liang's book (Section 5.2). This module is the
//! machine-readable result of that scan: one [`FuncSpec`] per function,
//! carrying everything the synthesizer needs — parameter kinds,
//! nullability, fixed Java types, entity-ID parameters, exception
//! obliviousness, and critical-section sensitivity. Table 2 of the paper
//! is *computed* from this registry (see the `constraint_counts` method).

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use minijvm::PrimType;

/// Index of a function in the registry (stable, in `jni.h` order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u16);

impl FuncId {
    /// Looks up a function id by name.
    ///
    /// # Panics
    ///
    /// Panics if no such JNI function exists — a typo in checker or test
    /// code, never a runtime condition.
    pub fn of(name: &str) -> FuncId {
        registry()
            .id(name)
            .unwrap_or_else(|| panic!("no JNI function named `{name}`"))
    }

    /// The function's spec.
    pub fn spec(self) -> &'static FuncSpec {
        registry().spec(self)
    }

    /// The function's name.
    pub fn name(self) -> &'static str {
        &self.spec().name
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Resolves a JNI function name to its [`FuncId`] with a one-time
/// registry probe per call site.
///
/// [`FuncId::of`] hashes the name through the by-name registry index on
/// every call; code that dispatches per event (the typed wrappers, the
/// interposition fast paths) caches the id in a per-call-site `OnceLock`
/// instead, so after first use the hot path carries only the `u16` id.
/// Resolution still panics on an unknown name — at first use, exactly
/// like [`FuncId::of`].
#[macro_export]
macro_rules! func_id {
    ($name:expr) => {{
        static CACHED: ::std::sync::OnceLock<$crate::registry::FuncId> =
            ::std::sync::OnceLock::new();
        *CACHED.get_or_init(|| $crate::registry::FuncId::of($name))
    }};
}

/// What kind of value a parameter carries across the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamKind {
    /// A reference (`jobject`, `jclass`, `jstring`, `jarray`,
    /// `jthrowable`, `jweak` — distinguished by [`ParamSpec::fixed_types`]).
    Ref,
    /// A `jmethodID`.
    MethodId,
    /// A `jfieldID`.
    FieldId,
    /// A primitive value parameter.
    Prim(PrimType),
    /// A `jsize`/capacity/index integer.
    Size,
    /// A release-mode integer (`0`, `JNI_COMMIT`, `JNI_ABORT`).
    Mode,
    /// A C string carrying a name or descriptor (class name, method name,
    /// signature, message).
    Name,
    /// A C data pointer: out-buffer for regions, pinned-buffer pointer for
    /// `Release*` functions, classfile bytes, native memory address.
    Buffer,
    /// A `jvalue*` argument array (or the equivalent varargs).
    Args,
    /// A `jboolean* isCopy` out-parameter.
    IsCopyOut,
    /// A `JavaVM**` out-parameter.
    VmOut,
}

/// One parameter of a JNI function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name as in the JNI documentation.
    pub name: &'static str,
    /// Value kind.
    pub kind: ParamKind,
    /// Whether `NULL` is a legal value (the nullness constraint of
    /// Figure 7 applies to each non-nullable parameter).
    pub nullable: bool,
    /// Fixed-typing constraint: the actual must be assignable to one of
    /// these Java types. `"[*"` means any array, `"[prim"` any primitive
    /// array, `"[obj"` any object array, `"[<desc>"` a specific array
    /// type; anything else is an internal class name.
    pub fixed_types: &'static [&'static str],
}

impl ParamSpec {
    fn new(name: &'static str, kind: ParamKind) -> ParamSpec {
        ParamSpec {
            name,
            kind,
            nullable: false,
            fixed_types: &[],
        }
    }

    fn nullable(mut self) -> ParamSpec {
        self.nullable = true;
        self
    }

    fn fixed(mut self, types: &'static [&'static str]) -> ParamSpec {
        self.fixed_types = types;
        self
    }

    /// Returns `true` if this parameter carries a reference.
    pub fn is_ref(&self) -> bool {
        self.kind == ParamKind::Ref
    }

    /// Returns `true` if this parameter carries an entity ID.
    pub fn is_entity_id(&self) -> bool {
        matches!(self.kind, ParamKind::MethodId | ParamKind::FieldId)
    }
}

/// What a JNI function returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetKind {
    /// `void`
    Void,
    /// A primitive value.
    Prim(PrimType),
    /// A new **local** reference.
    LocalRef,
    /// A new **global** reference.
    GlobalRef,
    /// A new **weak global** reference.
    WeakRef,
    /// A `jmethodID`.
    MethodId,
    /// A `jfieldID`.
    FieldId,
    /// A `jsize` or status `jint`.
    Size,
    /// A pinned-buffer pointer (`Get*Chars`, `Get*Elements`,
    /// `Get*Critical`).
    Pin,
    /// A raw address (`GetDirectBufferAddress`).
    Address,
}

/// The semantic opcode implementing a function; the three syntactic call
/// forms (`…`, `…V`, `…A`) share one opcode under distinct [`FuncId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `GetVersion`
    GetVersion,
    /// `DefineClass`
    DefineClass,
    /// `FindClass`
    FindClass,
    /// `FromReflectedMethod`
    FromReflectedMethod,
    /// `FromReflectedField`
    FromReflectedField,
    /// `ToReflectedMethod`
    ToReflectedMethod,
    /// `ToReflectedField`
    ToReflectedField,
    /// `GetSuperclass`
    GetSuperclass,
    /// `IsAssignableFrom`
    IsAssignableFrom,
    /// `Throw`
    Throw,
    /// `ThrowNew`
    ThrowNew,
    /// `ExceptionOccurred`
    ExceptionOccurred,
    /// `ExceptionDescribe`
    ExceptionDescribe,
    /// `ExceptionClear`
    ExceptionClear,
    /// `ExceptionCheck`
    ExceptionCheck,
    /// `FatalError`
    FatalError,
    /// `PushLocalFrame`
    PushLocalFrame,
    /// `PopLocalFrame`
    PopLocalFrame,
    /// `NewGlobalRef`
    NewGlobalRef,
    /// `DeleteGlobalRef`
    DeleteGlobalRef,
    /// `DeleteLocalRef`
    DeleteLocalRef,
    /// `NewWeakGlobalRef`
    NewWeakGlobalRef,
    /// `DeleteWeakGlobalRef`
    DeleteWeakGlobalRef,
    /// `IsSameObject`
    IsSameObject,
    /// `NewLocalRef`
    NewLocalRef,
    /// `EnsureLocalCapacity`
    EnsureLocalCapacity,
    /// `AllocObject`
    AllocObject,
    /// `NewObject` (all forms)
    NewObject,
    /// `GetObjectClass`
    GetObjectClass,
    /// `IsInstanceOf`
    IsInstanceOf,
    /// `GetObjectRefType`
    GetObjectRefType,
    /// `GetMethodID` / `GetStaticMethodID` (`stat` distinguishes)
    GetMethodId {
        /// Static lookup?
        stat: bool,
    },
    /// `GetFieldID` / `GetStaticFieldID`
    GetFieldId {
        /// Static lookup?
        stat: bool,
    },
    /// All 90+30 `Call…Method…` functions.
    Call {
        /// Dispatch mode.
        mode: CallMode,
        /// Return type (`None` = void, `Some(None)` = object).
        ret: CallRet,
    },
    /// `Get<T>Field` / `GetStatic<T>Field`
    GetField {
        /// Static field?
        stat: bool,
        /// Field value type (`None` = object).
        ty: CallRet,
    },
    /// `Set<T>Field` / `SetStatic<T>Field`
    SetField {
        /// Static field?
        stat: bool,
        /// Field value type.
        ty: CallRet,
    },
    /// `NewString`
    NewString,
    /// `GetStringLength`
    GetStringLength,
    /// `GetStringChars`
    GetStringChars,
    /// `ReleaseStringChars`
    ReleaseStringChars,
    /// `NewStringUTF`
    NewStringUtf,
    /// `GetStringUTFLength`
    GetStringUtfLength,
    /// `GetStringUTFChars`
    GetStringUtfChars,
    /// `ReleaseStringUTFChars`
    ReleaseStringUtfChars,
    /// `GetStringRegion`
    GetStringRegion,
    /// `GetStringUTFRegion`
    GetStringUtfRegion,
    /// `GetStringCritical`
    GetStringCritical,
    /// `ReleaseStringCritical`
    ReleaseStringCritical,
    /// `GetArrayLength`
    GetArrayLength,
    /// `NewObjectArray`
    NewObjectArray,
    /// `GetObjectArrayElement`
    GetObjectArrayElement,
    /// `SetObjectArrayElement`
    SetObjectArrayElement,
    /// `New<T>Array`
    NewPrimArray(PrimType),
    /// `Get<T>ArrayElements`
    GetArrayElements(PrimType),
    /// `Release<T>ArrayElements`
    ReleaseArrayElements(PrimType),
    /// `Get<T>ArrayRegion`
    GetArrayRegion(PrimType),
    /// `Set<T>ArrayRegion`
    SetArrayRegion(PrimType),
    /// `GetPrimitiveArrayCritical`
    GetPrimitiveArrayCritical,
    /// `ReleasePrimitiveArrayCritical`
    ReleasePrimitiveArrayCritical,
    /// `RegisterNatives`
    RegisterNatives,
    /// `UnregisterNatives`
    UnregisterNatives,
    /// `MonitorEnter`
    MonitorEnter,
    /// `MonitorExit`
    MonitorExit,
    /// `GetJavaVM`
    GetJavaVm,
    /// `NewDirectByteBuffer`
    NewDirectByteBuffer,
    /// `GetDirectBufferAddress`
    GetDirectBufferAddress,
    /// `GetDirectBufferCapacity`
    GetDirectBufferCapacity,
}

/// Dispatch mode of a `Call…Method` function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallMode {
    /// `Call<T>Method…` — virtual dispatch on the receiver.
    Virtual,
    /// `CallNonvirtual<T>Method…` — dispatch on the named class.
    Nonvirtual,
    /// `CallStatic<T>Method…`.
    Static,
}

/// Return/field type selector for call and field families: `Some(p)` a
/// primitive, `None` an object reference; void calls use
/// [`Op::Call`]`.ret == CallRet::Void`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallRet {
    /// `void` (calls only).
    Void,
    /// A primitive.
    Prim(PrimType),
    /// An object reference.
    Object,
}

/// Full metadata for one JNI function.
#[derive(Debug, Clone)]
pub struct FuncSpec {
    /// The function's `jni.h` name, e.g. `"CallStaticVoidMethodA"`.
    pub name: String,
    /// Semantic opcode.
    pub op: Op,
    /// Parameters (excluding the implicit `JNIEnv*`).
    pub params: Vec<ParamSpec>,
    /// Return kind.
    pub ret: RetKind,
    /// May legally be called with a Java exception pending (20 functions).
    pub exception_oblivious: bool,
    /// May legally be called inside a JNI critical section (4 functions).
    pub critical_ok: bool,
}

impl FuncSpec {
    /// Indices of reference parameters.
    pub fn ref_params(&self) -> impl Iterator<Item = (usize, &ParamSpec)> {
        self.params.iter().enumerate().filter(|(_, p)| p.is_ref())
    }

    /// Indices of entity-ID parameters.
    pub fn id_params(&self) -> impl Iterator<Item = (usize, &ParamSpec)> {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_entity_id())
    }

    /// Returns `true` if the function returns a new local reference.
    pub fn returns_local_ref(&self) -> bool {
        self.ret == RetKind::LocalRef
    }

    /// Returns `true` if this is one of the 18 functions that may assign
    /// to a final field.
    pub fn writes_field(&self) -> bool {
        matches!(self.op, Op::SetField { .. })
    }
}

/// The registry of all JNI functions.
#[derive(Debug)]
pub struct Registry {
    specs: Vec<FuncSpec>,
    by_name: HashMap<&'static str, FuncId>,
}

impl Registry {
    /// Number of functions (always 229).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Registries are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The spec for a function id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn spec(&self, id: FuncId) -> &FuncSpec {
        &self.specs[id.0 as usize]
    }

    /// Looks up a function id by name.
    pub fn id(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all functions.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &FuncSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (FuncId(i as u16), s))
    }
}

/// The global function registry (built once).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(build)
}

// --- construction helpers --------------------------------------------------

const CLASS: &[&str] = &["java/lang/Class"];
const STRING: &[&str] = &["java/lang/String"];
const THROWABLE: &[&str] = &["java/lang/Throwable"];
const ANY_ARRAY: &[&str] = &["[*"];
const PRIM_ARRAY: &[&str] = &["[prim"];
const OBJ_ARRAY: &[&str] = &["[obj"];
const REFLECTED_METHOD: &[&str] = &["java/lang/reflect/Method", "java/lang/reflect/Constructor"];
const REFLECTED_FIELD: &[&str] = &["java/lang/reflect/Field"];
const DIRECT_BUFFER: &[&str] = &["java/nio/DirectByteBuffer"];

fn p(name: &'static str, kind: ParamKind) -> ParamSpec {
    ParamSpec::new(name, kind)
}

struct Builder {
    specs: Vec<FuncSpec>,
}

impl Builder {
    fn add(
        &mut self,
        name: impl Into<String>,
        op: Op,
        params: Vec<ParamSpec>,
        ret: RetKind,
    ) -> &mut FuncSpec {
        self.specs.push(FuncSpec {
            name: name.into(),
            op,
            params,
            ret,
            exception_oblivious: false,
            critical_ok: false,
        });
        self.specs.last_mut().expect("just pushed")
    }

    fn oblivious(&mut self, name: impl Into<String>, op: Op, params: Vec<ParamSpec>, ret: RetKind) {
        self.add(name, op, params, ret).exception_oblivious = true;
    }
}

fn prim_array_fixed(ty: PrimType) -> &'static [&'static str] {
    // One static descriptor per primitive array type.
    match ty {
        PrimType::Boolean => &["[Z"],
        PrimType::Byte => &["[B"],
        PrimType::Char => &["[C"],
        PrimType::Short => &["[S"],
        PrimType::Int => &["[I"],
        PrimType::Long => &["[J"],
        PrimType::Float => &["[F"],
        PrimType::Double => &["[D"],
    }
}

fn call_ret_kind(ret: CallRet) -> RetKind {
    match ret {
        CallRet::Void => RetKind::Void,
        CallRet::Prim(p) => RetKind::Prim(p),
        CallRet::Object => RetKind::LocalRef,
    }
}

fn call_rets() -> Vec<(&'static str, CallRet)> {
    let mut v = vec![("Object", CallRet::Object)];
    for ty in PrimType::ALL {
        v.push((ty.jni_name(), CallRet::Prim(ty)));
    }
    v.push(("Void", CallRet::Void));
    v
}

fn field_tys() -> Vec<(&'static str, CallRet)> {
    let mut v = vec![("Object", CallRet::Object)];
    for ty in PrimType::ALL {
        v.push((ty.jni_name(), CallRet::Prim(ty)));
    }
    v
}

fn build() -> Registry {
    let mut b = Builder { specs: Vec::new() };

    // --- version, classes, reflection (jni.h order) ---
    b.add(
        "GetVersion",
        Op::GetVersion,
        vec![],
        RetKind::Prim(PrimType::Int),
    );
    b.add(
        "DefineClass",
        Op::DefineClass,
        vec![
            p("name", ParamKind::Name),
            p("loader", ParamKind::Ref).nullable(),
            p("buf", ParamKind::Buffer),
            p("bufLen", ParamKind::Size),
        ],
        RetKind::LocalRef,
    );
    b.add(
        "FindClass",
        Op::FindClass,
        vec![p("name", ParamKind::Name)],
        RetKind::LocalRef,
    );
    b.add(
        "FromReflectedMethod",
        Op::FromReflectedMethod,
        vec![p("method", ParamKind::Ref).fixed(REFLECTED_METHOD)],
        RetKind::MethodId,
    );
    b.add(
        "FromReflectedField",
        Op::FromReflectedField,
        vec![p("field", ParamKind::Ref).fixed(REFLECTED_FIELD)],
        RetKind::FieldId,
    );
    b.add(
        "ToReflectedMethod",
        Op::ToReflectedMethod,
        vec![
            p("cls", ParamKind::Ref).fixed(CLASS),
            p("methodID", ParamKind::MethodId),
            p("isStatic", ParamKind::Prim(PrimType::Boolean)),
        ],
        RetKind::LocalRef,
    );
    b.add(
        "GetSuperclass",
        Op::GetSuperclass,
        vec![p("sub", ParamKind::Ref).fixed(CLASS)],
        RetKind::LocalRef,
    );
    b.add(
        "IsAssignableFrom",
        Op::IsAssignableFrom,
        vec![
            p("sub", ParamKind::Ref).fixed(CLASS),
            p("sup", ParamKind::Ref).fixed(CLASS),
        ],
        RetKind::Prim(PrimType::Boolean),
    );
    b.add(
        "ToReflectedField",
        Op::ToReflectedField,
        vec![
            p("cls", ParamKind::Ref).fixed(CLASS),
            p("fieldID", ParamKind::FieldId),
            p("isStatic", ParamKind::Prim(PrimType::Boolean)),
        ],
        RetKind::LocalRef,
    );

    // --- exceptions ---
    b.add(
        "Throw",
        Op::Throw,
        vec![p("obj", ParamKind::Ref).fixed(THROWABLE)],
        RetKind::Size,
    );
    b.add(
        "ThrowNew",
        Op::ThrowNew,
        vec![
            p("clazz", ParamKind::Ref).fixed(CLASS),
            p("message", ParamKind::Name).nullable(),
        ],
        RetKind::Size,
    );
    b.oblivious(
        "ExceptionOccurred",
        Op::ExceptionOccurred,
        vec![],
        RetKind::LocalRef,
    );
    b.oblivious(
        "ExceptionDescribe",
        Op::ExceptionDescribe,
        vec![],
        RetKind::Void,
    );
    b.oblivious("ExceptionClear", Op::ExceptionClear, vec![], RetKind::Void);
    b.add(
        "FatalError",
        Op::FatalError,
        vec![p("msg", ParamKind::Name)],
        RetKind::Void,
    );

    // --- local frames & references ---
    b.add(
        "PushLocalFrame",
        Op::PushLocalFrame,
        vec![p("capacity", ParamKind::Size)],
        RetKind::Size,
    );
    b.add(
        "PopLocalFrame",
        Op::PopLocalFrame,
        vec![p("result", ParamKind::Ref).nullable()],
        RetKind::LocalRef,
    );
    b.add(
        "NewGlobalRef",
        Op::NewGlobalRef,
        vec![p("lobj", ParamKind::Ref).nullable()],
        RetKind::GlobalRef,
    );
    b.oblivious(
        "DeleteGlobalRef",
        Op::DeleteGlobalRef,
        vec![p("gref", ParamKind::Ref)],
        RetKind::Void,
    );
    b.oblivious(
        "DeleteLocalRef",
        Op::DeleteLocalRef,
        vec![p("lref", ParamKind::Ref)],
        RetKind::Void,
    );
    b.add(
        "IsSameObject",
        Op::IsSameObject,
        vec![
            p("obj1", ParamKind::Ref).nullable(),
            p("obj2", ParamKind::Ref).nullable(),
        ],
        RetKind::Prim(PrimType::Boolean),
    );
    b.add(
        "NewLocalRef",
        Op::NewLocalRef,
        vec![p("ref", ParamKind::Ref).nullable()],
        RetKind::LocalRef,
    );
    b.add(
        "EnsureLocalCapacity",
        Op::EnsureLocalCapacity,
        vec![p("capacity", ParamKind::Size)],
        RetKind::Size,
    );

    // --- object creation & type queries ---
    b.add(
        "AllocObject",
        Op::AllocObject,
        vec![p("clazz", ParamKind::Ref).fixed(CLASS)],
        RetKind::LocalRef,
    );
    for suffix in ["", "V", "A"] {
        b.add(
            format!("NewObject{suffix}"),
            Op::NewObject,
            vec![
                p("clazz", ParamKind::Ref).fixed(CLASS),
                p("methodID", ParamKind::MethodId),
                p("args", ParamKind::Args).nullable(),
            ],
            RetKind::LocalRef,
        );
    }
    b.add(
        "GetObjectClass",
        Op::GetObjectClass,
        vec![p("obj", ParamKind::Ref)],
        RetKind::LocalRef,
    );
    b.add(
        "IsInstanceOf",
        Op::IsInstanceOf,
        vec![
            p("obj", ParamKind::Ref).nullable(),
            p("clazz", ParamKind::Ref).fixed(CLASS),
        ],
        RetKind::Prim(PrimType::Boolean),
    );

    // --- method IDs and calls ---
    b.add(
        "GetMethodID",
        Op::GetMethodId { stat: false },
        vec![
            p("clazz", ParamKind::Ref).fixed(CLASS),
            p("name", ParamKind::Name),
            p("sig", ParamKind::Name),
        ],
        RetKind::MethodId,
    );
    for (tn, ret) in call_rets() {
        for suffix in ["", "V", "A"] {
            b.add(
                format!("Call{tn}Method{suffix}"),
                Op::Call {
                    mode: CallMode::Virtual,
                    ret,
                },
                vec![
                    p("obj", ParamKind::Ref),
                    p("methodID", ParamKind::MethodId),
                    p("args", ParamKind::Args).nullable(),
                ],
                call_ret_kind(ret),
            );
        }
    }
    for (tn, ret) in call_rets() {
        for suffix in ["", "V", "A"] {
            b.add(
                format!("CallNonvirtual{tn}Method{suffix}"),
                Op::Call {
                    mode: CallMode::Nonvirtual,
                    ret,
                },
                vec![
                    p("obj", ParamKind::Ref),
                    p("clazz", ParamKind::Ref).fixed(CLASS),
                    p("methodID", ParamKind::MethodId),
                    p("args", ParamKind::Args).nullable(),
                ],
                call_ret_kind(ret),
            );
        }
    }

    // --- instance fields ---
    b.add(
        "GetFieldID",
        Op::GetFieldId { stat: false },
        vec![
            p("clazz", ParamKind::Ref).fixed(CLASS),
            p("name", ParamKind::Name),
            p("sig", ParamKind::Name),
        ],
        RetKind::FieldId,
    );
    for (tn, ty) in field_tys() {
        b.add(
            format!("Get{tn}Field"),
            Op::GetField { stat: false, ty },
            vec![p("obj", ParamKind::Ref), p("fieldID", ParamKind::FieldId)],
            call_ret_kind(ty),
        );
    }
    for (tn, ty) in field_tys() {
        let value_kind = match ty {
            CallRet::Prim(pt) => ParamKind::Prim(pt),
            _ => ParamKind::Ref,
        };
        let value = if matches!(ty, CallRet::Object) {
            p("value", value_kind).nullable()
        } else {
            p("value", value_kind)
        };
        b.add(
            format!("Set{tn}Field"),
            Op::SetField { stat: false, ty },
            vec![
                p("obj", ParamKind::Ref),
                p("fieldID", ParamKind::FieldId),
                value,
            ],
            RetKind::Void,
        );
    }

    // --- static methods & fields ---
    b.add(
        "GetStaticMethodID",
        Op::GetMethodId { stat: true },
        vec![
            p("clazz", ParamKind::Ref).fixed(CLASS),
            p("name", ParamKind::Name),
            p("sig", ParamKind::Name),
        ],
        RetKind::MethodId,
    );
    for (tn, ret) in call_rets() {
        for suffix in ["", "V", "A"] {
            b.add(
                format!("CallStatic{tn}Method{suffix}"),
                Op::Call {
                    mode: CallMode::Static,
                    ret,
                },
                vec![
                    p("clazz", ParamKind::Ref).fixed(CLASS),
                    p("methodID", ParamKind::MethodId),
                    p("args", ParamKind::Args).nullable(),
                ],
                call_ret_kind(ret),
            );
        }
    }
    b.add(
        "GetStaticFieldID",
        Op::GetFieldId { stat: true },
        vec![
            p("clazz", ParamKind::Ref).fixed(CLASS),
            p("name", ParamKind::Name),
            p("sig", ParamKind::Name),
        ],
        RetKind::FieldId,
    );
    for (tn, ty) in field_tys() {
        b.add(
            format!("GetStatic{tn}Field"),
            Op::GetField { stat: true, ty },
            vec![
                p("clazz", ParamKind::Ref).fixed(CLASS),
                p("fieldID", ParamKind::FieldId),
            ],
            call_ret_kind(ty),
        );
    }
    for (tn, ty) in field_tys() {
        let value_kind = match ty {
            CallRet::Prim(pt) => ParamKind::Prim(pt),
            _ => ParamKind::Ref,
        };
        let value = if matches!(ty, CallRet::Object) {
            p("value", value_kind).nullable()
        } else {
            p("value", value_kind)
        };
        b.add(
            format!("SetStatic{tn}Field"),
            Op::SetField { stat: true, ty },
            vec![
                p("clazz", ParamKind::Ref).fixed(CLASS),
                p("fieldID", ParamKind::FieldId),
                value,
            ],
            RetKind::Void,
        );
    }

    // --- strings ---
    b.add(
        "NewString",
        Op::NewString,
        vec![
            p("unicodeChars", ParamKind::Buffer),
            p("len", ParamKind::Size),
        ],
        RetKind::LocalRef,
    );
    b.add(
        "GetStringLength",
        Op::GetStringLength,
        vec![p("str", ParamKind::Ref).fixed(STRING)],
        RetKind::Size,
    );
    b.add(
        "GetStringChars",
        Op::GetStringChars,
        vec![
            p("str", ParamKind::Ref).fixed(STRING),
            p("isCopy", ParamKind::IsCopyOut).nullable(),
        ],
        RetKind::Pin,
    );
    b.oblivious(
        "ReleaseStringChars",
        Op::ReleaseStringChars,
        vec![
            p("str", ParamKind::Ref).fixed(STRING),
            p("chars", ParamKind::Buffer),
        ],
        RetKind::Void,
    );
    b.add(
        "NewStringUTF",
        Op::NewStringUtf,
        vec![p("utf", ParamKind::Name)],
        RetKind::LocalRef,
    );
    b.add(
        "GetStringUTFLength",
        Op::GetStringUtfLength,
        vec![p("str", ParamKind::Ref).fixed(STRING)],
        RetKind::Size,
    );
    b.add(
        "GetStringUTFChars",
        Op::GetStringUtfChars,
        vec![
            p("str", ParamKind::Ref).fixed(STRING),
            p("isCopy", ParamKind::IsCopyOut).nullable(),
        ],
        RetKind::Pin,
    );
    b.oblivious(
        "ReleaseStringUTFChars",
        Op::ReleaseStringUtfChars,
        vec![
            p("str", ParamKind::Ref).fixed(STRING),
            p("chars", ParamKind::Buffer),
        ],
        RetKind::Void,
    );

    // --- arrays ---
    b.add(
        "GetArrayLength",
        Op::GetArrayLength,
        vec![p("array", ParamKind::Ref).fixed(ANY_ARRAY)],
        RetKind::Size,
    );
    b.add(
        "NewObjectArray",
        Op::NewObjectArray,
        vec![
            p("len", ParamKind::Size),
            p("clazz", ParamKind::Ref).fixed(CLASS),
            p("init", ParamKind::Ref).nullable(),
        ],
        RetKind::LocalRef,
    );
    b.add(
        "GetObjectArrayElement",
        Op::GetObjectArrayElement,
        vec![
            p("array", ParamKind::Ref).fixed(OBJ_ARRAY),
            p("index", ParamKind::Size),
        ],
        RetKind::LocalRef,
    );
    b.add(
        "SetObjectArrayElement",
        Op::SetObjectArrayElement,
        vec![
            p("array", ParamKind::Ref).fixed(OBJ_ARRAY),
            p("index", ParamKind::Size),
            p("val", ParamKind::Ref).nullable(),
        ],
        RetKind::Void,
    );
    for ty in PrimType::ALL {
        b.add(
            format!("New{}Array", ty.jni_name()),
            Op::NewPrimArray(ty),
            vec![p("len", ParamKind::Size)],
            RetKind::LocalRef,
        );
    }
    for ty in PrimType::ALL {
        b.add(
            format!("Get{}ArrayElements", ty.jni_name()),
            Op::GetArrayElements(ty),
            vec![
                p("array", ParamKind::Ref).fixed(prim_array_fixed(ty)),
                p("isCopy", ParamKind::IsCopyOut).nullable(),
            ],
            RetKind::Pin,
        );
    }
    for ty in PrimType::ALL {
        b.oblivious(
            format!("Release{}ArrayElements", ty.jni_name()),
            Op::ReleaseArrayElements(ty),
            vec![
                p("array", ParamKind::Ref).fixed(prim_array_fixed(ty)),
                p("elems", ParamKind::Buffer),
                p("mode", ParamKind::Mode),
            ],
            RetKind::Void,
        );
    }
    for ty in PrimType::ALL {
        b.add(
            format!("Get{}ArrayRegion", ty.jni_name()),
            Op::GetArrayRegion(ty),
            vec![
                p("array", ParamKind::Ref).fixed(prim_array_fixed(ty)),
                p("start", ParamKind::Size),
                p("len", ParamKind::Size),
                p("buf", ParamKind::Buffer),
            ],
            RetKind::Void,
        );
    }
    for ty in PrimType::ALL {
        b.add(
            format!("Set{}ArrayRegion", ty.jni_name()),
            Op::SetArrayRegion(ty),
            vec![
                p("array", ParamKind::Ref).fixed(prim_array_fixed(ty)),
                p("start", ParamKind::Size),
                p("len", ParamKind::Size),
                p("buf", ParamKind::Buffer),
            ],
            RetKind::Void,
        );
    }

    // --- natives, monitors, VM ---
    b.add(
        "RegisterNatives",
        Op::RegisterNatives,
        vec![
            p("clazz", ParamKind::Ref).fixed(CLASS),
            p("methods", ParamKind::Buffer),
            p("nMethods", ParamKind::Size),
        ],
        RetKind::Size,
    );
    b.add(
        "UnregisterNatives",
        Op::UnregisterNatives,
        vec![p("clazz", ParamKind::Ref).fixed(CLASS)],
        RetKind::Size,
    );
    b.add(
        "MonitorEnter",
        Op::MonitorEnter,
        vec![p("obj", ParamKind::Ref)],
        RetKind::Size,
    );
    b.oblivious(
        "MonitorExit",
        Op::MonitorExit,
        vec![p("obj", ParamKind::Ref)],
        RetKind::Size,
    );
    b.add(
        "GetJavaVM",
        Op::GetJavaVm,
        vec![p("vm", ParamKind::VmOut)],
        RetKind::Size,
    );

    // --- string/array regions & criticals (JNI 1.2+) ---
    b.add(
        "GetStringRegion",
        Op::GetStringRegion,
        vec![
            p("str", ParamKind::Ref).fixed(STRING),
            p("start", ParamKind::Size),
            p("len", ParamKind::Size),
            p("buf", ParamKind::Buffer),
        ],
        RetKind::Void,
    );
    b.add(
        "GetStringUTFRegion",
        Op::GetStringUtfRegion,
        vec![
            p("str", ParamKind::Ref).fixed(STRING),
            p("start", ParamKind::Size),
            p("len", ParamKind::Size),
            p("buf", ParamKind::Buffer),
        ],
        RetKind::Void,
    );
    {
        let s = b.add(
            "GetPrimitiveArrayCritical",
            Op::GetPrimitiveArrayCritical,
            vec![
                p("array", ParamKind::Ref).fixed(PRIM_ARRAY),
                p("isCopy", ParamKind::IsCopyOut).nullable(),
            ],
            RetKind::Pin,
        );
        s.critical_ok = true;
    }
    {
        let s = b.add(
            "ReleasePrimitiveArrayCritical",
            Op::ReleasePrimitiveArrayCritical,
            vec![
                p("array", ParamKind::Ref).fixed(PRIM_ARRAY),
                p("carray", ParamKind::Buffer),
                p("mode", ParamKind::Mode),
            ],
            RetKind::Void,
        );
        s.critical_ok = true;
        s.exception_oblivious = true;
    }
    {
        let s = b.add(
            "GetStringCritical",
            Op::GetStringCritical,
            vec![
                p("string", ParamKind::Ref).fixed(STRING),
                p("isCopy", ParamKind::IsCopyOut).nullable(),
            ],
            RetKind::Pin,
        );
        s.critical_ok = true;
    }
    {
        // Note: Jinn deliberately does NOT check the jstring type here —
        // doing so would require IsAssignableFrom inside a critical
        // section (paper Section 5.1) — so no fixed type is declared.
        let s = b.add(
            "ReleaseStringCritical",
            Op::ReleaseStringCritical,
            vec![p("string", ParamKind::Ref), p("carray", ParamKind::Buffer)],
            RetKind::Void,
        );
        s.critical_ok = true;
        s.exception_oblivious = true;
    }

    // --- weak globals, exception check, direct buffers, ref type ---
    b.add(
        "NewWeakGlobalRef",
        Op::NewWeakGlobalRef,
        vec![p("obj", ParamKind::Ref).nullable()],
        RetKind::WeakRef,
    );
    b.oblivious(
        "DeleteWeakGlobalRef",
        Op::DeleteWeakGlobalRef,
        vec![p("obj", ParamKind::Ref)],
        RetKind::Void,
    );
    b.oblivious(
        "ExceptionCheck",
        Op::ExceptionCheck,
        vec![],
        RetKind::Prim(PrimType::Boolean),
    );
    b.add(
        "NewDirectByteBuffer",
        Op::NewDirectByteBuffer,
        vec![
            p("address", ParamKind::Prim(PrimType::Long)),
            p("capacity", ParamKind::Prim(PrimType::Long)),
        ],
        RetKind::LocalRef,
    );
    b.add(
        "GetDirectBufferAddress",
        Op::GetDirectBufferAddress,
        vec![p("buf", ParamKind::Ref).fixed(DIRECT_BUFFER)],
        RetKind::Address,
    );
    b.add(
        "GetDirectBufferCapacity",
        Op::GetDirectBufferCapacity,
        vec![p("buf", ParamKind::Ref).fixed(DIRECT_BUFFER)],
        RetKind::Prim(PrimType::Long),
    );
    b.add(
        "GetObjectRefType",
        Op::GetObjectRefType,
        vec![p("obj", ParamKind::Ref).nullable()],
        RetKind::Prim(PrimType::Int),
    );

    // Freeze: build the name index. Names are leaked to get &'static str
    // keys; the registry itself is 'static so this is a one-time cost.
    let mut by_name = HashMap::new();
    for (i, s) in b.specs.iter().enumerate() {
        let name: &'static str = Box::leak(s.name.clone().into_boxed_str());
        let prev = by_name.insert(name, FuncId(i as u16));
        assert!(prev.is_none(), "duplicate JNI function `{}`", s.name);
    }
    Registry {
        specs: b.specs,
        by_name,
    }
}

/// Per-class constraint tallies computed from the registry — the data
/// behind the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintCounts {
    /// JNIEnv* state: checked at every function.
    pub jnienv_state: usize,
    /// Exception state: exception-sensitive functions.
    pub exception_state: usize,
    /// Critical-section state: critical-section-sensitive functions.
    pub critical_state: usize,
    /// Fixed typing: parameters with a fixed Java type.
    pub fixed_typing: usize,
    /// Entity-specific typing: functions taking a method/field ID.
    pub entity_typing: usize,
    /// Access control: functions that may write a final field.
    pub access_control: usize,
    /// Nullness: non-nullable parameters.
    pub nullness: usize,
    /// Pinned-or-copied: acquire sites for pinned buffers.
    pub pinned: usize,
    /// Monitor: leak constraint (1).
    pub monitor: usize,
    /// Global/weak reference: acquire/release/use sites.
    pub global_ref: usize,
    /// Local reference: acquire/release/use sites.
    pub local_ref: usize,
}

impl Registry {
    /// Computes the Table 2 constraint counts from the metadata.
    pub fn constraint_counts(&self) -> ConstraintCounts {
        let total = self.len();
        let exception_state = self.specs.iter().filter(|s| !s.exception_oblivious).count();
        let critical_state = self.specs.iter().filter(|s| !s.critical_ok).count();
        let fixed_typing = self
            .specs
            .iter()
            .flat_map(|s| s.params.iter())
            .filter(|p| !p.fixed_types.is_empty())
            .count();
        let entity_typing = self
            .specs
            .iter()
            .filter(|s| s.id_params().next().is_some())
            .count();
        let access_control = self.specs.iter().filter(|s| s.writes_field()).count();
        let nullness = self
            .specs
            .iter()
            .flat_map(|s| s.params.iter())
            .filter(|p| {
                !p.nullable
                    && !matches!(
                        p.kind,
                        ParamKind::Prim(_) | ParamKind::Size | ParamKind::Mode
                    )
            })
            .count();
        let pinned = self.specs.iter().filter(|s| s.ret == RetKind::Pin).count();
        let global_use = self
            .specs
            .iter()
            .filter(|s| s.ref_params().next().is_some())
            .count();
        let global_acq_rel = [
            "NewGlobalRef",
            "NewWeakGlobalRef",
            "DeleteGlobalRef",
            "DeleteWeakGlobalRef",
        ]
        .len();
        let local_acquire = self.specs.iter().filter(|s| s.returns_local_ref()).count();
        let local_rel = [
            "DeleteLocalRef",
            "PopLocalFrame",
            "PushLocalFrame",
            "EnsureLocalCapacity",
        ]
        .len();
        ConstraintCounts {
            jnienv_state: total,
            exception_state,
            critical_state,
            fixed_typing,
            entity_typing,
            access_control,
            nullness,
            pinned,
            monitor: 1,
            global_ref: global_use + global_acq_rel,
            local_ref: local_acquire + local_rel + global_use,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_229_functions() {
        assert_eq!(
            registry().len(),
            229,
            "the JNI defines 229 JNIEnv functions"
        );
    }

    #[test]
    fn exactly_20_exception_oblivious() {
        let n = registry()
            .iter()
            .filter(|(_, s)| s.exception_oblivious)
            .count();
        assert_eq!(n, 20, "paper: 209 exception-sensitive of 229");
        assert_eq!(registry().constraint_counts().exception_state, 209);
    }

    #[test]
    fn exactly_4_critical_ok() {
        let n = registry().iter().filter(|(_, s)| s.critical_ok).count();
        assert_eq!(n, 4, "paper: 225 critical-sensitive of 229");
        assert_eq!(registry().constraint_counts().critical_state, 225);
    }

    #[test]
    fn entity_typing_is_131() {
        // Call families (90 + 30) + field families (36) + NewObject (3) +
        // ToReflectedMethod/Field (2) = 131, matching Table 2 exactly.
        assert_eq!(registry().constraint_counts().entity_typing, 131);
    }

    #[test]
    fn access_control_is_18() {
        assert_eq!(registry().constraint_counts().access_control, 18);
    }

    #[test]
    fn pinned_acquire_sites_are_12() {
        assert_eq!(registry().constraint_counts().pinned, 12);
    }

    #[test]
    fn lookups_by_name() {
        let id = FuncId::of("CallStaticVoidMethodA");
        assert_eq!(id.name(), "CallStaticVoidMethodA");
        let spec = id.spec();
        assert!(matches!(
            spec.op,
            Op::Call {
                mode: CallMode::Static,
                ret: CallRet::Void
            }
        ));
        assert_eq!(spec.params.len(), 3);
        assert!(registry().id("NoSuchFunction").is_none());
    }

    #[test]
    #[should_panic(expected = "no JNI function")]
    fn unknown_name_panics() {
        let _ = FuncId::of("Bogus");
    }

    #[test]
    fn call_families_have_three_forms() {
        for base in [
            "CallIntMethod",
            "CallNonvirtualIntMethod",
            "CallStaticIntMethod",
        ] {
            for suffix in ["", "V", "A"] {
                assert!(
                    registry().id(&format!("{base}{suffix}")).is_some(),
                    "missing {base}{suffix}"
                );
            }
        }
    }

    #[test]
    fn release_functions_are_oblivious() {
        for name in [
            "ReleaseStringChars",
            "ReleaseStringUTFChars",
            "ReleaseStringCritical",
            "ReleasePrimitiveArrayCritical",
            "ReleaseIntArrayElements",
            "DeleteLocalRef",
            "DeleteGlobalRef",
            "DeleteWeakGlobalRef",
            "MonitorExit",
            "ExceptionClear",
            "ExceptionCheck",
            "ExceptionOccurred",
            "ExceptionDescribe",
        ] {
            assert!(
                FuncId::of(name).spec().exception_oblivious,
                "{name} must be oblivious"
            );
        }
        assert!(!FuncId::of("GetStringChars").spec().exception_oblivious);
    }

    #[test]
    fn fixed_types_present_on_class_taking_functions() {
        let spec = FuncId::of("CallStaticVoidMethod").spec();
        assert_eq!(spec.params[0].fixed_types, CLASS);
        let spec = FuncId::of("GetIntArrayElements").spec();
        assert_eq!(spec.params[0].fixed_types, &["[I"]);
        // Jinn cannot type-check ReleaseStringCritical (Section 6.5).
        assert!(FuncId::of("ReleaseStringCritical").spec().params[0]
            .fixed_types
            .is_empty());
    }

    #[test]
    fn nullable_flags() {
        let spec = FuncId::of("NewObjectArray").spec();
        assert!(!spec.params[1].nullable, "clazz required");
        assert!(spec.params[2].nullable, "initial element may be null");
        let spec = FuncId::of("ThrowNew").spec();
        assert!(spec.params[1].nullable, "message may be null");
    }

    #[test]
    fn counts_are_in_paper_ballpark() {
        let c = registry().constraint_counts();
        assert_eq!(c.jnienv_state, 229);
        // Fixed typing: paper reports 157; our scan of the same surface
        // yields a close count (the paper's exact tally includes a few
        // judgment calls Liang's book leaves open).
        assert!(
            (140..=170).contains(&c.fixed_typing),
            "fixed typing {} out of range",
            c.fixed_typing
        );
        assert!(
            (380..=460).contains(&c.nullness),
            "nullness {} out of range",
            c.nullness
        );
        assert!(
            (200..=290).contains(&c.global_ref),
            "global {}",
            c.global_ref
        );
        assert!((230..=320).contains(&c.local_ref), "local {}", c.local_ref);
        assert_eq!(c.monitor, 1);
    }
}
