//! Interposition: the seam between the raw JNI and dynamic checkers.
//!
//! In the paper, Jinn injects itself between user code and the JVM through
//! the JVMTI: "To the JVM, Jinn looks like normal user code, whereas to
//! user code Jinn is invisible." Here the seam is the [`Interpose`] trait:
//! the [`crate::JniEnv`] driver fires `pre_jni`/`post_jni` hooks around
//! every JNI function and `native_enter`/`native_exit` hooks around every
//! native method — the four language-transition directions of the paper's
//! Figure 2 — plus a `vm_death` hook for the end-of-program leak sweeps.
//!
//! The [`VendorModel`] trait is the *other* half of the simulation: it
//! decides what a production JVM's **unchecked** semantics do when native
//! code violates a constraint (crash, silently keep running, NPE, …),
//! reproducing the "Default Behavior" columns of Table 1.

use std::fmt;

use minijvm::{
    EnvToken, FieldId, JRef, JValue, Jvm, JvmDeath, MethodId, PinError, PinId, RefFault, ThreadId,
};

use crate::registry::{FuncId, FuncSpec};

/// One argument of a JNI call, as seen by interposition hooks. The slice
/// of `JniArg`s is positionally aligned with the function's
/// [`FuncSpec::params`].
#[derive(Debug, Clone, PartialEq)]
pub enum JniArg {
    /// A reference.
    Ref(JRef),
    /// A method ID.
    Method(MethodId),
    /// A field ID.
    Field(FieldId),
    /// A primitive value.
    Val(JValue),
    /// A C string (class name, method name, descriptor, message).
    Name(String),
    /// A pinned-buffer pointer.
    Buf(PinId),
    /// A `jvalue*` argument vector.
    Args(Vec<JValue>),
    /// A `jsize`, capacity, index, or mode integer.
    Size(i64),
    /// UTF-16 data passed in (`NewString`, `Set…Region` for char data).
    Chars(Vec<u16>),
    /// Raw byte data passed in (`DefineClass` buffers).
    Bytes(Vec<u8>),
    /// Primitive array data passed in (`Set<T>ArrayRegion`).
    Prims(minijvm::PrimArray),
    /// An out-parameter or other argument with no checkable content.
    Opaque,
}

impl JniArg {
    /// The reference, if this argument carries one.
    pub fn as_ref(&self) -> Option<JRef> {
        match self {
            JniArg::Ref(r) => Some(*r),
            _ => None,
        }
    }
}

/// Result of a JNI call, as seen by `post_jni` hooks.
#[derive(Debug, Clone, PartialEq)]
pub enum JniRet {
    /// `void`
    Void,
    /// A primitive value.
    Val(JValue),
    /// A reference (local, global or weak per the spec's `ret` kind).
    Ref(JRef),
    /// A method ID.
    Method(MethodId),
    /// A field ID.
    Field(FieldId),
    /// A pinned buffer.
    Buf(PinId),
    /// A `jsize`/status integer.
    Size(i64),
    /// UTF-16 data copied out (`GetStringRegion`).
    Chars(Vec<u16>),
    /// Modified-UTF-8 data copied out (`GetStringUTFRegion`).
    Bytes(Vec<u8>),
    /// Primitive array data copied out (`Get<T>ArrayRegion`).
    Prims(minijvm::PrimArray),
}

impl JniRet {
    /// The reference, if the call returned one.
    pub fn as_ref(&self) -> Option<JRef> {
        match self {
            JniRet::Ref(r) => Some(*r),
            _ => None,
        }
    }
}

/// Context of one JNI call, passed to the pre/post hooks.
#[derive(Debug)]
pub struct CallCx<'a> {
    /// Which function.
    pub func: FuncId,
    /// The thread actually executing.
    pub thread: ThreadId,
    /// The `JNIEnv*` value the native code presented (compare against the
    /// thread's own token for the JNIEnv* state constraint).
    pub presented_env: EnvToken,
    /// Arguments, aligned with the spec's parameter list.
    pub args: &'a [JniArg],
    /// Java-style calling context, **outermost frame first** (the raw
    /// per-thread stack; reverse it for Figure 9 style innermost-first
    /// reports — checkers do so only on the rare violation path).
    pub stack: &'a [String],
}

impl CallCx<'_> {
    /// The function's spec.
    pub fn spec(&self) -> &'static FuncSpec {
        self.func.spec()
    }
}

/// A detected FFI constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the state machine that detected it (e.g.
    /// `"local-reference"`).
    pub machine: &'static str,
    /// The error state entered (e.g. `"Error:Dangling"`).
    pub error_state: &'static str,
    /// The JNI function (or native method) at which it was detected.
    pub function: String,
    /// Human-readable diagnosis.
    pub message: String,
    /// Java-style backtrace lines, innermost first (Figure 9 output).
    pub backtrace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {} in {}",
            self.machine, self.error_state, self.message, self.function
        )
    }
}

/// How a checker responds to a violation it detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportAction {
    /// Print a diagnosis and keep running (HotSpot `-Xcheck:jni` style).
    Warn,
    /// Print a diagnosis and abort the VM (J9 `-Xcheck:jni` style).
    AbortVm,
    /// Throw a `JNIAssertionFailure` exception at the point of failure
    /// (Jinn's behaviour).
    ThrowException,
}

/// A violation plus the checker's chosen response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// What was detected.
    pub violation: Violation,
    /// How to respond.
    pub action: ReportAction,
}

impl Report {
    /// Convenience constructor.
    pub fn new(violation: Violation, action: ReportAction) -> Report {
        Report { violation, action }
    }

    /// A checker-internal misuse report: the checker itself did something
    /// wrong (e.g. asked a state machine for a transition name that does
    /// not exist, surfaced by `jinn_fsm::StateStore::try_apply_named`).
    ///
    /// This is the deliberate sibling of the `guard_hook` panic path —
    /// same `checker-internal` machine labelling, but produced by the
    /// checker converting an error value instead of by unwinding. Like a
    /// guarded panic it aborts the VM: a misconfigured checker cannot be
    /// trusted to keep checking.
    pub fn checker_internal(site: &str, message: impl fmt::Display) -> Report {
        Report {
            violation: Violation {
                machine: "checker-internal",
                error_state: "Error:Misuse",
                function: site.to_string(),
                message: message.to_string(),
                backtrace: Vec::new(),
            },
            action: ReportAction::AbortVm,
        }
    }
}

/// A dynamic checker interposed on language transitions.
///
/// Implementations must be *pure observers* of the VM (they receive `&Jvm`)
/// but may keep arbitrary internal state — the state machine encodings.
pub trait Interpose {
    /// Checker name (for logs).
    fn name(&self) -> &str;

    /// `Call:C→Java` — fired before a JNI function executes. Returning a
    /// report with [`ReportAction::ThrowException`] or
    /// [`ReportAction::AbortVm`] prevents the function from running.
    fn pre_jni(&mut self, jvm: &Jvm, cx: &CallCx<'_>) -> Vec<Report> {
        let _ = (jvm, cx);
        Vec::new()
    }

    /// `Return:Java→C` — fired after a JNI function returns.
    fn post_jni(&mut self, jvm: &Jvm, cx: &CallCx<'_>, ret: Option<&JniRet>) -> Vec<Report> {
        let _ = (jvm, cx, ret);
        Vec::new()
    }

    /// `Call:Java→C` — fired when managed code enters a native method.
    /// `arg_refs` are the reference arguments as local references in the
    /// callee's fresh frame (the Acquire entities of Figure 3).
    fn native_enter(
        &mut self,
        jvm: &Jvm,
        thread: ThreadId,
        method: MethodId,
        arg_refs: &[JRef],
        stack: &[String],
    ) -> Vec<Report> {
        let _ = (jvm, thread, method, arg_refs, stack);
        Vec::new()
    }

    /// `Return:C→Java` — fired when a native method returns (after which
    /// its local frame pops). `returned_ref` is the reference the native
    /// method is returning to Java, if any (a Use transition).
    fn native_exit(
        &mut self,
        jvm: &Jvm,
        thread: ThreadId,
        method: MethodId,
        returned_ref: Option<JRef>,
        stack: &[String],
    ) -> Vec<Report> {
        let _ = (jvm, thread, method, returned_ref, stack);
        Vec::new()
    }

    /// VM termination: run the resource leak sweeps.
    fn vm_death(&mut self, jvm: &Jvm) -> Vec<Report> {
        let _ = jvm;
        Vec::new()
    }
}

/// What a production JVM's unchecked implementation does when native code
/// violates a constraint — the "undefined behaviour oracle".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UbOutcome {
    /// Keep running; the operation is skipped or yields a garbage-but-
    /// harmless default ("running" in Table 1).
    Proceed,
    /// The process crashes without diagnosis.
    Crash(&'static str),
    /// A `NullPointerException` is raised.
    Npe,
    /// The process hangs ("deadlock" in Table 1).
    Deadlock(&'static str),
}

/// The situations in which JNI behaviour is undefined and a vendor model
/// must pick an outcome.
#[derive(Debug, Clone)]
pub enum UbSituation<'a> {
    /// A reference argument failed to resolve.
    RefFault {
        /// The fault.
        fault: RefFault,
        /// The function being executed.
        func: &'a FuncSpec,
    },
    /// A pinned-buffer release failed (double free / kind mismatch).
    PinFault {
        /// The pin error.
        error: PinError,
        /// The function being executed.
        func: &'a FuncSpec,
    },
    /// A forged or foreign method/field ID was passed.
    BadEntityId {
        /// The function being executed.
        func: &'a FuncSpec,
    },
    /// A reference of the wrong Java type was passed (e.g. a plain object
    /// where a `jclass` is required — pitfall 3).
    TypeConfusion {
        /// The function being executed.
        func: &'a FuncSpec,
        /// What was required.
        expected: &'static str,
    },
    /// An exception-sensitive function was called with an exception
    /// pending (pitfall 1). Production JVMs just proceed.
    ExceptionPending {
        /// The function being executed.
        func: &'a FuncSpec,
    },
    /// A critical-section-sensitive function was called inside a critical
    /// region (pitfall 16).
    CriticalViolation {
        /// The function being executed.
        func: &'a FuncSpec,
    },
    /// The presented `JNIEnv*` belongs to a different thread (pitfall 14).
    EnvMismatch {
        /// The function being executed.
        func: &'a FuncSpec,
    },
    /// A write to a final field (pitfall 9).
    FinalFieldWrite {
        /// The function being executed.
        func: &'a FuncSpec,
    },
    /// A null reference where a non-null one is required (pitfall 2).
    NullArgument {
        /// The function being executed.
        func: &'a FuncSpec,
        /// The parameter name.
        param: &'static str,
    },
}

/// A model of a production JVM's *default* (unchecked) behaviour under
/// constraint violations.
pub trait VendorModel: fmt::Debug {
    /// Vendor name, e.g. `"HotSpot"`.
    fn name(&self) -> &str;

    /// Decides the outcome of an undefined-behaviour situation.
    fn on_violation(&self, situation: &UbSituation<'_>) -> UbOutcome;
}

/// A permissive, spec-faithful vendor: proceeds wherever the JNI
/// specification says behaviour is undefined, except for unresolvable
/// references where it crashes (you cannot compute with a freed slot).
///
/// The calibrated HotSpot and J9 models live in the `jinn-vendors` crate.
#[derive(Debug, Clone, Default)]
pub struct PermissiveVendor;

impl VendorModel for PermissiveVendor {
    fn name(&self) -> &str {
        "permissive"
    }

    fn on_violation(&self, situation: &UbSituation<'_>) -> UbOutcome {
        match situation {
            UbSituation::RefFault { fault, .. } => match fault {
                RefFault::WrongThread { .. } => UbOutcome::Proceed,
                RefFault::Null => UbOutcome::Npe,
                _ => UbOutcome::Crash("use of invalid reference"),
            },
            UbSituation::PinFault { .. } => UbOutcome::Proceed,
            UbSituation::BadEntityId { .. } => UbOutcome::Crash("invalid method/field ID"),
            UbSituation::TypeConfusion { .. } => UbOutcome::Crash("reference type confusion"),
            UbSituation::ExceptionPending { .. } => UbOutcome::Proceed,
            UbSituation::CriticalViolation { .. } => {
                UbOutcome::Deadlock("JNI call in critical section")
            }
            UbSituation::EnvMismatch { .. } => UbOutcome::Proceed,
            UbSituation::FinalFieldWrite { .. } => UbOutcome::Proceed,
            UbSituation::NullArgument { .. } => UbOutcome::Npe,
        }
    }
}

/// Turns a [`UbOutcome::Crash`]/[`UbOutcome::Deadlock`] into a
/// [`JvmDeath`]; `None` for survivable outcomes.
pub fn death_of(outcome: &UbOutcome, vendor: &str, func: &str) -> Option<JvmDeath> {
    match outcome {
        UbOutcome::Crash(msg) => Some(JvmDeath::crash(format!("{vendor}: {msg} in {func}"))),
        UbOutcome::Deadlock(msg) => Some(JvmDeath::deadlock(format!("{vendor}: {msg} in {func}"))),
        UbOutcome::Proceed | UbOutcome::Npe => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minijvm::RefKind;

    #[test]
    fn permissive_vendor_decisions() {
        let v = PermissiveVendor;
        let func = FuncId::of("CallVoidMethodA").spec();
        assert_eq!(
            v.on_violation(&UbSituation::ExceptionPending { func }),
            UbOutcome::Proceed
        );
        assert!(matches!(
            v.on_violation(&UbSituation::RefFault {
                fault: RefFault::Stale {
                    kind: RefKind::Local,
                    reused: false
                },
                func
            }),
            UbOutcome::Crash(_)
        ));
        assert_eq!(
            v.on_violation(&UbSituation::RefFault {
                fault: RefFault::Null,
                func
            }),
            UbOutcome::Npe
        );
    }

    #[test]
    fn death_conversion() {
        assert!(death_of(&UbOutcome::Proceed, "x", "F").is_none());
        assert!(death_of(&UbOutcome::Npe, "x", "F").is_none());
        let d = death_of(&UbOutcome::Crash("boom"), "HotSpot", "FindClass").unwrap();
        assert!(d.message.contains("HotSpot"));
        assert!(d.message.contains("FindClass"));
        assert!(death_of(&UbOutcome::Deadlock("hang"), "J9", "GetStringChars").is_some());
    }

    #[test]
    fn arg_and_ret_accessors() {
        assert_eq!(JniArg::Ref(JRef::NULL).as_ref(), Some(JRef::NULL));
        assert_eq!(JniArg::Size(3).as_ref(), None);
        assert_eq!(JniRet::Ref(JRef::NULL).as_ref(), Some(JRef::NULL));
        assert_eq!(JniRet::Void.as_ref(), None);
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            machine: "exception-state",
            error_state: "Error:PendingException",
            function: "GetMethodID".into(),
            message: "an exception is pending".into(),
            backtrace: vec![],
        };
        let s = v.to_string();
        assert!(s.contains("exception-state"));
        assert!(s.contains("GetMethodID"));
    }

    #[test]
    fn default_interpose_hooks_are_silent() {
        struct Nop;
        impl Interpose for Nop {
            fn name(&self) -> &str {
                "nop"
            }
        }
        let jvm = Jvm::new();
        let mut nop = Nop;
        assert!(nop.vm_death(&jvm).is_empty());
        assert!(nop
            .native_enter(&jvm, jvm.main_thread(), MethodId::forged(0), &[], &[])
            .is_empty());
    }
}
