//! Typed wrappers for all 229 JNI functions.
//!
//! Each wrapper packs its arguments into the generic representation, runs
//! the full interposition pipeline via [`JniEnv::invoke`], and unpacks the
//! result. Simulated "C code" (native method bodies) calls these exactly
//! as real C calls through the `JNIEnv*` function table.
//!
//! The wrappers are free functions (`typed::find_class(env, …)`) rather
//! than methods so the enormous surface stays out of [`JniEnv`]'s rustdoc.
//! The `…V` and plain variadic forms take the same `&[JValue]` slice as
//! the `…A` forms — Rust has no C varargs — but remain distinct functions
//! with distinct [`FuncId`]s, exactly as in `jni.h`.

use minijvm::{FieldId, JRef, JValue, MethodId, PinId, PrimArray};

use crate::env::JniEnv;
use crate::error::JniError;
use crate::interpose::{JniArg, JniRet};
use crate::registry::FuncId;

type R<T> = Result<T, JniError>;

// ----- result unpackers ----------------------------------------------------

fn ret_ref(r: JniRet) -> JRef {
    match r {
        JniRet::Ref(r) => r,
        other => panic!("expected reference result, got {other:?}"),
    }
}

fn ret_unit(_: JniRet) {}

fn ret_size(r: JniRet) -> i64 {
    match r {
        JniRet::Size(s) => s,
        other => panic!("expected size result, got {other:?}"),
    }
}

fn ret_method(r: JniRet) -> MethodId {
    match r {
        JniRet::Method(m) => m,
        other => panic!("expected method id result, got {other:?}"),
    }
}

fn ret_field(r: JniRet) -> FieldId {
    match r {
        JniRet::Field(f) => f,
        other => panic!("expected field id result, got {other:?}"),
    }
}

fn ret_pin(r: JniRet) -> PinId {
    match r {
        JniRet::Buf(p) => p,
        other => panic!("expected buffer result, got {other:?}"),
    }
}

fn ret_bool(r: JniRet) -> bool {
    match r {
        JniRet::Val(JValue::Bool(v)) => v,
        other => panic!("expected boolean result, got {other:?}"),
    }
}

fn ret_int(r: JniRet) -> i32 {
    match r {
        JniRet::Val(JValue::Int(v)) => v,
        other => panic!("expected int result, got {other:?}"),
    }
}

fn ret_long(r: JniRet) -> i64 {
    match r {
        JniRet::Val(JValue::Long(v)) => v,
        other => panic!("expected long result, got {other:?}"),
    }
}

fn ret_chars(r: JniRet) -> Vec<u16> {
    match r {
        JniRet::Chars(c) => c,
        other => panic!("expected char data result, got {other:?}"),
    }
}

fn ret_bytes(r: JniRet) -> Vec<u8> {
    match r {
        JniRet::Bytes(b) => b,
        other => panic!("expected byte data result, got {other:?}"),
    }
}

fn ret_prims(r: JniRet) -> PrimArray {
    match r {
        JniRet::Prims(p) => p,
        other => panic!("expected primitive data result, got {other:?}"),
    }
}

// ----- singles ---------------------------------------------------------------

/// `GetVersion`.
pub fn get_version(env: &mut JniEnv<'_>) -> R<i32> {
    env.invoke(crate::func_id!("GetVersion"), vec![])
        .map(ret_int)
}

/// `DefineClass`.
pub fn define_class(env: &mut JniEnv<'_>, name: &str, loader: JRef, buf: &[u8]) -> R<JRef> {
    env.invoke(
        crate::func_id!("DefineClass"),
        vec![
            JniArg::Name(name.into()),
            JniArg::Ref(loader),
            JniArg::Bytes(buf.to_vec()),
            JniArg::Size(buf.len() as i64),
        ],
    )
    .map(ret_ref)
}

/// `FindClass`.
pub fn find_class(env: &mut JniEnv<'_>, name: &str) -> R<JRef> {
    env.invoke(
        crate::func_id!("FindClass"),
        vec![JniArg::Name(name.into())],
    )
    .map(ret_ref)
}

/// `FromReflectedMethod`.
pub fn from_reflected_method(env: &mut JniEnv<'_>, method: JRef) -> R<MethodId> {
    env.invoke(
        crate::func_id!("FromReflectedMethod"),
        vec![JniArg::Ref(method)],
    )
    .map(ret_method)
}

/// `FromReflectedField`.
pub fn from_reflected_field(env: &mut JniEnv<'_>, field: JRef) -> R<FieldId> {
    env.invoke(
        crate::func_id!("FromReflectedField"),
        vec![JniArg::Ref(field)],
    )
    .map(ret_field)
}

/// `ToReflectedMethod`.
pub fn to_reflected_method(
    env: &mut JniEnv<'_>,
    cls: JRef,
    method: MethodId,
    is_static: bool,
) -> R<JRef> {
    env.invoke(
        crate::func_id!("ToReflectedMethod"),
        vec![
            JniArg::Ref(cls),
            JniArg::Method(method),
            JniArg::Val(JValue::Bool(is_static)),
        ],
    )
    .map(ret_ref)
}

/// `ToReflectedField`.
pub fn to_reflected_field(
    env: &mut JniEnv<'_>,
    cls: JRef,
    field: FieldId,
    is_static: bool,
) -> R<JRef> {
    env.invoke(
        crate::func_id!("ToReflectedField"),
        vec![
            JniArg::Ref(cls),
            JniArg::Field(field),
            JniArg::Val(JValue::Bool(is_static)),
        ],
    )
    .map(ret_ref)
}

/// `GetSuperclass`.
pub fn get_superclass(env: &mut JniEnv<'_>, sub: JRef) -> R<JRef> {
    env.invoke(crate::func_id!("GetSuperclass"), vec![JniArg::Ref(sub)])
        .map(ret_ref)
}

/// `IsAssignableFrom`.
pub fn is_assignable_from(env: &mut JniEnv<'_>, sub: JRef, sup: JRef) -> R<bool> {
    env.invoke(
        crate::func_id!("IsAssignableFrom"),
        vec![JniArg::Ref(sub), JniArg::Ref(sup)],
    )
    .map(ret_bool)
}

/// `Throw`.
pub fn throw(env: &mut JniEnv<'_>, obj: JRef) -> R<i64> {
    env.invoke(crate::func_id!("Throw"), vec![JniArg::Ref(obj)])
        .map(ret_size)
}

/// `ThrowNew`.
pub fn throw_new(env: &mut JniEnv<'_>, clazz: JRef, message: &str) -> R<i64> {
    env.invoke(
        crate::func_id!("ThrowNew"),
        vec![JniArg::Ref(clazz), JniArg::Name(message.into())],
    )
    .map(ret_size)
}

/// `ExceptionOccurred`.
pub fn exception_occurred(env: &mut JniEnv<'_>) -> R<JRef> {
    env.invoke(crate::func_id!("ExceptionOccurred"), vec![])
        .map(ret_ref)
}

/// `ExceptionDescribe`.
pub fn exception_describe(env: &mut JniEnv<'_>) -> R<()> {
    env.invoke(crate::func_id!("ExceptionDescribe"), vec![])
        .map(ret_unit)
}

/// `ExceptionClear`.
pub fn exception_clear(env: &mut JniEnv<'_>) -> R<()> {
    env.invoke(crate::func_id!("ExceptionClear"), vec![])
        .map(ret_unit)
}

/// `ExceptionCheck`.
pub fn exception_check(env: &mut JniEnv<'_>) -> R<bool> {
    env.invoke(crate::func_id!("ExceptionCheck"), vec![])
        .map(ret_bool)
}

/// `FatalError`.
pub fn fatal_error(env: &mut JniEnv<'_>, msg: &str) -> R<()> {
    env.invoke(
        crate::func_id!("FatalError"),
        vec![JniArg::Name(msg.into())],
    )
    .map(ret_unit)
}

/// `PushLocalFrame`.
pub fn push_local_frame(env: &mut JniEnv<'_>, capacity: i64) -> R<i64> {
    env.invoke(
        crate::func_id!("PushLocalFrame"),
        vec![JniArg::Size(capacity)],
    )
    .map(ret_size)
}

/// `PopLocalFrame`.
pub fn pop_local_frame(env: &mut JniEnv<'_>, result: JRef) -> R<JRef> {
    env.invoke(crate::func_id!("PopLocalFrame"), vec![JniArg::Ref(result)])
        .map(ret_ref)
}

/// `NewGlobalRef`.
pub fn new_global_ref(env: &mut JniEnv<'_>, obj: JRef) -> R<JRef> {
    env.invoke(crate::func_id!("NewGlobalRef"), vec![JniArg::Ref(obj)])
        .map(ret_ref)
}

/// `DeleteGlobalRef`.
pub fn delete_global_ref(env: &mut JniEnv<'_>, gref: JRef) -> R<()> {
    env.invoke(crate::func_id!("DeleteGlobalRef"), vec![JniArg::Ref(gref)])
        .map(ret_unit)
}

/// `DeleteLocalRef`.
pub fn delete_local_ref(env: &mut JniEnv<'_>, lref: JRef) -> R<()> {
    env.invoke(crate::func_id!("DeleteLocalRef"), vec![JniArg::Ref(lref)])
        .map(ret_unit)
}

/// `IsSameObject`.
pub fn is_same_object(env: &mut JniEnv<'_>, a: JRef, b: JRef) -> R<bool> {
    env.invoke(
        crate::func_id!("IsSameObject"),
        vec![JniArg::Ref(a), JniArg::Ref(b)],
    )
    .map(ret_bool)
}

/// `NewLocalRef`.
pub fn new_local_ref(env: &mut JniEnv<'_>, r: JRef) -> R<JRef> {
    env.invoke(crate::func_id!("NewLocalRef"), vec![JniArg::Ref(r)])
        .map(ret_ref)
}

/// `EnsureLocalCapacity`.
pub fn ensure_local_capacity(env: &mut JniEnv<'_>, capacity: i64) -> R<i64> {
    env.invoke(
        crate::func_id!("EnsureLocalCapacity"),
        vec![JniArg::Size(capacity)],
    )
    .map(ret_size)
}

/// `AllocObject`.
pub fn alloc_object(env: &mut JniEnv<'_>, clazz: JRef) -> R<JRef> {
    env.invoke(crate::func_id!("AllocObject"), vec![JniArg::Ref(clazz)])
        .map(ret_ref)
}

/// `GetObjectClass`.
pub fn get_object_class(env: &mut JniEnv<'_>, obj: JRef) -> R<JRef> {
    env.invoke(crate::func_id!("GetObjectClass"), vec![JniArg::Ref(obj)])
        .map(ret_ref)
}

/// `IsInstanceOf`.
pub fn is_instance_of(env: &mut JniEnv<'_>, obj: JRef, clazz: JRef) -> R<bool> {
    env.invoke(
        crate::func_id!("IsInstanceOf"),
        vec![JniArg::Ref(obj), JniArg::Ref(clazz)],
    )
    .map(ret_bool)
}

/// `GetObjectRefType`.
pub fn get_object_ref_type(env: &mut JniEnv<'_>, obj: JRef) -> R<i32> {
    env.invoke(crate::func_id!("GetObjectRefType"), vec![JniArg::Ref(obj)])
        .map(ret_int)
}

/// `GetMethodID`.
pub fn get_method_id(env: &mut JniEnv<'_>, clazz: JRef, name: &str, sig: &str) -> R<MethodId> {
    env.invoke(
        crate::func_id!("GetMethodID"),
        vec![
            JniArg::Ref(clazz),
            JniArg::Name(name.into()),
            JniArg::Name(sig.into()),
        ],
    )
    .map(ret_method)
}

/// `GetStaticMethodID`.
pub fn get_static_method_id(
    env: &mut JniEnv<'_>,
    clazz: JRef,
    name: &str,
    sig: &str,
) -> R<MethodId> {
    env.invoke(
        crate::func_id!("GetStaticMethodID"),
        vec![
            JniArg::Ref(clazz),
            JniArg::Name(name.into()),
            JniArg::Name(sig.into()),
        ],
    )
    .map(ret_method)
}

/// `GetFieldID`.
pub fn get_field_id(env: &mut JniEnv<'_>, clazz: JRef, name: &str, sig: &str) -> R<FieldId> {
    env.invoke(
        crate::func_id!("GetFieldID"),
        vec![
            JniArg::Ref(clazz),
            JniArg::Name(name.into()),
            JniArg::Name(sig.into()),
        ],
    )
    .map(ret_field)
}

/// `GetStaticFieldID`.
pub fn get_static_field_id(env: &mut JniEnv<'_>, clazz: JRef, name: &str, sig: &str) -> R<FieldId> {
    env.invoke(
        crate::func_id!("GetStaticFieldID"),
        vec![
            JniArg::Ref(clazz),
            JniArg::Name(name.into()),
            JniArg::Name(sig.into()),
        ],
    )
    .map(ret_field)
}

/// `NewObject`, `NewObjectV`, `NewObjectA`.
pub fn new_object(env: &mut JniEnv<'_>, clazz: JRef, ctor: MethodId, args: &[JValue]) -> R<JRef> {
    new_object_named(env, crate::func_id!("NewObject"), clazz, ctor, args)
}

/// `NewObjectV` (identical semantics; distinct JNI entry).
pub fn new_object_v(env: &mut JniEnv<'_>, clazz: JRef, ctor: MethodId, args: &[JValue]) -> R<JRef> {
    new_object_named(env, crate::func_id!("NewObjectV"), clazz, ctor, args)
}

/// `NewObjectA`.
pub fn new_object_a(env: &mut JniEnv<'_>, clazz: JRef, ctor: MethodId, args: &[JValue]) -> R<JRef> {
    new_object_named(env, crate::func_id!("NewObjectA"), clazz, ctor, args)
}

fn new_object_named(
    env: &mut JniEnv<'_>,
    func: FuncId,
    clazz: JRef,
    ctor: MethodId,
    args: &[JValue],
) -> R<JRef> {
    env.invoke(
        func,
        vec![
            JniArg::Ref(clazz),
            JniArg::Method(ctor),
            JniArg::Args(args.to_vec()),
        ],
    )
    .map(ret_ref)
}

/// `NewString` (UTF-16 code units).
pub fn new_string(env: &mut JniEnv<'_>, chars: &[u16]) -> R<JRef> {
    env.invoke(
        crate::func_id!("NewString"),
        vec![
            JniArg::Chars(chars.to_vec()),
            JniArg::Size(chars.len() as i64),
        ],
    )
    .map(ret_ref)
}

/// `GetStringLength`.
pub fn get_string_length(env: &mut JniEnv<'_>, s: JRef) -> R<i64> {
    env.invoke(crate::func_id!("GetStringLength"), vec![JniArg::Ref(s)])
        .map(ret_size)
}

/// `GetStringChars` — returns the pinned (copied) UTF-16 buffer, which is
/// **not** NUL-terminated (pitfall 8).
pub fn get_string_chars(env: &mut JniEnv<'_>, s: JRef) -> R<PinId> {
    env.invoke(
        crate::func_id!("GetStringChars"),
        vec![JniArg::Ref(s), JniArg::Opaque],
    )
    .map(ret_pin)
}

/// `ReleaseStringChars`.
pub fn release_string_chars(env: &mut JniEnv<'_>, s: JRef, chars: PinId) -> R<()> {
    env.invoke(
        crate::func_id!("ReleaseStringChars"),
        vec![JniArg::Ref(s), JniArg::Buf(chars)],
    )
    .map(ret_unit)
}

/// `NewStringUTF`.
pub fn new_string_utf(env: &mut JniEnv<'_>, s: &str) -> R<JRef> {
    env.invoke(
        crate::func_id!("NewStringUTF"),
        vec![JniArg::Name(s.into())],
    )
    .map(ret_ref)
}

/// `GetStringUTFLength`.
pub fn get_string_utf_length(env: &mut JniEnv<'_>, s: JRef) -> R<i64> {
    env.invoke(crate::func_id!("GetStringUTFLength"), vec![JniArg::Ref(s)])
        .map(ret_size)
}

/// `GetStringUTFChars` — returns the pinned modified-UTF-8 buffer
/// (NUL-terminated).
pub fn get_string_utf_chars(env: &mut JniEnv<'_>, s: JRef) -> R<PinId> {
    env.invoke(
        crate::func_id!("GetStringUTFChars"),
        vec![JniArg::Ref(s), JniArg::Opaque],
    )
    .map(ret_pin)
}

/// `ReleaseStringUTFChars`.
pub fn release_string_utf_chars(env: &mut JniEnv<'_>, s: JRef, chars: PinId) -> R<()> {
    env.invoke(
        crate::func_id!("ReleaseStringUTFChars"),
        vec![JniArg::Ref(s), JniArg::Buf(chars)],
    )
    .map(ret_unit)
}

/// `GetStringRegion` — returns the copied region.
pub fn get_string_region(env: &mut JniEnv<'_>, s: JRef, start: i64, len: i64) -> R<Vec<u16>> {
    env.invoke(
        crate::func_id!("GetStringRegion"),
        vec![
            JniArg::Ref(s),
            JniArg::Size(start),
            JniArg::Size(len),
            JniArg::Opaque,
        ],
    )
    .map(ret_chars)
}

/// `GetStringUTFRegion` — returns the copied region, modified-UTF-8
/// encoded.
pub fn get_string_utf_region(env: &mut JniEnv<'_>, s: JRef, start: i64, len: i64) -> R<Vec<u8>> {
    env.invoke(
        crate::func_id!("GetStringUTFRegion"),
        vec![
            JniArg::Ref(s),
            JniArg::Size(start),
            JniArg::Size(len),
            JniArg::Opaque,
        ],
    )
    .map(ret_bytes)
}

/// `GetStringCritical`.
pub fn get_string_critical(env: &mut JniEnv<'_>, s: JRef) -> R<PinId> {
    env.invoke(
        crate::func_id!("GetStringCritical"),
        vec![JniArg::Ref(s), JniArg::Opaque],
    )
    .map(ret_pin)
}

/// `ReleaseStringCritical`.
pub fn release_string_critical(env: &mut JniEnv<'_>, s: JRef, carray: PinId) -> R<()> {
    env.invoke(
        crate::func_id!("ReleaseStringCritical"),
        vec![JniArg::Ref(s), JniArg::Buf(carray)],
    )
    .map(ret_unit)
}

/// `GetArrayLength`.
pub fn get_array_length(env: &mut JniEnv<'_>, array: JRef) -> R<i64> {
    env.invoke(crate::func_id!("GetArrayLength"), vec![JniArg::Ref(array)])
        .map(ret_size)
}

/// `NewObjectArray`.
pub fn new_object_array(env: &mut JniEnv<'_>, len: i64, clazz: JRef, init: JRef) -> R<JRef> {
    env.invoke(
        crate::func_id!("NewObjectArray"),
        vec![JniArg::Size(len), JniArg::Ref(clazz), JniArg::Ref(init)],
    )
    .map(ret_ref)
}

/// `GetObjectArrayElement`.
pub fn get_object_array_element(env: &mut JniEnv<'_>, array: JRef, index: i64) -> R<JRef> {
    env.invoke(
        crate::func_id!("GetObjectArrayElement"),
        vec![JniArg::Ref(array), JniArg::Size(index)],
    )
    .map(ret_ref)
}

/// `SetObjectArrayElement`.
pub fn set_object_array_element(
    env: &mut JniEnv<'_>,
    array: JRef,
    index: i64,
    value: JRef,
) -> R<()> {
    env.invoke(
        crate::func_id!("SetObjectArrayElement"),
        vec![JniArg::Ref(array), JniArg::Size(index), JniArg::Ref(value)],
    )
    .map(ret_unit)
}

/// `GetPrimitiveArrayCritical`.
pub fn get_primitive_array_critical(env: &mut JniEnv<'_>, array: JRef) -> R<PinId> {
    env.invoke(
        crate::func_id!("GetPrimitiveArrayCritical"),
        vec![JniArg::Ref(array), JniArg::Opaque],
    )
    .map(ret_pin)
}

/// `ReleasePrimitiveArrayCritical`.
pub fn release_primitive_array_critical(
    env: &mut JniEnv<'_>,
    array: JRef,
    carray: PinId,
    mode: i64,
) -> R<()> {
    env.invoke(
        crate::func_id!("ReleasePrimitiveArrayCritical"),
        vec![JniArg::Ref(array), JniArg::Buf(carray), JniArg::Size(mode)],
    )
    .map(ret_unit)
}

/// A native method descriptor for [`register_natives`].
pub struct NativeMethodDef {
    /// Method name.
    pub name: String,
    /// Method descriptor.
    pub sig: String,
    /// The body.
    pub func: crate::vm::NativeFn,
}

impl std::fmt::Debug for NativeMethodDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeMethodDef")
            .field("name", &self.name)
            .field("sig", &self.sig)
            .finish_non_exhaustive()
    }
}

/// `RegisterNatives`: binds native bodies to the class's native methods.
pub fn register_natives(
    env: &mut JniEnv<'_>,
    clazz: JRef,
    methods: Vec<NativeMethodDef>,
) -> R<i64> {
    let n = methods.len() as i64;
    let ret = env.invoke(
        crate::func_id!("RegisterNatives"),
        vec![JniArg::Ref(clazz), JniArg::Opaque, JniArg::Size(n)],
    )?;
    // Bind the closures (they cannot travel through the generic argument
    // representation the hooks observe).
    if let Ok(Some(mirror)) = env.jvm().resolve(env.thread(), clazz) {
        if let Some(class) = env.jvm().class_of_mirror(mirror) {
            for m in methods {
                let mid = env
                    .jvm()
                    .registry()
                    .resolve_method(class, &m.name, &m.sig, false)
                    .or_else(|_| {
                        env.jvm()
                            .registry()
                            .resolve_method(class, &m.name, &m.sig, true)
                    });
                if let Ok(mid) = mid {
                    let idx = env.add_native_code(m.func);
                    env.jvm_mut().registry_mut().bind_native(mid, idx);
                }
            }
        }
    }
    Ok(ret_size(ret))
}

/// `UnregisterNatives`.
pub fn unregister_natives(env: &mut JniEnv<'_>, clazz: JRef) -> R<i64> {
    env.invoke(
        crate::func_id!("UnregisterNatives"),
        vec![JniArg::Ref(clazz)],
    )
    .map(ret_size)
}

/// `MonitorEnter`.
pub fn monitor_enter(env: &mut JniEnv<'_>, obj: JRef) -> R<i64> {
    env.invoke(crate::func_id!("MonitorEnter"), vec![JniArg::Ref(obj)])
        .map(ret_size)
}

/// `MonitorExit`.
pub fn monitor_exit(env: &mut JniEnv<'_>, obj: JRef) -> R<i64> {
    env.invoke(crate::func_id!("MonitorExit"), vec![JniArg::Ref(obj)])
        .map(ret_size)
}

/// `GetJavaVM`.
pub fn get_java_vm(env: &mut JniEnv<'_>) -> R<i64> {
    env.invoke(crate::func_id!("GetJavaVM"), vec![JniArg::Opaque])
        .map(ret_size)
}

/// `NewWeakGlobalRef`.
pub fn new_weak_global_ref(env: &mut JniEnv<'_>, obj: JRef) -> R<JRef> {
    env.invoke(crate::func_id!("NewWeakGlobalRef"), vec![JniArg::Ref(obj)])
        .map(ret_ref)
}

/// `DeleteWeakGlobalRef`.
pub fn delete_weak_global_ref(env: &mut JniEnv<'_>, wref: JRef) -> R<()> {
    env.invoke(
        crate::func_id!("DeleteWeakGlobalRef"),
        vec![JniArg::Ref(wref)],
    )
    .map(ret_unit)
}

/// `NewDirectByteBuffer`.
pub fn new_direct_byte_buffer(env: &mut JniEnv<'_>, address: i64, capacity: i64) -> R<JRef> {
    env.invoke(
        crate::func_id!("NewDirectByteBuffer"),
        vec![
            JniArg::Val(JValue::Long(address)),
            JniArg::Val(JValue::Long(capacity)),
        ],
    )
    .map(ret_ref)
}

/// `GetDirectBufferAddress`.
pub fn get_direct_buffer_address(env: &mut JniEnv<'_>, buf: JRef) -> R<i64> {
    env.invoke(
        crate::func_id!("GetDirectBufferAddress"),
        vec![JniArg::Ref(buf)],
    )
    .map(ret_long)
}

/// `GetDirectBufferCapacity`.
pub fn get_direct_buffer_capacity(env: &mut JniEnv<'_>, buf: JRef) -> R<i64> {
    env.invoke(
        crate::func_id!("GetDirectBufferCapacity"),
        vec![JniArg::Ref(buf)],
    )
    .map(ret_long)
}

// ----- call families ---------------------------------------------------------

macro_rules! virtual_calls {
    ($($fn_name:ident => $jni:literal, $ret:ty, $unpack:expr;)*) => {$(
        #[doc = concat!("`", $jni, "`.")]
        pub fn $fn_name(
            env: &mut JniEnv<'_>,
            obj: JRef,
            method: MethodId,
            args: &[JValue],
        ) -> R<$ret> {
            env.invoke(
                crate::func_id!($jni),
                vec![JniArg::Ref(obj), JniArg::Method(method), JniArg::Args(args.to_vec())],
            )
            .map($unpack)
        }
    )*};
}

macro_rules! nonvirtual_calls {
    ($($fn_name:ident => $jni:literal, $ret:ty, $unpack:expr;)*) => {$(
        #[doc = concat!("`", $jni, "`.")]
        pub fn $fn_name(
            env: &mut JniEnv<'_>,
            obj: JRef,
            clazz: JRef,
            method: MethodId,
            args: &[JValue],
        ) -> R<$ret> {
            env.invoke(
                crate::func_id!($jni),
                vec![
                    JniArg::Ref(obj),
                    JniArg::Ref(clazz),
                    JniArg::Method(method),
                    JniArg::Args(args.to_vec()),
                ],
            )
            .map($unpack)
        }
    )*};
}

macro_rules! static_calls {
    ($($fn_name:ident => $jni:literal, $ret:ty, $unpack:expr;)*) => {$(
        #[doc = concat!("`", $jni, "`.")]
        pub fn $fn_name(
            env: &mut JniEnv<'_>,
            clazz: JRef,
            method: MethodId,
            args: &[JValue],
        ) -> R<$ret> {
            env.invoke(
                crate::func_id!($jni),
                vec![JniArg::Ref(clazz), JniArg::Method(method), JniArg::Args(args.to_vec())],
            )
            .map($unpack)
        }
    )*};
}

fn ret_prim_bool(r: JniRet) -> bool {
    ret_bool(r)
}
fn ret_prim_byte(r: JniRet) -> i8 {
    match r {
        JniRet::Val(JValue::Byte(v)) => v,
        other => panic!("expected byte result, got {other:?}"),
    }
}
fn ret_prim_char(r: JniRet) -> u16 {
    match r {
        JniRet::Val(JValue::Char(v)) => v,
        other => panic!("expected char result, got {other:?}"),
    }
}
fn ret_prim_short(r: JniRet) -> i16 {
    match r {
        JniRet::Val(JValue::Short(v)) => v,
        other => panic!("expected short result, got {other:?}"),
    }
}
fn ret_prim_float(r: JniRet) -> f32 {
    match r {
        JniRet::Val(JValue::Float(v)) => v,
        other => panic!("expected float result, got {other:?}"),
    }
}
fn ret_prim_double(r: JniRet) -> f64 {
    match r {
        JniRet::Val(JValue::Double(v)) => v,
        other => panic!("expected double result, got {other:?}"),
    }
}

virtual_calls! {
    call_object_method => "CallObjectMethod", JRef, ret_ref;
    call_object_method_v => "CallObjectMethodV", JRef, ret_ref;
    call_object_method_a => "CallObjectMethodA", JRef, ret_ref;
    call_boolean_method => "CallBooleanMethod", bool, ret_prim_bool;
    call_boolean_method_v => "CallBooleanMethodV", bool, ret_prim_bool;
    call_boolean_method_a => "CallBooleanMethodA", bool, ret_prim_bool;
    call_byte_method => "CallByteMethod", i8, ret_prim_byte;
    call_byte_method_v => "CallByteMethodV", i8, ret_prim_byte;
    call_byte_method_a => "CallByteMethodA", i8, ret_prim_byte;
    call_char_method => "CallCharMethod", u16, ret_prim_char;
    call_char_method_v => "CallCharMethodV", u16, ret_prim_char;
    call_char_method_a => "CallCharMethodA", u16, ret_prim_char;
    call_short_method => "CallShortMethod", i16, ret_prim_short;
    call_short_method_v => "CallShortMethodV", i16, ret_prim_short;
    call_short_method_a => "CallShortMethodA", i16, ret_prim_short;
    call_int_method => "CallIntMethod", i32, ret_int;
    call_int_method_v => "CallIntMethodV", i32, ret_int;
    call_int_method_a => "CallIntMethodA", i32, ret_int;
    call_long_method => "CallLongMethod", i64, ret_long;
    call_long_method_v => "CallLongMethodV", i64, ret_long;
    call_long_method_a => "CallLongMethodA", i64, ret_long;
    call_float_method => "CallFloatMethod", f32, ret_prim_float;
    call_float_method_v => "CallFloatMethodV", f32, ret_prim_float;
    call_float_method_a => "CallFloatMethodA", f32, ret_prim_float;
    call_double_method => "CallDoubleMethod", f64, ret_prim_double;
    call_double_method_v => "CallDoubleMethodV", f64, ret_prim_double;
    call_double_method_a => "CallDoubleMethodA", f64, ret_prim_double;
    call_void_method => "CallVoidMethod", (), ret_unit;
    call_void_method_v => "CallVoidMethodV", (), ret_unit;
    call_void_method_a => "CallVoidMethodA", (), ret_unit;
}

nonvirtual_calls! {
    call_nonvirtual_object_method => "CallNonvirtualObjectMethod", JRef, ret_ref;
    call_nonvirtual_object_method_v => "CallNonvirtualObjectMethodV", JRef, ret_ref;
    call_nonvirtual_object_method_a => "CallNonvirtualObjectMethodA", JRef, ret_ref;
    call_nonvirtual_boolean_method => "CallNonvirtualBooleanMethod", bool, ret_prim_bool;
    call_nonvirtual_boolean_method_v => "CallNonvirtualBooleanMethodV", bool, ret_prim_bool;
    call_nonvirtual_boolean_method_a => "CallNonvirtualBooleanMethodA", bool, ret_prim_bool;
    call_nonvirtual_byte_method => "CallNonvirtualByteMethod", i8, ret_prim_byte;
    call_nonvirtual_byte_method_v => "CallNonvirtualByteMethodV", i8, ret_prim_byte;
    call_nonvirtual_byte_method_a => "CallNonvirtualByteMethodA", i8, ret_prim_byte;
    call_nonvirtual_char_method => "CallNonvirtualCharMethod", u16, ret_prim_char;
    call_nonvirtual_char_method_v => "CallNonvirtualCharMethodV", u16, ret_prim_char;
    call_nonvirtual_char_method_a => "CallNonvirtualCharMethodA", u16, ret_prim_char;
    call_nonvirtual_short_method => "CallNonvirtualShortMethod", i16, ret_prim_short;
    call_nonvirtual_short_method_v => "CallNonvirtualShortMethodV", i16, ret_prim_short;
    call_nonvirtual_short_method_a => "CallNonvirtualShortMethodA", i16, ret_prim_short;
    call_nonvirtual_int_method => "CallNonvirtualIntMethod", i32, ret_int;
    call_nonvirtual_int_method_v => "CallNonvirtualIntMethodV", i32, ret_int;
    call_nonvirtual_int_method_a => "CallNonvirtualIntMethodA", i32, ret_int;
    call_nonvirtual_long_method => "CallNonvirtualLongMethod", i64, ret_long;
    call_nonvirtual_long_method_v => "CallNonvirtualLongMethodV", i64, ret_long;
    call_nonvirtual_long_method_a => "CallNonvirtualLongMethodA", i64, ret_long;
    call_nonvirtual_float_method => "CallNonvirtualFloatMethod", f32, ret_prim_float;
    call_nonvirtual_float_method_v => "CallNonvirtualFloatMethodV", f32, ret_prim_float;
    call_nonvirtual_float_method_a => "CallNonvirtualFloatMethodA", f32, ret_prim_float;
    call_nonvirtual_double_method => "CallNonvirtualDoubleMethod", f64, ret_prim_double;
    call_nonvirtual_double_method_v => "CallNonvirtualDoubleMethodV", f64, ret_prim_double;
    call_nonvirtual_double_method_a => "CallNonvirtualDoubleMethodA", f64, ret_prim_double;
    call_nonvirtual_void_method => "CallNonvirtualVoidMethod", (), ret_unit;
    call_nonvirtual_void_method_v => "CallNonvirtualVoidMethodV", (), ret_unit;
    call_nonvirtual_void_method_a => "CallNonvirtualVoidMethodA", (), ret_unit;
}

static_calls! {
    call_static_object_method => "CallStaticObjectMethod", JRef, ret_ref;
    call_static_object_method_v => "CallStaticObjectMethodV", JRef, ret_ref;
    call_static_object_method_a => "CallStaticObjectMethodA", JRef, ret_ref;
    call_static_boolean_method => "CallStaticBooleanMethod", bool, ret_prim_bool;
    call_static_boolean_method_v => "CallStaticBooleanMethodV", bool, ret_prim_bool;
    call_static_boolean_method_a => "CallStaticBooleanMethodA", bool, ret_prim_bool;
    call_static_byte_method => "CallStaticByteMethod", i8, ret_prim_byte;
    call_static_byte_method_v => "CallStaticByteMethodV", i8, ret_prim_byte;
    call_static_byte_method_a => "CallStaticByteMethodA", i8, ret_prim_byte;
    call_static_char_method => "CallStaticCharMethod", u16, ret_prim_char;
    call_static_char_method_v => "CallStaticCharMethodV", u16, ret_prim_char;
    call_static_char_method_a => "CallStaticCharMethodA", u16, ret_prim_char;
    call_static_short_method => "CallStaticShortMethod", i16, ret_prim_short;
    call_static_short_method_v => "CallStaticShortMethodV", i16, ret_prim_short;
    call_static_short_method_a => "CallStaticShortMethodA", i16, ret_prim_short;
    call_static_int_method => "CallStaticIntMethod", i32, ret_int;
    call_static_int_method_v => "CallStaticIntMethodV", i32, ret_int;
    call_static_int_method_a => "CallStaticIntMethodA", i32, ret_int;
    call_static_long_method => "CallStaticLongMethod", i64, ret_long;
    call_static_long_method_v => "CallStaticLongMethodV", i64, ret_long;
    call_static_long_method_a => "CallStaticLongMethodA", i64, ret_long;
    call_static_float_method => "CallStaticFloatMethod", f32, ret_prim_float;
    call_static_float_method_v => "CallStaticFloatMethodV", f32, ret_prim_float;
    call_static_float_method_a => "CallStaticFloatMethodA", f32, ret_prim_float;
    call_static_double_method => "CallStaticDoubleMethod", f64, ret_prim_double;
    call_static_double_method_v => "CallStaticDoubleMethodV", f64, ret_prim_double;
    call_static_double_method_a => "CallStaticDoubleMethodA", f64, ret_prim_double;
    call_static_void_method => "CallStaticVoidMethod", (), ret_unit;
    call_static_void_method_v => "CallStaticVoidMethodV", (), ret_unit;
    call_static_void_method_a => "CallStaticVoidMethodA", (), ret_unit;
}

// ----- field families ----------------------------------------------------

macro_rules! get_fields {
    ($($fn_name:ident => $jni:literal, $ret:ty, $unpack:expr;)*) => {$(
        #[doc = concat!("`", $jni, "`.")]
        pub fn $fn_name(env: &mut JniEnv<'_>, obj: JRef, field: FieldId) -> R<$ret> {
            env.invoke(crate::func_id!($jni), vec![JniArg::Ref(obj), JniArg::Field(field)])
                .map($unpack)
        }
    )*};
}

macro_rules! set_fields {
    ($($fn_name:ident => $jni:literal, $val:ty, $wrap:expr;)*) => {$(
        #[doc = concat!("`", $jni, "`.")]
        pub fn $fn_name(env: &mut JniEnv<'_>, obj: JRef, field: FieldId, value: $val) -> R<()> {
            #[allow(clippy::redundant_closure_call)]
            env.invoke(
                crate::func_id!($jni),
                vec![JniArg::Ref(obj), JniArg::Field(field), ($wrap)(value)],
            )
            .map(ret_unit)
        }
    )*};
}

get_fields! {
    get_object_field => "GetObjectField", JRef, ret_ref;
    get_boolean_field => "GetBooleanField", bool, ret_prim_bool;
    get_byte_field => "GetByteField", i8, ret_prim_byte;
    get_char_field => "GetCharField", u16, ret_prim_char;
    get_short_field => "GetShortField", i16, ret_prim_short;
    get_int_field => "GetIntField", i32, ret_int;
    get_long_field => "GetLongField", i64, ret_long;
    get_float_field => "GetFloatField", f32, ret_prim_float;
    get_double_field => "GetDoubleField", f64, ret_prim_double;
    get_static_object_field => "GetStaticObjectField", JRef, ret_ref;
    get_static_boolean_field => "GetStaticBooleanField", bool, ret_prim_bool;
    get_static_byte_field => "GetStaticByteField", i8, ret_prim_byte;
    get_static_char_field => "GetStaticCharField", u16, ret_prim_char;
    get_static_short_field => "GetStaticShortField", i16, ret_prim_short;
    get_static_int_field => "GetStaticIntField", i32, ret_int;
    get_static_long_field => "GetStaticLongField", i64, ret_long;
    get_static_float_field => "GetStaticFloatField", f32, ret_prim_float;
    get_static_double_field => "GetStaticDoubleField", f64, ret_prim_double;
}

set_fields! {
    set_object_field => "SetObjectField", JRef, JniArg::Ref;
    set_boolean_field => "SetBooleanField", bool, |v| JniArg::Val(JValue::Bool(v));
    set_byte_field => "SetByteField", i8, |v| JniArg::Val(JValue::Byte(v));
    set_char_field => "SetCharField", u16, |v| JniArg::Val(JValue::Char(v));
    set_short_field => "SetShortField", i16, |v| JniArg::Val(JValue::Short(v));
    set_int_field => "SetIntField", i32, |v| JniArg::Val(JValue::Int(v));
    set_long_field => "SetLongField", i64, |v| JniArg::Val(JValue::Long(v));
    set_float_field => "SetFloatField", f32, |v| JniArg::Val(JValue::Float(v));
    set_double_field => "SetDoubleField", f64, |v| JniArg::Val(JValue::Double(v));
    set_static_object_field => "SetStaticObjectField", JRef, JniArg::Ref;
    set_static_boolean_field => "SetStaticBooleanField", bool, |v| JniArg::Val(JValue::Bool(v));
    set_static_byte_field => "SetStaticByteField", i8, |v| JniArg::Val(JValue::Byte(v));
    set_static_char_field => "SetStaticCharField", u16, |v| JniArg::Val(JValue::Char(v));
    set_static_short_field => "SetStaticShortField", i16, |v| JniArg::Val(JValue::Short(v));
    set_static_int_field => "SetStaticIntField", i32, |v| JniArg::Val(JValue::Int(v));
    set_static_long_field => "SetStaticLongField", i64, |v| JniArg::Val(JValue::Long(v));
    set_static_float_field => "SetStaticFloatField", f32, |v| JniArg::Val(JValue::Float(v));
    set_static_double_field => "SetStaticDoubleField", f64, |v| JniArg::Val(JValue::Double(v));
}

// ----- primitive array families -------------------------------------------

macro_rules! prim_array_family {
    ($($ty_name:literal : $new_fn:ident, $get_elems_fn:ident, $rel_elems_fn:ident, $get_region_fn:ident, $set_region_fn:ident;)*) => {$(
        #[doc = concat!("`New", $ty_name, "Array`.")]
        pub fn $new_fn(env: &mut JniEnv<'_>, len: i64) -> R<JRef> {
            env.invoke(
                crate::func_id!(concat!("New", $ty_name, "Array")),
                vec![JniArg::Size(len)],
            )
            .map(ret_ref)
        }

        #[doc = concat!("`Get", $ty_name, "ArrayElements`.")]
        pub fn $get_elems_fn(env: &mut JniEnv<'_>, array: JRef) -> R<PinId> {
            env.invoke(
                crate::func_id!(concat!("Get", $ty_name, "ArrayElements")),
                vec![JniArg::Ref(array), JniArg::Opaque],
            )
            .map(ret_pin)
        }

        #[doc = concat!("`Release", $ty_name, "ArrayElements`.")]
        pub fn $rel_elems_fn(env: &mut JniEnv<'_>, array: JRef, elems: PinId, mode: i64) -> R<()> {
            env.invoke(
                crate::func_id!(concat!("Release", $ty_name, "ArrayElements")),
                vec![JniArg::Ref(array), JniArg::Buf(elems), JniArg::Size(mode)],
            )
            .map(ret_unit)
        }

        #[doc = concat!("`Get", $ty_name, "ArrayRegion` — returns the copied region.")]
        pub fn $get_region_fn(
            env: &mut JniEnv<'_>,
            array: JRef,
            start: i64,
            len: i64,
        ) -> R<PrimArray> {
            env.invoke(
                crate::func_id!(concat!("Get", $ty_name, "ArrayRegion")),
                vec![JniArg::Ref(array), JniArg::Size(start), JniArg::Size(len), JniArg::Opaque],
            )
            .map(ret_prims)
        }

        #[doc = concat!("`Set", $ty_name, "ArrayRegion`.")]
        pub fn $set_region_fn(
            env: &mut JniEnv<'_>,
            array: JRef,
            start: i64,
            data: PrimArray,
        ) -> R<()> {
            let len = data.len() as i64;
            env.invoke(
                crate::func_id!(concat!("Set", $ty_name, "ArrayRegion")),
                vec![
                    JniArg::Ref(array),
                    JniArg::Size(start),
                    JniArg::Size(len),
                    JniArg::Prims(data),
                ],
            )
            .map(ret_unit)
        }
    )*};
}

prim_array_family! {
    "Boolean": new_boolean_array, get_boolean_array_elements, release_boolean_array_elements,
        get_boolean_array_region, set_boolean_array_region;
    "Byte": new_byte_array, get_byte_array_elements, release_byte_array_elements,
        get_byte_array_region, set_byte_array_region;
    "Char": new_char_array, get_char_array_elements, release_char_array_elements,
        get_char_array_region, set_char_array_region;
    "Short": new_short_array, get_short_array_elements, release_short_array_elements,
        get_short_array_region, set_short_array_region;
    "Int": new_int_array, get_int_array_elements, release_int_array_elements,
        get_int_array_region, set_int_array_region;
    "Long": new_long_array, get_long_array_elements, release_long_array_elements,
        get_long_array_region, set_long_array_region;
    "Float": new_float_array, get_float_array_elements, release_float_array_elements,
        get_float_array_region, set_float_array_region;
    "Double": new_double_array, get_double_array_elements, release_double_array_elements,
        get_double_array_region, set_double_array_region;
}

// ----- "C memory" access to pinned buffers ---------------------------------

/// Reads a pinned modified-UTF-8 buffer as C would through its `char*`,
/// i.e. up to the NUL terminator. Returns `None` for a released pin (a C
/// use-after-free the raw JVM cannot see).
pub fn read_utf_buffer(env: &JniEnv<'_>, pin: PinId) -> Option<String> {
    match env.jvm().pins().data(pin)? {
        minijvm::PinData::Utf8(bytes) => {
            let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
            minijvm::mutf8::decode_to_string(&bytes[..end]).ok()
        }
        _ => None,
    }
}

/// Reads a pinned UTF-16 buffer of known length (the correct way).
pub fn read_utf16_buffer(env: &JniEnv<'_>, pin: PinId) -> Option<Vec<u16>> {
    match env.jvm().pins().data(pin)? {
        minijvm::PinData::Utf16(chars) => Some(chars.clone()),
        _ => None,
    }
}

/// Reads a pinned UTF-16 buffer *assuming NUL termination*, as buggy C
/// code does (pitfall 8). JNI does not terminate UTF-16 strings, so when
/// no NUL is present this simulated read runs off the end of the buffer:
/// it returns `Err` with the whole buffer plus simulated garbage.
pub fn read_utf16_expecting_nul(
    env: &JniEnv<'_>,
    pin: PinId,
) -> Option<Result<Vec<u16>, Vec<u16>>> {
    match env.jvm().pins().data(pin)? {
        minijvm::PinData::Utf16(chars) => {
            match chars.iter().position(|&c| c == 0) {
                Some(end) => Some(Ok(chars[..end].to_vec())),
                None => {
                    // Overread: the bytes past the buffer are whatever the
                    // allocator left there.
                    let mut overread = chars.clone();
                    overread.extend([0xDEAD, 0xBEEF, 0x0BAD]);
                    Some(Err(overread))
                }
            }
        }
        _ => None,
    }
}

/// Reads a pinned primitive-array buffer (the `jint*` etc. view).
pub fn read_prim_buffer(env: &JniEnv<'_>, pin: PinId) -> Option<PrimArray> {
    match env.jvm().pins().data(pin)? {
        minijvm::PinData::Prim(p) => Some(p.clone()),
        _ => None,
    }
}

/// Writes through a pinned primitive-array buffer (C mutating the copy;
/// the data reaches the Java array at release time unless aborted).
pub fn write_prim_buffer(env: &mut JniEnv<'_>, pin: PinId, index: usize, value: JValue) -> bool {
    match env.jvm_mut().pins_mut().data_mut(pin) {
        Some(minijvm::PinData::Prim(p)) if index < p.len() => {
            p.set(index, value);
            true
        }
        _ => false,
    }
}
