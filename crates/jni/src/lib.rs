//! `minijni` — the full 229-function JNI surface over the simulated JVM,
//! with an interposition seam for dynamic checkers.
//!
//! This crate supplies three things:
//!
//! 1. **The function registry** ([`mod@registry`]): machine-readable metadata
//!    for every JNI 1.6 function — parameter kinds, nullability, fixed
//!    Java types, entity-ID parameters, exception obliviousness,
//!    critical-section sensitivity. The paper's Table 2 is computed from
//!    it.
//! 2. **Raw semantics** (private module `raw`): what an *unchecked*
//!    production JVM does for each function, including vendor-modelled
//!    undefined behaviour on misuse ([`VendorModel`]); this reproduces the
//!    "Default Behavior" columns of Table 1.
//! 3. **The interposition seam** ([`Interpose`]): hooks at all four
//!    language-transition directions, through which the `-Xcheck:jni`
//!    baselines (crate `jinn-vendors`) and Jinn itself (crate `jinn-core`)
//!    observe and veto calls.
//!
//! # Example: catching a JNI misuse with the raw VM
//!
//! ```
//! use minijni::{typed, JniError, Session, Vm};
//! use minijvm::JValue;
//! use std::rc::Rc;
//!
//! let mut vm = Vm::permissive();
//! // A native method that calls back into Java through the JNI.
//! let (_, method) = vm.define_native_class(
//!     "demo/Hello",
//!     "greet",
//!     "()Ljava/lang/String;",
//!     true,
//!     Rc::new(|env, _args| {
//!         let s = typed::new_string_utf(env, "hello from C")?;
//!         Ok(JValue::Ref(s))
//!     }),
//! );
//! let thread = vm.jvm().main_thread();
//! let mut session = Session::new(vm);
//! let result = session.env(thread).call_native_method(method, &[])?;
//! let r = result.as_ref().expect("string ref");
//! let oop = session.vm().jvm().resolve(thread, r)?.expect("non-null");
//! assert_eq!(session.vm().jvm().string_value(oop).as_deref(), Some("hello from C"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod env;
mod error;
mod interpose;
mod raw;
pub mod registry;
pub mod tap;
pub mod typed;
mod vm;

pub use env::{JniEnv, JINN_EXCEPTION_CLASS, JNI_ABORT, JNI_COMMIT};
pub use error::JniError;
pub use interpose::{
    death_of, CallCx, Interpose, JniArg, JniRet, PermissiveVendor, Report, ReportAction, UbOutcome,
    UbSituation, VendorModel, Violation,
};
pub use registry::{registry, ConstraintCounts, FuncId, FuncSpec, Op, ParamKind, RetKind};
pub use tap::{BoundaryTap, ManagedOutcome};
pub use vm::{ManagedFn, NativeFn, RunOutcome, Session, TransitionStats, Vm};
