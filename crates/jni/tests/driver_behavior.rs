//! Tests of the interposition driver itself: hook ordering, transition
//! accounting, vendor-modelled undefined behaviour, death latching, and
//! session logs.

use std::cell::RefCell;
use std::rc::Rc;

use minijni::{
    typed, CallCx, Interpose, JniError, JniRet, Report, ReportAction, RunOutcome, Session,
    Violation, Vm,
};
use minijvm::{JRef, JValue, Jvm, MethodId, ThreadId};

/// A checker that records the order of every hook it sees.
struct Recorder {
    events: Rc<RefCell<Vec<String>>>,
    veto: Option<&'static str>,
}

impl Interpose for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }

    fn pre_jni(&mut self, _jvm: &Jvm, cx: &CallCx<'_>) -> Vec<Report> {
        self.events
            .borrow_mut()
            .push(format!("pre:{}", cx.func.name()));
        if Some(cx.func.name()) == self.veto {
            return vec![Report::new(
                Violation {
                    machine: "recorder",
                    error_state: "Error:Veto",
                    function: cx.func.name().to_string(),
                    message: "vetoed by test".to_string(),
                    backtrace: vec![],
                },
                ReportAction::ThrowException,
            )];
        }
        Vec::new()
    }

    fn post_jni(&mut self, _jvm: &Jvm, cx: &CallCx<'_>, ret: Option<&JniRet>) -> Vec<Report> {
        self.events
            .borrow_mut()
            .push(format!("post:{}:{}", cx.func.name(), ret.is_some()));
        Vec::new()
    }

    fn native_enter(
        &mut self,
        _jvm: &Jvm,
        _thread: ThreadId,
        _method: MethodId,
        arg_refs: &[JRef],
        _stack: &[String],
    ) -> Vec<Report> {
        self.events
            .borrow_mut()
            .push(format!("enter:{}", arg_refs.len()));
        Vec::new()
    }

    fn native_exit(
        &mut self,
        _jvm: &Jvm,
        _thread: ThreadId,
        _method: MethodId,
        returned_ref: Option<JRef>,
        _stack: &[String],
    ) -> Vec<Report> {
        self.events
            .borrow_mut()
            .push(format!("exit:{}", returned_ref.is_some()));
        Vec::new()
    }
}

fn session_with_recorder(
    veto: Option<&'static str>,
) -> (Session, MethodId, Vec<JValue>, Rc<RefCell<Vec<String>>>) {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "drv/T",
        "m",
        "(Ljava/lang/Object;)Ljava/lang/Object;",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            typed::get_version(env)?;
            let r = typed::new_local_ref(env, obj)?;
            Ok(JValue::Ref(r))
        }),
    );
    let class = vm.jvm().find_class("java/lang/Object").unwrap();
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    let events = Rc::new(RefCell::new(Vec::new()));
    session.attach(Box::new(Recorder {
        events: Rc::clone(&events),
        veto,
    }));
    (session, entry, vec![arg], events)
}

#[test]
fn hooks_fire_in_boundary_order() {
    let (mut session, entry, args, events) = session_with_recorder(None);
    let thread = session.vm().jvm().main_thread();
    let outcome = session.run_native(thread, entry, &args);
    assert!(matches!(outcome, RunOutcome::Completed(JValue::Ref(_))));
    let ev = events.borrow();
    assert_eq!(
        &*ev,
        &[
            "enter:1".to_string(),
            "pre:GetVersion".to_string(),
            "post:GetVersion:true".to_string(),
            "pre:NewLocalRef".to_string(),
            "post:NewLocalRef:true".to_string(),
            // The returned reference is visible to the exit hook.
            "exit:true".to_string(),
        ]
    );
}

#[test]
fn a_pre_veto_prevents_the_function_from_running() {
    let (mut session, entry, args, events) = session_with_recorder(Some("NewLocalRef"));
    let thread = session.vm().jvm().main_thread();
    let outcome = session.run_native(thread, entry, &args);
    match outcome {
        RunOutcome::CheckerException(v) => assert_eq!(v.error_state, "Error:Veto"),
        other => panic!("{other:?}"),
    }
    let ev = events.borrow();
    // No post hook for the vetoed call: the wrapped function never ran.
    assert!(ev.contains(&"pre:NewLocalRef".to_string()));
    assert!(!ev.iter().any(|e| e.starts_with("post:NewLocalRef")));
}

#[test]
fn transition_stats_count_both_directions() {
    let (mut session, entry, args, _) = session_with_recorder(None);
    let thread = session.vm().jvm().main_thread();
    session.run_native(thread, entry, &args);
    let stats = session.vm().stats();
    assert_eq!(stats.java_to_c, 1, "one native call");
    assert_eq!(stats.c_to_java, 2, "GetVersion + NewLocalRef");
    assert_eq!(stats.total(), 6, "each call counts its return too");
}

#[test]
fn returned_dangling_reference_is_vendor_ub() {
    // A native method that returns a reference it already deleted.
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "drv/BadReturn",
        "m",
        "(Ljava/lang/Object;)Ljava/lang/Object;",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            let r = typed::new_local_ref(env, obj)?;
            typed::delete_local_ref(env, r)?;
            Ok(JValue::Ref(r)) // dangling!
        }),
    );
    let class = vm.jvm().find_class("java/lang/Object").unwrap();
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    match session.run_native(thread, entry, &[arg]) {
        // The permissive vendor crashes on unresolvable references.
        RunOutcome::Died(d) => assert!(d.message.contains("invalid reference"), "{d}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn death_latches_across_subsequent_calls() {
    let mut vm = Vm::permissive();
    let (_c, boom) = vm.define_native_class(
        "drv/Boom",
        "m",
        "()V",
        true,
        Rc::new(|env, _| {
            typed::fatal_error(env, "first failure")?;
            Ok(JValue::Void)
        }),
    );
    let (_c2, after) = vm.define_native_class(
        "drv/After",
        "m",
        "()V",
        true,
        Rc::new(|_env, _| Ok(JValue::Void)),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    assert!(matches!(
        session.run_native(thread, boom, &[]),
        RunOutcome::Died(_)
    ));
    // The process is dead; nothing runs after.
    match session.run_native(thread, after, &[]) {
        RunOutcome::Died(d) => assert!(d.message.contains("first failure"), "{d}"),
        other => panic!("a dead VM ran code: {other:?}"),
    }
}

#[test]
fn exception_describe_writes_to_the_session_log() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "drv/Desc",
        "m",
        "()V",
        true,
        Rc::new(|env, _| {
            let rte = typed::find_class(env, "java/lang/RuntimeException")?;
            typed::throw_new(env, rte, "look at me")?;
            typed::exception_describe(env)?;
            typed::exception_clear(env)?;
            Ok(JValue::Void)
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    assert!(matches!(
        session.run_native(thread, entry, &[]),
        RunOutcome::Completed(_)
    ));
    assert!(
        session.log().iter().any(|l| l.contains("look at me")),
        "log: {:?}",
        session.log()
    );
    let taken = session.take_log();
    assert!(!taken.is_empty());
    assert!(session.log().is_empty());
}

#[test]
fn multiple_checkers_stack_and_first_veto_wins() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "drv/Two",
        "m",
        "()V",
        true,
        Rc::new(|env, _| {
            typed::get_version(env)?;
            Ok(JValue::Void)
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    let first = Rc::new(RefCell::new(Vec::new()));
    let second = Rc::new(RefCell::new(Vec::new()));
    session.attach(Box::new(Recorder {
        events: Rc::clone(&first),
        veto: Some("GetVersion"),
    }));
    session.attach(Box::new(Recorder {
        events: Rc::clone(&second),
        veto: None,
    }));
    let outcome = session.run_native(thread, entry, &[]);
    assert!(matches!(outcome, RunOutcome::CheckerException(_)));
    // Both checkers observed the pre hook (hooks gather, then the driver
    // applies reports).
    assert!(first.borrow().contains(&"pre:GetVersion".to_string()));
    assert!(second.borrow().contains(&"pre:GetVersion".to_string()));
}

#[test]
fn unsatisfied_link_error_for_unbound_natives() {
    let mut vm = Vm::permissive();
    vm.jvm_mut()
        .registry_mut()
        .define("drv/Unbound")
        .native_method("missing", "()V", minijvm::MemberFlags::public_static())
        .build()
        .unwrap();
    let class = vm.jvm().find_class("drv/Unbound").unwrap();
    let mid = vm
        .jvm()
        .registry()
        .resolve_method(class, "missing", "()V", true)
        .unwrap();
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    match session.run_native(thread, mid, &[]) {
        RunOutcome::UncaughtException(desc) => {
            assert!(desc.contains("UnsatisfiedLinkError"), "{desc}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn env_error_results_are_observable_via_helpers() {
    let err: JniError = minijvm::JvmDeath::crash("x").into();
    assert!(err.death().is_some());
    let (mut session, entry, args, _) = session_with_recorder(None);
    let thread = session.vm().jvm().main_thread();
    // A second env can be created after a run completes.
    session.run_native(thread, entry, &args);
    let env = session.env(thread);
    assert_eq!(env.thread(), thread);
    assert_eq!(env.presented_env(), session.vm().jvm().thread(thread).env());
}

/// A checker that deliberately reports its own misuse (the seam that
/// `jinn_fsm::StateStore::try_apply_named` errors are routed through).
struct MisconfiguredChecker;

impl Interpose for MisconfiguredChecker {
    fn name(&self) -> &str {
        "misconfigured"
    }

    fn pre_jni(&mut self, _jvm: &Jvm, cx: &CallCx<'_>) -> Vec<Report> {
        // Simulates looking up a transition name that the machine does not
        // have: instead of panicking (the old behaviour) the checker
        // converts the error into a checker-internal report.
        vec![Report::checker_internal(
            cx.func.name(),
            "no transition `Aquire` in machine `local-reference`",
        )]
    }
}

#[test]
fn checker_internal_misuse_report_aborts_like_a_guarded_panic() {
    let (vm, entry, args) = {
        let mut vm = Vm::permissive();
        let (_c, entry) = vm.define_native_class(
            "drv/M",
            "m",
            "(Ljava/lang/Object;)V",
            true,
            Rc::new(|env, args| {
                typed::get_version(env)?;
                let _ = args;
                Ok(JValue::Void)
            }),
        );
        let class = vm.jvm().find_class("java/lang/Object").unwrap();
        let oop = vm.jvm_mut().alloc_object(class);
        let thread = vm.jvm().main_thread();
        let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
        (vm, entry, vec![arg])
    };
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.attach(Box::new(MisconfiguredChecker));
    let outcome = session.run_native(thread, entry, &args);
    match outcome {
        RunOutcome::Died(d) => {
            assert!(
                d.message.contains("checker-internal") && d.message.contains("Aquire"),
                "diagnosis names the misuse: {d}"
            );
        }
        other => panic!("checker misuse must abort the VM, got {other:?}"),
    }
    // The report is labelled exactly like the guard_hook panic path.
    assert!(
        session
            .log()
            .iter()
            .any(|l| l.contains("FATAL") && l.contains("checker-internal/Error:Misuse")),
        "log: {:?}",
        session.log()
    );
}
