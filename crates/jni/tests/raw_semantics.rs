//! Tests of the raw (unchecked) JNI semantics: what each function family
//! does on a well-behaved VM, without any checker attached.

use std::rc::Rc;

use minijni::{typed, JniError, RunOutcome, Session, Vm};
use minijvm::{JRef, JValue, MemberFlags, PrimArray, RefKind};

/// Runs `body` as a native method with one `java/lang/Object` argument.
fn run_native(
    body: impl Fn(&mut minijni::JniEnv<'_>, &[JValue]) -> Result<JValue, JniError> + 'static,
) -> RunOutcome {
    let mut vm = Vm::permissive();
    let (_c, entry) =
        vm.define_native_class("t/T", "m", "(Ljava/lang/Object;)I", true, Rc::new(body));
    let class = vm.jvm().find_class("java/lang/Object").unwrap();
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    session.run_native(thread, entry, &[arg])
}

fn expect_int(outcome: RunOutcome) -> i32 {
    match outcome {
        RunOutcome::Completed(JValue::Int(v)) => v,
        other => panic!("expected Completed(Int), got {other:?}"),
    }
}

#[test]
fn get_version_reports_jni_1_6() {
    let v = expect_int(run_native(|env, _| {
        Ok(JValue::Int(typed::get_version(env)?))
    }));
    assert_eq!(v, 0x0001_0006);
}

#[test]
fn find_class_unknown_throws_no_class_def() {
    let outcome = run_native(|env, _| match typed::find_class(env, "does/not/Exist") {
        Err(JniError::Exception) => {
            let exc = typed::exception_occurred(env)?;
            assert!(!exc.is_null());
            typed::exception_clear(env)?;
            Ok(JValue::Int(1))
        }
        other => panic!("expected exception, got {other:?}"),
    });
    assert_eq!(expect_int(outcome), 1);
}

#[test]
fn string_functions_roundtrip_mutf8() {
    let outcome = run_native(|env, _| {
        let s = typed::new_string_utf(env, "héllo")?;
        assert_eq!(typed::get_string_length(env, s)?, 5);
        // Modified UTF-8: é is two bytes.
        assert_eq!(typed::get_string_utf_length(env, s)?, 6);
        let pin = typed::get_string_utf_chars(env, s)?;
        assert_eq!(typed::read_utf_buffer(env, pin).as_deref(), Some("héllo"));
        typed::release_string_utf_chars(env, s, pin)?;
        // Regions.
        let region = typed::get_string_region(env, s, 1, 3)?;
        assert_eq!(String::from_utf16_lossy(&region), "éll");
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn get_string_chars_is_not_nul_terminated() {
    // Pitfall 8: C code assuming NUL termination of the UTF-16 form
    // overreads. The simulation surfaces the overread as Err with garbage.
    let outcome = run_native(|env, _| {
        let s = typed::new_string_utf(env, "abc")?;
        let pin = typed::get_string_chars(env, s)?;
        match typed::read_utf16_expecting_nul(env, pin) {
            Some(Err(overread)) => {
                assert!(overread.len() > 3, "read past the buffer");
            }
            other => panic!("expected an overread, got {other:?}"),
        }
        // The correct, length-based read works fine.
        assert_eq!(typed::read_utf16_buffer(env, pin).unwrap().len(), 3);
        typed::release_string_chars(env, s, pin)?;
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn string_region_bounds_throw() {
    let outcome = run_native(|env, _| {
        let s = typed::new_string_utf(env, "ab")?;
        match typed::get_string_region(env, s, 1, 5) {
            Err(JniError::Exception) => {
                typed::exception_clear(env)?;
                Ok(JValue::Int(7))
            }
            other => panic!("expected StringIndexOutOfBounds, got {other:?}"),
        }
    });
    assert_eq!(expect_int(outcome), 7);
}

#[test]
fn object_array_functions() {
    let outcome = run_native(|env, arg| {
        let obj = arg[0].as_ref().unwrap();
        let clazz = typed::find_class(env, "java/lang/Object")?;
        let arr = typed::new_object_array(env, 3, clazz, JRef::NULL)?;
        assert_eq!(typed::get_array_length(env, arr)?, 3);
        assert!(typed::get_object_array_element(env, arr, 0)?.is_null());
        typed::set_object_array_element(env, arr, 1, obj)?;
        let back = typed::get_object_array_element(env, arr, 1)?;
        assert!(typed::is_same_object(env, back, obj)?);
        // Out-of-bounds throws ArrayIndexOutOfBounds.
        match typed::get_object_array_element(env, arr, 9) {
            Err(JniError::Exception) => typed::exception_clear(env)?,
            other => panic!("expected bounds exception, got {other:?}"),
        }
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn all_primitive_array_families_roundtrip() {
    let outcome = run_native(|env, _| {
        // One representative per macro-generated family.
        let a = typed::new_boolean_array(env, 2)?;
        typed::set_boolean_array_region(env, a, 0, PrimArray::Bool(vec![true, false]))?;
        let r = typed::get_boolean_array_region(env, a, 0, 2)?;
        assert_eq!(r, PrimArray::Bool(vec![true, false]));

        let a = typed::new_double_array(env, 3)?;
        typed::set_double_array_region(env, a, 1, PrimArray::Double(vec![2.5, 3.5]))?;
        let r = typed::get_double_array_region(env, a, 0, 3)?;
        assert_eq!(r, PrimArray::Double(vec![0.0, 2.5, 3.5]));

        let a = typed::new_long_array(env, 1)?;
        let pin = typed::get_long_array_elements(env, a)?;
        assert!(typed::write_prim_buffer(env, pin, 0, JValue::Long(9)));
        typed::release_long_array_elements(env, a, pin, 0)?;
        let r = typed::get_long_array_region(env, a, 0, 1)?;
        assert_eq!(r, PrimArray::Long(vec![9]));

        let a = typed::new_char_array(env, 2)?;
        let pin = typed::get_char_array_elements(env, a)?;
        typed::release_char_array_elements(env, a, pin, minijni::JNI_COMMIT)?;

        let a = typed::new_byte_array(env, 2)?;
        typed::set_byte_array_region(env, a, 0, PrimArray::Byte(vec![1, 2]))?;
        let a = typed::new_short_array(env, 2)?;
        typed::set_short_array_region(env, a, 0, PrimArray::Short(vec![3, 4]))?;
        let a = typed::new_float_array(env, 2)?;
        typed::set_float_array_region(env, a, 0, PrimArray::Float(vec![0.5, 1.5]))?;
        let a = typed::new_int_array(env, 2)?;
        typed::set_int_array_region(env, a, 0, PrimArray::Int(vec![5, 6]))?;
        let _ = a;
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn field_families_read_and_write() {
    let mut vm = Vm::permissive();
    let holder = vm
        .jvm_mut()
        .registry_mut()
        .define("t/Holder")
        .field("b", "Z", MemberFlags::public())
        .field("i", "I", MemberFlags::public())
        .field("d", "D", MemberFlags::public())
        .field("s", "Ljava/lang/String;", MemberFlags::public())
        .field("COUNT", "J", MemberFlags::public_static())
        .build()
        .unwrap();
    let (_c, entry) = vm.define_native_class(
        "t/T",
        "m",
        "(Lt/Holder;)I",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            let clazz = typed::get_object_class(env, obj)?;
            let fb = typed::get_field_id(env, clazz, "b", "Z")?;
            let fi = typed::get_field_id(env, clazz, "i", "I")?;
            let fd = typed::get_field_id(env, clazz, "d", "D")?;
            let fs = typed::get_field_id(env, clazz, "s", "Ljava/lang/String;")?;
            let fc = typed::get_static_field_id(env, clazz, "COUNT", "J")?;

            typed::set_boolean_field(env, obj, fb, true)?;
            assert!(typed::get_boolean_field(env, obj, fb)?);
            typed::set_int_field(env, obj, fi, -5)?;
            assert_eq!(typed::get_int_field(env, obj, fi)?, -5);
            typed::set_double_field(env, obj, fd, 2.25)?;
            assert_eq!(typed::get_double_field(env, obj, fd)?, 2.25);

            let s = typed::new_string_utf(env, "stored")?;
            typed::set_object_field(env, obj, fs, s)?;
            let back = typed::get_object_field(env, obj, fs)?;
            assert!(typed::is_same_object(env, back, s)?);

            typed::set_static_long_field(env, clazz, fc, 99)?;
            assert_eq!(typed::get_static_long_field(env, clazz, fc)?, 99);
            Ok(JValue::Int(0))
        }),
    );
    let oop = vm.jvm_mut().alloc_object(holder);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    let outcome = session.run_native(thread, entry, &[arg]);
    expect_int(outcome);
}

#[test]
fn call_families_virtual_static_nonvirtual() {
    let mut vm = Vm::permissive();
    let (_b, base_m) = vm.define_managed_class(
        "t/Base",
        "answer",
        "()I",
        false,
        Rc::new(|_env, _| Ok(JValue::Int(1))),
    );
    let _ = base_m;
    // Subclass overriding `answer`.
    let override_idx = vm.add_managed_code(Rc::new(|_env, _| Ok(JValue::Int(2))));
    vm.jvm_mut()
        .registry_mut()
        .define("t/Sub")
        .superclass("t/Base")
        .method(
            "answer",
            "()I",
            MemberFlags::public(),
            minijvm::MethodBody::Managed(override_idx),
        )
        .build()
        .unwrap();
    let (_s, stat_m) = vm.define_managed_class(
        "t/Stat",
        "forty",
        "()I",
        true,
        Rc::new(|_env, _| Ok(JValue::Int(40))),
    );
    let _ = stat_m;
    let (_c, entry) = vm.define_native_class(
        "t/T",
        "m",
        "(Lt/Sub;)I",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            let base = typed::find_class(env, "t/Base")?;
            let mid = typed::get_method_id(env, base, "answer", "()I")?;
            // Virtual dispatch picks the override.
            let virt = typed::call_int_method_a(env, obj, mid, &[])?;
            assert_eq!(virt, 2);
            // Nonvirtual dispatch runs the named class's version.
            let nonvirt = typed::call_nonvirtual_int_method_a(env, obj, base, mid, &[])?;
            assert_eq!(nonvirt, 1);
            // Static call.
            let stat = typed::find_class(env, "t/Stat")?;
            let smid = typed::get_static_method_id(env, stat, "forty", "()I")?;
            let st = typed::call_static_int_method_a(env, stat, smid, &[])?;
            Ok(JValue::Int(virt * 10 + nonvirt * 100 + st))
        }),
    );
    let sub = vm.jvm().find_class("t/Sub").unwrap();
    let oop = vm.jvm_mut().alloc_object(sub);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    assert_eq!(
        expect_int(session.run_native(thread, entry, &[arg])),
        2 * 10 + 100 + 40
    );
}

#[test]
fn reflection_roundtrip() {
    let mut vm = Vm::permissive();
    let (_c0, _ping) = vm.define_managed_class(
        "t/R",
        "ping",
        "()I",
        true,
        Rc::new(|_env, _| Ok(JValue::Int(3))),
    );
    let (_c, entry) = vm.define_native_class(
        "t/T",
        "m",
        "(Ljava/lang/Object;)I",
        true,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "t/R")?;
            let mid = typed::get_static_method_id(env, clazz, "ping", "()I")?;
            // jmethodID -> java.lang.reflect.Method -> jmethodID.
            let reflected = typed::to_reflected_method(env, clazz, mid, true)?;
            let back = typed::from_reflected_method(env, reflected)?;
            let v = typed::call_static_int_method_a(env, clazz, back, &[])?;
            Ok(JValue::Int(v))
        }),
    );
    let class = vm.jvm().find_class("java/lang/Object").unwrap();
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    assert_eq!(expect_int(session.run_native(thread, entry, &[arg])), 3);
}

#[test]
fn class_queries() {
    let outcome = run_native(|env, arg| {
        let obj = arg[0].as_ref().unwrap();
        let object = typed::find_class(env, "java/lang/Object")?;
        let string = typed::find_class(env, "java/lang/String")?;
        assert!(typed::is_assignable_from(env, string, object)?);
        assert!(!typed::is_assignable_from(env, object, string)?);
        let sup = typed::get_superclass(env, string)?;
        assert!(typed::is_same_object(env, sup, object)?);
        assert!(typed::get_superclass(env, object)?.is_null());
        assert!(typed::is_instance_of(env, obj, object)?);
        assert!(!typed::is_instance_of(env, obj, string)?);
        // null is an instance of everything, per the JNI spec.
        assert!(typed::is_instance_of(env, JRef::NULL, string)?);
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn throw_and_exception_protocol() {
    let outcome = run_native(|env, _| {
        assert!(!typed::exception_check(env)?);
        let rte = typed::find_class(env, "java/lang/RuntimeException")?;
        typed::throw_new(env, rte, "from C")?;
        assert!(typed::exception_check(env)?);
        let exc = typed::exception_occurred(env)?;
        assert!(!exc.is_null());
        typed::exception_describe(env)?;
        typed::exception_clear(env)?;
        assert!(!typed::exception_check(env)?);
        // Throw an existing throwable object.
        let exc2 = typed::alloc_object(env, rte)?;
        typed::throw(env, exc2)?;
        assert!(typed::exception_check(env)?);
        typed::exception_clear(env)?;
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn reference_kind_queries() {
    let outcome = run_native(|env, arg| {
        let obj = arg[0].as_ref().unwrap();
        assert_eq!(typed::get_object_ref_type(env, JRef::NULL)?, 0);
        assert_eq!(typed::get_object_ref_type(env, obj)?, 1);
        let g = typed::new_global_ref(env, obj)?;
        assert_eq!(g.kind(), RefKind::Global);
        assert_eq!(typed::get_object_ref_type(env, g)?, 2);
        let w = typed::new_weak_global_ref(env, obj)?;
        assert_eq!(typed::get_object_ref_type(env, w)?, 3);
        typed::delete_global_ref(env, g)?;
        typed::delete_weak_global_ref(env, w)?;
        // Deleted handles report invalid (0).
        assert_eq!(typed::get_object_ref_type(env, g)?, 0);
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn direct_byte_buffers() {
    let outcome = run_native(|env, _| {
        let buf = typed::new_direct_byte_buffer(env, 0x7f00_1234, 4096)?;
        assert_eq!(typed::get_direct_buffer_address(env, buf)?, 0x7f00_1234);
        assert_eq!(typed::get_direct_buffer_capacity(env, buf)?, 4096);
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn define_class_and_java_vm() {
    let outcome = run_native(|env, _| {
        let c = typed::define_class(env, "dyn/Loaded", JRef::NULL, &[0xCA, 0xFE])?;
        assert!(!c.is_null());
        let again = typed::find_class(env, "dyn/Loaded")?;
        assert!(typed::is_same_object(env, c, again)?);
        assert_eq!(typed::get_java_vm(env)?, 0);
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn fatal_error_kills_the_vm() {
    let outcome = run_native(|env, _| {
        typed::fatal_error(env, "unrecoverable")?;
        unreachable!("FatalError never returns");
    });
    match outcome {
        RunOutcome::Died(d) => {
            assert_eq!(d.kind, minijvm::DeathKind::FatalError);
            assert!(d.message.contains("unrecoverable"));
        }
        other => panic!("expected death, got {other:?}"),
    }
}

#[test]
fn monitor_functions() {
    let outcome = run_native(|env, arg| {
        let obj = arg[0].as_ref().unwrap();
        typed::monitor_enter(env, obj)?;
        typed::monitor_enter(env, obj)?;
        typed::monitor_exit(env, obj)?;
        typed::monitor_exit(env, obj)?;
        // Exit without holding throws IllegalMonitorStateException.
        match typed::monitor_exit(env, obj) {
            Err(JniError::Exception) => typed::exception_clear(env)?,
            other => panic!("expected monitor exception, got {other:?}"),
        }
        Ok(JValue::Int(0))
    });
    expect_int(outcome);
}

#[test]
fn variadic_forms_are_distinct_functions_with_same_semantics() {
    let mut vm = Vm::permissive();
    let (_c0, _add) = vm.define_managed_class(
        "t/Math",
        "add",
        "(II)I",
        true,
        Rc::new(|_env, args| {
            let a = args[0].as_int().unwrap_or(0);
            let b = args[1].as_int().unwrap_or(0);
            Ok(JValue::Int(a + b))
        }),
    );
    let (_c, entry) = vm.define_native_class(
        "t/T",
        "m",
        "()I",
        true,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "t/Math")?;
            let mid = typed::get_static_method_id(env, clazz, "add", "(II)I")?;
            let args = [JValue::Int(20), JValue::Int(22)];
            let a = typed::call_static_int_method(env, clazz, mid, &args)?;
            let b = typed::call_static_int_method_v(env, clazz, mid, &args)?;
            let c = typed::call_static_int_method_a(env, clazz, mid, &args)?;
            assert_eq!((a, b, c), (42, 42, 42));
            Ok(JValue::Int(a))
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    assert_eq!(expect_int(session.run_native(thread, entry, &[])), 42);
    // Three distinct JNI functions were called (plus find/get).
    assert!(session.vm().stats().c_to_java >= 5);
}

#[test]
fn new_object_runs_the_constructor() {
    let mut vm = Vm::permissive();
    let ctor_idx = vm.add_managed_code(Rc::new(|env, args| {
        // this.x = 9
        let this = args[0].as_ref().unwrap();
        let clazz = typed::get_object_class(env, this)?;
        let fx = typed::get_field_id(env, clazz, "x", "I")?;
        typed::set_int_field(env, this, fx, 9)?;
        Ok(JValue::Void)
    }));
    vm.jvm_mut()
        .registry_mut()
        .define("t/Ctor")
        .field("x", "I", MemberFlags::public())
        .method(
            "<init>",
            "()V",
            MemberFlags::public(),
            minijvm::MethodBody::Managed(ctor_idx),
        )
        .build()
        .unwrap();
    let (_c, entry) = vm.define_native_class(
        "t/T",
        "m",
        "()I",
        true,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "t/Ctor")?;
            let ctor = typed::get_method_id(env, clazz, "<init>", "()V")?;
            let obj = typed::new_object_a(env, clazz, ctor, &[])?;
            let fx = typed::get_field_id(env, clazz, "x", "I")?;
            Ok(JValue::Int(typed::get_int_field(env, obj, fx)?))
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    assert_eq!(expect_int(session.run_native(thread, entry, &[])), 9);
}
