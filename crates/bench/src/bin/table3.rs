//! Reproduces **Table 3**: normalized execution times of runtime checking
//! (`-Xcheck:jni`), Jinn interposing, and Jinn checking on the SPECjvm98
//! and DaCapo workload stand-ins.
//!
//! ```text
//! cargo run --release -p jinn-bench --bin table3
//! JINN_SCALE=1000 JINN_TRIALS=3 cargo run --release -p jinn-bench --bin table3
//! ```
//!
//! `JINN_SCALE` divides the paper's transition counts (default 500 for a
//! quick run; 1 replays the full counts); `JINN_TRIALS` is the number of
//! runs per cell, with the median reported.

use jinn_bench::{env_u64, render_table};
use jinn_vendors::Vendor;
use jinn_workloads::{geomean, table3_row, BENCHMARKS};

/// The paper's per-benchmark normalized times (runtime checking,
/// interposing, checking) for reference output.
const PAPER: [(&str, f64, f64, f64); 19] = [
    ("antlr", 1.04, 0.98, 1.05),
    ("bloat", 1.02, 1.19, 1.20),
    ("chart", 1.02, 1.08, 1.12),
    ("eclipse", 1.01, 1.17, 1.20),
    ("fop", 1.07, 1.14, 1.37),
    ("hsqldb", 0.88, 1.04, 1.05),
    ("jython", 1.03, 1.10, 1.16),
    ("luindex", 1.03, 1.08, 1.13),
    ("lusearch", 1.04, 1.09, 1.21),
    ("pmd", 1.04, 1.10, 1.13),
    ("xalan", 1.01, 1.17, 1.19),
    ("compress", 0.98, 1.09, 1.08),
    ("jess", 0.99, 1.22, 1.17),
    ("raytrace", 1.04, 1.16, 1.14),
    ("db", 0.99, 1.01, 1.02),
    ("javac", 1.06, 1.16, 1.14),
    ("mpegaudio", 1.00, 1.01, 1.04),
    ("mtrt", 1.01, 1.11, 1.14),
    ("jack", 1.04, 1.10, 1.21),
];

fn main() {
    let scale = env_u64("JINN_SCALE", 500);
    let trials = env_u64("JINN_TRIALS", 3) as usize;
    let vendor = match std::env::var("JINN_VENDOR").as_deref() {
        Ok("j9") | Ok("J9") => Vendor::J9,
        _ => Vendor::HotSpot,
    };
    println!("Table 3: Jinn performance on SPECjvm98 and DaCapo ({vendor} model)");
    println!("scale=1/{scale} of the paper's transition counts, median of {trials} trials\n");

    let mut rows = Vec::new();
    let (mut g_check, mut g_intp, mut g_full) = (Vec::new(), Vec::new(), Vec::new());
    for spec in &BENCHMARKS {
        let row = table3_row(spec, vendor, scale, trials);
        let paper = PAPER
            .iter()
            .find(|(n, ..)| *n == spec.name)
            .expect("tabulated");
        rows.push(vec![
            row.name.to_string(),
            row.transitions.to_string(),
            format!("{:.2} ({:.2})", row.runtime_checking, paper.1),
            format!("{:.2} ({:.2})", row.interposing, paper.2),
            format!("{:.2} ({:.2})", row.checking, paper.3),
        ]);
        g_check.push(row.runtime_checking);
        g_intp.push(row.interposing);
        g_full.push(row.checking);
        eprintln!("  measured {}", row.name);
    }
    rows.push(vec![
        "GeoMean".to_string(),
        String::new(),
        format!("{:.2} (1.01)", geomean(g_check.clone())),
        format!("{:.2} (1.10)", geomean(g_intp.clone())),
        format!("{:.2} (1.14)", geomean(g_full.clone())),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "transitions (paper)",
                "runtime checking (paper)",
                "jinn interposing (paper)",
                "jinn checking (paper)",
            ],
            &rows,
        )
    );
    let gi = geomean(g_intp);
    let gf = geomean(g_full);
    println!("shape check: checking ≥ interposing ≥ ~1.0: interposing {gi:.2}, checking {gf:.2}");
    println!("paper's claim: \"a modest 14% execution time overhead and most of the");
    println!("overhead (all but 4%) comes from runtime interposition\"");
}
