//! Parallel checking throughput: the Table 3 workload mix on 1/2/4/8
//! worker threads, each an independent `JniSession` with its own `Jinn`
//! checker, all sharing one sharded state store, one safepoint
//! rendezvous, one recorder, and one sharded heap directory.
//!
//! ```text
//! cargo run --release -p jinn-bench --bin parallel
//! ```
//!
//! Writes `BENCH_parallel.json` next to the invocation directory.
//! Scale with `JINN_PARALLEL_TRANSITIONS` / `JINN_PARALLEL_BALLAST`.

use jinn_bench::parallel::{run_parallel, ParallelConfig, ParallelRun};
use jinn_bench::{env_u64, render_table};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn run_at(threads: usize, transitions: u64, ballast: usize) -> ParallelRun {
    run_parallel(&ParallelConfig {
        threads,
        transitions,
        ballast,
        gc_period: 256,
        safepoint_every: 512,
    })
}

fn main() {
    let transitions = env_u64("JINN_PARALLEL_TRANSITIONS", 60_000);
    let ballast = env_u64("JINN_PARALLEL_BALLAST", 98_304) as usize;

    println!("Parallel Jinn: sharded per-thread checking throughput");
    println!("(total work constant across thread counts; ballast {ballast} objects)\n");

    let mut runs: Vec<ParallelRun> = Vec::new();
    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        let run = run_at(threads, transitions, ballast);
        assert_eq!(run.violations, 0, "workload must be bug-free");
        assert_eq!(run.cross_thread_uses, 0, "entity keys are disjoint");
        rows.push(vec![
            threads.to_string(),
            run.transitions.to_string(),
            run.checked_events.to_string(),
            format!("{:.1}", run.elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", run.events_per_sec),
            run.worlds_stopped.to_string(),
            run.trace_events.to_string(),
        ]);
        runs.push(run);
    }

    let baseline = runs[0].events_per_sec;
    for (row, run) in rows.iter_mut().zip(&runs) {
        row.push(format!("{:.2}x", run.events_per_sec / baseline));
    }
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "transitions",
                "checked events",
                "wall ms",
                "events/sec",
                "world stops",
                "trace events",
                "speedup"
            ],
            &rows,
        )
    );

    let at = |n: usize| runs.iter().find(|r| r.threads == n).expect("measured");
    let speedup4 = at(4).events_per_sec / baseline;
    println!("aggregate checked-events/sec at 4 threads: {speedup4:.2}x single-thread baseline");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"parallel sharded checking (Table 3 workload mix)\",\n",
            "  \"total_transitions\": {transitions},\n",
            "  \"ballast_objects\": {ballast},\n",
            "  \"thread_counts\": [1, 2, 4, 8],\n",
            "  \"checked_events\": [{ce1}, {ce2}, {ce4}, {ce8}],\n",
            "  \"wall_nanos\": [{w1}, {w2}, {w4}, {w8}],\n",
            "  \"events_per_sec\": [{e1:.0}, {e2:.0}, {e4:.0}, {e8:.0}],\n",
            "  \"speedup_vs_1_thread\": [1.0, {s2:.4}, {s4:.4}, {s8:.4}],\n",
            "  \"speedup_at_4_threads\": {s4:.4},\n",
            "  \"speedup_at_4_at_least_2_5x\": {ok},\n",
            "  \"worlds_stopped\": [{g1}, {g2}, {g4}, {g8}],\n",
            "  \"cross_thread_uses\": 0,\n",
            "  \"violations\": 0,\n",
            "  \"note\": \"one Jinn per worker (Send), shared ShardedStateStore + ",
            "SafepointRendezvous + per-thread recorder rings; on a single-core host ",
            "the speedup comes from sharded heaps cutting per-collection copying-GC ",
            "cost O(live heap) by 1/N, not from core parallelism\"\n",
            "}}\n",
        ),
        transitions = transitions,
        ballast = ballast,
        ce1 = at(1).checked_events,
        ce2 = at(2).checked_events,
        ce4 = at(4).checked_events,
        ce8 = at(8).checked_events,
        w1 = at(1).elapsed.as_nanos(),
        w2 = at(2).elapsed.as_nanos(),
        w4 = at(4).elapsed.as_nanos(),
        w8 = at(8).elapsed.as_nanos(),
        e1 = at(1).events_per_sec,
        e2 = at(2).events_per_sec,
        e4 = at(4).events_per_sec,
        e8 = at(8).events_per_sec,
        s2 = at(2).events_per_sec / baseline,
        s4 = speedup4,
        s8 = at(8).events_per_sec / baseline,
        ok = speedup4 >= 2.5,
        g1 = at(1).worlds_stopped,
        g2 = at(2).worlds_stopped,
        g4 = at(4).worlds_stopped,
        g8 = at(8).worlds_stopped,
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
