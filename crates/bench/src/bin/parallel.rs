//! Parallel checking throughput: the Table 3 workload mix on
//! 1/2/4/8/16/32/64 worker threads, each an independent `JniSession`
//! with its own `Jinn` checker, all sharing one lock-free atomic state
//! store, one epoch domain for quiesced sweeps, one recorder, and one
//! sharded heap directory.
//!
//! ```text
//! cargo run --release -p jinn-bench --bin parallel
//! ```
//!
//! Writes `BENCH_parallel.json` next to the invocation directory.
//! Scale with `JINN_PARALLEL_TRANSITIONS` / `JINN_PARALLEL_BALLAST`.
//! Set `JINN_PARALLEL_MIN_SPEEDUP_8T` (in hundredths, e.g. `550` for
//! 5.50x) to make the run fail when the 8-thread speedup over the
//! single-thread baseline falls below the gate.

use jinn_bench::parallel::{run_parallel, ParallelConfig, ParallelRun};
use jinn_bench::{env_u64, render_table};

const THREAD_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn run_at(threads: usize, transitions: u64, ballast: usize) -> ParallelRun {
    run_parallel(&ParallelConfig {
        threads,
        transitions,
        ballast,
        gc_period: env_u64("JINN_PARALLEL_GC_PERIOD", 64),
        safepoint_every: env_u64("JINN_PARALLEL_SAFEPOINT", 512),
    })
}

fn json_list<T, F: Fn(&ParallelRun) -> T>(runs: &[ParallelRun], f: F) -> String
where
    T: std::fmt::Display,
{
    let items: Vec<String> = runs.iter().map(|r| f(r).to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let transitions = env_u64("JINN_PARALLEL_TRANSITIONS", 60_000);
    let ballast = env_u64("JINN_PARALLEL_BALLAST", 98_304) as usize;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("Parallel Jinn: lock-free sharded checking throughput");
    println!(
        "(total work constant across thread counts; ballast {ballast} objects; \
         host cores {host_cores})\n"
    );

    let mut runs: Vec<ParallelRun> = Vec::new();
    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        let run = run_at(threads, transitions, ballast);
        assert_eq!(run.violations, 0, "workload must be bug-free");
        assert_eq!(run.cross_thread_uses, 0, "entity keys are disjoint");
        assert_eq!(run.store_residue, 0, "every acquire is evicted");
        rows.push(vec![
            threads.to_string(),
            run.transitions.to_string(),
            run.checked_events.to_string(),
            format!("{:.1}", run.elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", run.events_per_sec),
            run.epoch_sweeps.to_string(),
            format!("{:.2}", run.fairness_spread),
        ]);
        runs.push(run);
    }

    let baseline = runs[0].events_per_sec;
    for (row, run) in rows.iter_mut().zip(&runs) {
        row.push(format!("{:.2}x", run.events_per_sec / baseline));
    }
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "transitions",
                "checked events",
                "wall ms",
                "events/sec",
                "epoch sweeps",
                "fairness",
                "speedup"
            ],
            &rows,
        )
    );

    let at = |n: usize| runs.iter().find(|r| r.threads == n).expect("measured");
    let speedup8 = at(8).events_per_sec / baseline;
    let speedup64 = at(64).events_per_sec / baseline;
    println!(
        "aggregate checked-events/sec: {speedup8:.2}x at 8 threads, \
         {speedup64:.2}x at 64 threads (vs single-thread baseline)"
    );

    let speedups: Vec<String> = runs
        .iter()
        .map(|r| format!("{:.4}", r.events_per_sec / baseline))
        .collect();
    let events_per_sec: Vec<String> = runs
        .iter()
        .map(|r| format!("{:.0}", r.events_per_sec))
        .collect();
    let fairness: Vec<String> = runs
        .iter()
        .map(|r| format!("{:.4}", r.fairness_spread))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"parallel lock-free checking (Table 3 workload mix)\",\n",
            "  \"total_transitions\": {transitions},\n",
            "  \"ballast_objects\": {ballast},\n",
            "  \"host_cores\": {host_cores},\n",
            "  \"thread_counts\": [1, 2, 4, 8, 16, 32, 64],\n",
            "  \"checked_events\": {checked},\n",
            "  \"wall_nanos\": {wall},\n",
            "  \"events_per_sec\": [{eps}],\n",
            "  \"speedup_vs_1_thread\": [{speedups}],\n",
            "  \"speedup_at_8_threads\": {s8:.4},\n",
            "  \"speedup_at_8_at_least_5_5x\": {ok8},\n",
            "  \"speedup_at_64_threads\": {s64:.4},\n",
            "  \"epoch_sweeps\": {sweeps},\n",
            "  \"leak_sweep_peak\": {leaks},\n",
            "  \"fairness_spread_max_over_min\": [{fairness}],\n",
            "  \"worker_wall_nanos\": {{{worker_walls}\n  }},\n",
            "  \"cross_thread_uses\": 0,\n",
            "  \"violations\": 0,\n",
            "  \"note\": \"one Jinn per worker (Send), shared lock-free AtomicStore ",
            "(per-entity CAS on a dense atomic slab) + quiesced epoch sweeps (no ",
            "stop-the-world) + per-thread recorder rings; on a single-core host the ",
            "speedup comes from removing coordination and from sharded heaps cutting ",
            "per-collection copying-GC cost O(live heap) by 1/N, not from core ",
            "parallelism\"\n",
            "}}\n",
        ),
        transitions = transitions,
        ballast = ballast,
        host_cores = host_cores,
        checked = json_list(&runs, |r| r.checked_events),
        wall = json_list(&runs, |r| r.elapsed.as_nanos()),
        eps = events_per_sec.join(", "),
        speedups = speedups.join(", "),
        s8 = speedup8,
        ok8 = speedup8 >= 5.5,
        s64 = speedup64,
        sweeps = json_list(&runs, |r| r.epoch_sweeps),
        leaks = json_list(&runs, |r| r.leak_sweep_peak),
        fairness = fairness.join(", "),
        worker_walls = runs
            .iter()
            .map(|r| {
                let walls: Vec<String> =
                    r.worker_wall_nanos.iter().map(|n| n.to_string()).collect();
                format!("\n    \"{}\": [{}]", r.threads, walls.join(", "))
            })
            .collect::<Vec<_>>()
            .join(","),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");

    if let Ok(gate) = std::env::var("JINN_PARALLEL_MIN_SPEEDUP_8T") {
        let hundredths: u64 = gate
            .trim()
            .parse()
            .expect("JINN_PARALLEL_MIN_SPEEDUP_8T must be an integer (hundredths)");
        let min = hundredths as f64 / 100.0;
        assert!(
            speedup8 >= min,
            "8-thread speedup {speedup8:.2}x below gate {min:.2}x"
        );
        println!("8-thread speedup gate passed: {speedup8:.2}x >= {min:.2}x");
    }
}
