//! Reproduces the **annotation-burden claim** of Sections 1 and 4:
//! "whereas the generated Jinn code is 22,000+ lines, we wrote only 1,400
//! lines of state machine and mapping code."
//!
//! ```text
//! cargo run -p jinn-bench --bin codegen_stats
//! ```
//!
//! Writes the full generated C to `target/jinn_generated.c`.

use jinn_bench::render_table;
use jinn_core::{generate_c_wrappers, synthesize};

fn main() {
    let (code, stats) = generate_c_wrappers();
    let (_, synth) = synthesize();

    println!("Synthesizer input/output sizes (paper Sections 1 and 4)\n");
    let rows = vec![
        vec![
            "state machines".to_string(),
            synth.machines.to_string(),
            "11".to_string(),
        ],
        vec![
            "spec lines (machines + mapping)".to_string(),
            stats.spec_lines.to_string(),
            "~1,400".to_string(),
        ],
        vec![
            "wrapped JNI functions".to_string(),
            stats.functions.to_string(),
            "229".to_string(),
        ],
        vec![
            "synthesized checks (cross product)".to_string(),
            synth.instr_points.to_string(),
            "\"thousands\"".to_string(),
        ],
        vec![
            "generated wrapper lines".to_string(),
            stats.generated_lines.to_string(),
            "22,000+".to_string(),
        ],
        vec![
            "generated/spec ratio".to_string(),
            format!(
                "{:.1}x",
                stats.generated_lines as f64 / stats.spec_lines as f64
            ),
            "~15x".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["quantity", "measured", "paper"], &rows)
    );

    let out = std::path::Path::new("target").join("jinn_generated.c");
    if std::fs::create_dir_all("target")
        .and_then(|()| std::fs::write(&out, &code))
        .is_ok()
    {
        println!("generated wrapper source written to {}", out.display());
    }
    println!("\nexcerpt (the Figure 4 wrapper):\n");
    if let Some(start) = code.find("jinn_wrapped_CallStaticVoidMethodA(JNIEnv* env") {
        let excerpt: String = code[start..]
            .lines()
            .take(24)
            .collect::<Vec<_>>()
            .join("\n");
        println!("{excerpt}\n  ...");
    }
}
