//! Measures checker dispatch throughput: the reference `StateStore`
//! (hash map + name/idiom encoding) against the compiled `CompactStore`
//! (dense transition matrix + slab entity map), single-threaded and
//! through the 4-way sharded store.
//!
//! ```text
//! cargo run --release -p jinn-bench --bin dispatch
//! JINN_DISPATCH_EVENTS=200000 JINN_DISPATCH_TRIALS=3 \
//!     cargo run --release -p jinn-bench --bin dispatch
//! ```
//!
//! Prints a JSON document (the `BENCH_dispatch.json` artifact) on
//! stdout. Set `JINN_DISPATCH_MIN_SPEEDUP` (hundredths, e.g. `150` for
//! 1.5x) to turn the run into a gate: the process exits non-zero if the
//! compiled engine's single-thread speedup falls below the floor.

use jinn_bench::dispatch::{
    best_nanos, dispatch_machine, median_nanos, run_lockfree, run_sharded, run_single,
    DispatchConfig,
};
use jinn_bench::env_u64;
use jinn_fsm::{CompactStore, StateStore, DENSE_LIMIT};

fn main() {
    let cfg = DispatchConfig {
        events: env_u64("JINN_DISPATCH_EVENTS", 1_000_000),
        entities: env_u64("JINN_DISPATCH_ENTITIES", 4_096) as u32,
        threads: env_u64("JINN_DISPATCH_THREADS", 4) as usize,
    };
    let trials = (env_u64("JINN_DISPATCH_TRIALS", 5) as usize).max(1);
    let seed = env_u64("JINN_DISPATCH_SEED", 0x5eed);

    // Warm-up, excluded from measurement.
    let warm = DispatchConfig {
        events: cfg.events.min(10_000),
        ..cfg
    };
    run_single::<StateStore<u32>>(&warm, seed);
    run_single::<CompactStore<u32>>(&warm, seed);

    let mut ref_single = Vec::with_capacity(trials);
    let mut cmp_single = Vec::with_capacity(trials);
    let mut ref_sharded = Vec::with_capacity(trials);
    let mut cmp_sharded = Vec::with_capacity(trials);
    let mut lf_sharded = Vec::with_capacity(trials);
    let mut checksums_match = true;
    for _ in 0..trials {
        let a = run_single::<StateStore<u32>>(&cfg, seed);
        let b = run_single::<CompactStore<u32>>(&cfg, seed);
        checksums_match &= a.checksum == b.checksum;
        ref_single.push(a.elapsed.as_nanos());
        cmp_single.push(b.elapsed.as_nanos());
        let a = run_sharded::<StateStore<u32>>(&cfg, seed);
        let b = run_sharded::<CompactStore<u32>>(&cfg, seed);
        let c = run_lockfree(&cfg, seed);
        checksums_match &= a.checksum == b.checksum;
        checksums_match &= a.checksum == c.checksum;
        ref_sharded.push(a.elapsed.as_nanos());
        cmp_sharded.push(b.elapsed.as_nanos());
        lf_sharded.push(c.elapsed.as_nanos());
    }
    assert!(checksums_match, "engines diverged on the event stream");

    let machine = dispatch_machine();
    let med = |v: &[u128]| median_nanos(v.to_vec());
    let throughput = |nanos: u128| cfg.events as f64 * 1e9 / nanos as f64;
    // Speedups compare best-of-trials: on a shared box, interference only
    // ever adds time, so the minimum is the least-noisy estimate of each
    // engine's true cost.
    let speedup_single = best_nanos(&ref_single) as f64 / best_nanos(&cmp_single) as f64;
    let speedup_sharded_mutex = best_nanos(&ref_sharded) as f64 / best_nanos(&cmp_sharded) as f64;
    // The headline sharded number: mutex-per-shard reference store vs
    // the lock-free atomic slab, identical event streams and checksums.
    let speedup_sharded = best_nanos(&ref_sharded) as f64 / best_nanos(&lf_sharded) as f64;
    let list = |samples: &[u128]| {
        samples
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };

    println!("{{");
    println!(
        "  \"benchmark\": \"engine dispatch: reference StateStore vs compiled CompactStore\","
    );
    println!("  \"machine\": {{");
    println!("    \"name\": \"{}\",", machine.name());
    println!("    \"states\": {},", machine.states().len());
    println!("    \"transitions\": {},", machine.transitions().len());
    println!("    \"key_type\": \"u32\",");
    println!("    \"dense_limit\": {DENSE_LIMIT}");
    println!("  }},");
    println!("  \"events_per_trial\": {},", cfg.events);
    println!("  \"working_set_entities\": {},", cfg.entities);
    println!("  \"sharded_threads\": {},", cfg.threads);
    println!("  \"trials\": {trials},");
    println!("  \"mix\": \"~55% Acquire, ~39% Release, ~6% UseAfterRelease, ~1.6% evict\",");
    println!("  \"reference_single_nanos\": [{}],", list(&ref_single));
    println!("  \"compiled_single_nanos\": [{}],", list(&cmp_single));
    println!("  \"reference_sharded_nanos\": [{}],", list(&ref_sharded));
    println!("  \"compiled_sharded_nanos\": [{}],", list(&cmp_sharded));
    println!("  \"lockfree_sharded_nanos\": [{}],", list(&lf_sharded));
    println!(
        "  \"reference_single_events_per_sec\": {:.0},",
        throughput(med(&ref_single))
    );
    println!(
        "  \"compiled_single_events_per_sec\": {:.0},",
        throughput(med(&cmp_single))
    );
    println!(
        "  \"reference_sharded_events_per_sec\": {:.0},",
        throughput(med(&ref_sharded))
    );
    println!(
        "  \"compiled_sharded_events_per_sec\": {:.0},",
        throughput(med(&cmp_sharded))
    );
    println!(
        "  \"lockfree_sharded_events_per_sec\": {:.0},",
        throughput(med(&lf_sharded))
    );
    println!("  \"speedup_basis\": \"best-of-trials\",");
    println!("  \"speedup_single\": {speedup_single:.2},");
    println!("  \"speedup_sharded_mutex\": {speedup_sharded_mutex:.2},");
    println!("  \"speedup_sharded\": {speedup_sharded:.2},");
    println!("  \"checksums_match\": {checksums_match},");
    println!(
        "  \"note\": \"apply = one bounds-checked read of a dense states x transitions \
         matrix plus a slab probe; the reference engine resolves the same event through \
         a HashMap probe and per-transition spec lookups. speedup_sharded compares the \
         mutex-per-shard reference store against the lock-free AtomicStore (per-entity \
         CAS on an atomic slab, no locks) on identical streams\""
    );
    println!("}}");

    // The CI gate: hundredths, so 150 = require compiled >= 1.5x reference.
    let floor = env_u64("JINN_DISPATCH_MIN_SPEEDUP", 0) as f64 / 100.0;
    if floor > 0.0 && speedup_single < floor {
        eprintln!(
            "dispatch gate FAILED: compiled single-thread speedup {speedup_single:.2}x \
             is below the {floor:.2}x floor"
        );
        std::process::exit(1);
    }
}
