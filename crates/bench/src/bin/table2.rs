//! Reproduces **Table 2**: classification and number of JNI constraints,
//! computed from the machine-readable function registry.
//!
//! ```text
//! cargo run -p jinn-bench --bin table2
//! ```

use jinn_bench::{render_table, tick};
use minijni::registry;

fn main() {
    let c = registry().constraint_counts();
    println!("Table 2: classification and number of JNI constraints");
    println!("(measured = computed over this repository's 229-function registry)\n");

    let rows: Vec<(&str, &str, usize, usize, &str)> = vec![
        (
            "JVM state",
            "JNIEnv* state",
            229,
            c.jnienv_state,
            "current thread matches JNIEnv* thread",
        ),
        (
            "JVM state",
            "Exception state",
            209,
            c.exception_state,
            "no exception pending for sensitive call",
        ),
        (
            "JVM state",
            "Critical-section state",
            225,
            c.critical_state,
            "no critical section",
        ),
        (
            "Type",
            "Fixed typing",
            157,
            c.fixed_typing,
            "parameter matches API function signature",
        ),
        (
            "Type",
            "Entity-specific typing",
            131,
            c.entity_typing,
            "parameter matches Java entity signature",
        ),
        (
            "Type",
            "Access control",
            18,
            c.access_control,
            "written field is non-final",
        ),
        ("Type", "Nullness", 416, c.nullness, "parameter is not null"),
        (
            "Resource",
            "Pinned or copied",
            12,
            c.pinned,
            "no leak or double-free string or array",
        ),
        ("Resource", "Monitor", 1, c.monitor, "no leak"),
        (
            "Resource",
            "Global/weak reference",
            247,
            c.global_ref,
            "no leak or dangling reference",
        ),
        (
            "Resource",
            "Local reference",
            284,
            c.local_ref,
            "no overflow or dangling reference",
        ),
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(class, name, paper, measured, desc)| {
            vec![
                (*class).to_string(),
                (*name).to_string(),
                paper.to_string(),
                measured.to_string(),
                tick(paper == measured).to_string(),
                (*desc).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "class",
                "constraint",
                "paper",
                "measured",
                "exact",
                "description"
            ],
            &table_rows,
        )
    );

    let exact = rows.iter().filter(|(_, _, p, m, _)| p == m).count();
    println!("exact matches: {exact}/11 (the remaining counts are judgment calls the");
    println!("informal JNI specification leaves open; see EXPERIMENTS.md)");
}
