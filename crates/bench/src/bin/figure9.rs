//! Reproduces **Figure 9**: the error messages of HotSpot `-Xcheck:jni`,
//! J9 `-Xcheck:jni`, and Jinn on the ExceptionState microbenchmark.
//!
//! ```text
//! cargo run -p jinn-bench --bin figure9
//! ```

use jinn_microbench::{run_scenario, scenarios, Config};
use jinn_vendors::Vendor;

/// Drops the harness's `WARNING: [machine/state]` framing, leaving the
/// vendor-styled message the real console would print.
fn strip_report_prefix(line: &str) -> &str {
    let line = line
        .trim_start_matches("WARNING: ")
        .trim_start_matches("FATAL: ");
    match (line.starts_with('['), line.find("] ")) {
        (true, Some(end)) => &line[end + 2..],
        _ => line,
    }
}

fn scenario() -> jinn_microbench::Scenario {
    scenarios()
        .into_iter()
        .find(|s| s.name == "ExceptionState")
        .expect("exists")
}

fn main() {
    println!("Figure 9: JVM and Jinn error messages on the ExceptionState microbenchmark");
    println!("(C code ignores a Java exception and keeps calling sensitive JNI functions)\n");

    // (a) HotSpot -Xcheck:jni: warnings, keeps running.
    println!("--- (a) HotSpot JVM (-Xcheck:jni) ---");
    let o = run_scenario(&scenario(), Config::Xcheck(Vendor::HotSpot));
    for line in &o.log {
        // The session log prefixes reports with the detecting machine;
        // print only the vendor-styled text, as the console would show.
        println!("{}", strip_report_prefix(line));
    }
    println!("(behaviour: {})\n", o.behavior);

    // (b) J9 -Xcheck:jni: error, aborts the VM.
    println!("--- (b) J9 (-Xcheck:jni) ---");
    let o = run_scenario(&scenario(), Config::Xcheck(Vendor::J9));
    for line in &o.log {
        println!("{}", strip_report_prefix(line));
    }
    println!("JVMJNCK024E JNI error detected. Aborting.");
    println!("JVMJNCK025I Use -Xcheck:jni:nonfatal to continue running when errors are detected.");
    println!("Fatal error: JNI error");
    println!("(behaviour: {})\n", o.behavior);

    // (c) Jinn: a catchable exception with calling context and cause.
    println!("--- (c) Jinn ---");
    let o = run_scenario(&scenario(), Config::Jinn(Vendor::HotSpot));
    let msg = o.message.unwrap_or_default();
    println!("Exception in thread \"main\" jinn.JNIAssertionFailure:");
    for line in msg.lines() {
        println!("    {line}");
    }
    println!("    at jinn.JNIAssertionFailure.assertFail");
    println!("    at ExceptionStateNative.call(Native Method)");
    println!("    at ExceptionState.main(ExceptionState.java:5)");
    println!("(behaviour: {})\n", o.behavior);

    println!("Jinn reports both illegal JNI calls, their calling contexts, and the");
    println!("source of the original Java exception (the `Caused by:` chain); the");
    println!("exception is catchable by jdb/Eclipse JDT debuggers.");
}
