//! Reproduces **Table 1**: JNI pitfalls × {vendor defaults, `-Xcheck:jni`
//! baselines, Jinn}.
//!
//! ```text
//! cargo run -p jinn-bench --bin table1
//! ```

use jinn_bench::{render_table, tick};
use jinn_microbench::{run_scenario, scenarios, Behavior, Config};
use jinn_vendors::Vendor;

/// The paper's Table 1 expectations for the rows our microbenchmarks
/// cover: (pitfall, HotSpot, J9, HotSpot -Xcheck, J9 -Xcheck, Jinn).
const PAPER: [(u8, &str, &str, &str, &str, &str); 11] = [
    (1, "running", "crash", "warning", "error", "exception"),
    (2, "running", "crash", "running", "crash", "exception"),
    (3, "crash", "crash", "error", "error", "exception"),
    (6, "crash", "crash", "error", "error", "exception"),
    (9, "NPE", "NPE", "NPE", "NPE", "exception"),
    (11, "leak", "leak", "running", "warning", "exception"),
    (12, "leak", "leak", "running", "warning", "exception"),
    (13, "crash", "crash", "error", "error", "exception"),
    (14, "running", "crash", "error", "crash", "exception"),
    (16, "deadlock", "deadlock", "warning", "error", "exception"),
    // Pitfall 11 appears twice in our benchmarks (pin and global leak);
    // the global-leak variant is not separately tabulated by the paper.
    (11, "leak", "leak", "running", "warning", "exception"),
];

fn behavior(name: &str, config: Config) -> Behavior {
    let s = scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .expect("scenario");
    run_scenario(&s, config).behavior
}

fn main() {
    println!("Table 1: JNI pitfalls — default behaviour, -Xcheck:jni, and Jinn");
    println!("(legend: running / crash / warning / error / NPE / leak / deadlock / exception)\n");

    let mut rows = Vec::new();
    let mut matches = 0usize;
    let mut cells = 0usize;
    for s in scenarios() {
        let hs = behavior(s.name, Config::Default(Vendor::HotSpot));
        let j9 = behavior(s.name, Config::Default(Vendor::J9));
        let hsx = behavior(s.name, Config::Xcheck(Vendor::HotSpot));
        let j9x = behavior(s.name, Config::Xcheck(Vendor::J9));
        let jinn = behavior(s.name, Config::Jinn(Vendor::HotSpot));
        let pitfall = s
            .pitfall
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".to_string());
        // Compare against the paper where the row is tabulated.
        let verdict = match s.pitfall.and_then(|p| PAPER.iter().find(|row| row.0 == p)) {
            Some((_, e_hs, e_j9, e_hsx, e_j9x, e_jinn)) => {
                let got = [
                    hs.to_string(),
                    j9.to_string(),
                    hsx.to_string(),
                    j9x.to_string(),
                    jinn.to_string(),
                ];
                let want = [*e_hs, *e_j9, *e_hsx, *e_j9x, *e_jinn];
                let ok = got
                    .iter()
                    .zip(want)
                    .filter(|(g, w)| g.as_str() == *w)
                    .count();
                matches += ok;
                cells += 5;
                tick(ok == 5).to_string()
            }
            None => "extra".to_string(),
        };
        rows.push(vec![
            pitfall,
            s.name.to_string(),
            hs.to_string(),
            j9.to_string(),
            hsx.to_string(),
            j9x.to_string(),
            jinn.to_string(),
            verdict,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "pitfall",
                "microbenchmark",
                "HotSpot",
                "J9",
                "HotSpot -Xcheck",
                "J9 -Xcheck",
                "Jinn",
                "vs paper"
            ],
            &rows,
        )
    );
    println!("paper agreement: {matches}/{cells} tabulated cells match");
    println!("(pitfall 8 is deliberately absent: its bug is invisible at the language boundary,");
    println!(" and the paper's microbenchmarks exclude it too)");
}
