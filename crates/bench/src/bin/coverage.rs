//! Reproduces the **Section 6.3** coverage study: the fraction of the 16
//! microbenchmarks on which each dynamic checker produces a valid bug
//! report (exception, warning, or error).
//!
//! ```text
//! cargo run -p jinn-bench --bin coverage
//! ```

use jinn_bench::{render_table, tick};
use jinn_microbench::{coverage, run_all, Config};
use jinn_vendors::Vendor;

fn main() {
    println!("Section 6.3: microbenchmark detection coverage\n");

    let configs = [
        (Config::Jinn(Vendor::HotSpot), 16),
        (Config::Jinn(Vendor::J9), 16),
        (Config::Xcheck(Vendor::HotSpot), 9),
        (Config::Xcheck(Vendor::J9), 8),
    ];
    let mut rows = Vec::new();
    for (config, paper) in configs {
        let (detected, total) = coverage(config);
        rows.push(vec![
            config.label(),
            format!("{detected}/{total}"),
            format!("{:.0}%", 100.0 * detected as f64 / total as f64),
            format!("{paper}/16"),
            tick(detected == paper).to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["configuration", "detected", "coverage", "paper", "match"],
            &rows
        )
    );

    // The inconsistency claim.
    let hs = run_all(Config::Xcheck(Vendor::HotSpot));
    let j9 = run_all(Config::Xcheck(Vendor::J9));
    let disagree = hs
        .iter()
        .zip(&j9)
        .filter(|((_, a), (_, b))| a.behavior != b.behavior)
        .count();
    println!(
        "HotSpot and J9 -Xcheck behave differently on {disagree} of 16 microbenchmarks \
         (paper: \"inconsistently in more than half\", 9 of 16)"
    );
    println!("\nJinn's per-benchmark verdicts are identical on both vendor models —");
    println!("the vendor-independence claim of Section 1.");
}
