//! Reproduces the **Section 6.4** case studies: the bugs Jinn found in
//! Subversion, Java-gnome, and Eclipse 3.4.
//!
//! ```text
//! cargo run -p jinn-bench --bin casestudies
//! ```

use jinn_workloads::{eclipse, javagnome, subversion};

fn print_findings(title: &str, paper: &str, findings: &[minijni::Violation]) {
    println!("=== {title} ===");
    println!("paper: {paper}");
    if findings.is_empty() {
        println!("  (no findings — UNEXPECTED)");
    }
    for (i, v) in findings.iter().enumerate() {
        println!(
            "  finding {}: [{}/{}] at {}",
            i + 1,
            v.machine,
            v.error_state,
            v.function
        );
        for line in v.message.lines() {
            println!("      {line}");
        }
        for frame in v.backtrace.iter().take(3) {
            println!("      at {frame}");
        }
    }
    println!();
}

fn main() {
    println!("Section 6.4: running the open-source regression suites under Jinn\n");

    print_findings(
        "Subversion (JavaHL binding)",
        "two local-reference overflows (Outputer.cpp:99, InfoCallback.cpp:144) and \
         one dangling local reference in the JNIStringHolder destructor",
        &subversion::audit(),
    );
    println!(
        "  fixed program passes its regression test under Jinn: {}",
        subversion::fixed_program_is_clean()
    );
    println!();

    print_findings(
        "Java-gnome 4.0.10",
        "one nullness bug (also found by Blink) and the dangling callback receiver \
         of GNOME bug 576111 (bindings_java_signal.c:348)",
        &javagnome::audit(),
    );
    println!("  without Jinn the bug is a time bomb; on this run the simulated HotSpot's");
    println!(
        "  bomb went off as {:?}",
        javagnome::callback_bug_is_latent_without_jinn()
    );
    println!("  (the paper observed runs where it stayed hidden: Jikes RVM ignores the parameter)");
    println!();

    print_findings(
        "Eclipse 3.4 (SWT callback.c:698)",
        "one entity-specific typing violation: the class passed to \
         CallStaticSWT_PTRMethodV does not itself declare the static method",
        &eclipse::audit(),
    );
    println!(
        "  the bug survives production runs without Jinn: {}",
        eclipse::bug_survives_without_jinn()
    );
}
