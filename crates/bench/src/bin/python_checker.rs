//! Reproduces **Section 7 / Figure 11**: the synthesized Python/C checker
//! on the borrowed-reference dangle and its siblings.
//!
//! ```text
//! cargo run -p jinn-bench --bin python_checker
//! ```

use jinn_bench::render_table;
use minipy::{
    build_string_list, dangle_bug, dangle_bug_fixed, machines, py_scenarios, run_py_scenario,
    PyRunOutcome, PySession,
};

fn main() {
    println!("Section 7: the Python/C generalization\n");

    println!("state machines ({}):", machines().len());
    for m in machines() {
        println!("  - {m}");
    }
    println!();

    // Figure 11 without the checker: the dangling read silently "works".
    println!("--- Figure 11 without the checker ---");
    let mut plain = PySession::new();
    let mut printed = (String::new(), String::new());
    let out = plain.run(|env| {
        let pythons = build_string_list(env, &["Eric", "Graham", "John"])?;
        let first = env.py_list_get_item(pythons, 0)?;
        printed.0 = format!("1. first = {}.", env.py_string_as_string(first)?);
        env.py_decref(pythons)?;
        // BUG: dereference of now-invalid borrowed reference.
        printed.1 = format!("2. first = {}.", env.py_string_as_string(first)?);
        Ok(())
    });
    println!("{}", printed.0);
    println!("{}", printed.1);
    println!("(outcome: {out:?} — the stale read returned freed memory's old contents)\n");

    // Figure 11 with the checker.
    println!("--- Figure 11 with the synthesized checker ---");
    let mut checked = PySession::with_checker();
    let out = checked.run(|env| dangle_bug(env).map(|_| ()));
    match out {
        PyRunOutcome::CheckerError(v) => {
            println!("checker error: {v}");
        }
        other => println!("UNEXPECTED: {other:?}"),
    }
    println!();

    // The fixed program is clean (no false positives).
    println!("--- fixed variant under the checker ---");
    let mut fixed = PySession::with_checker();
    let out = fixed.run(|env| dangle_bug_fixed(env).map(|_| ()));
    println!("outcome: {out:?}");
    println!("shutdown leaks: {:?}", fixed.shutdown());
    println!();

    // The other constraint classes.
    println!("--- GIL constraint ---");
    let mut s = PySession::with_checker();
    let out = s.run(|env| {
        env.py_eval_save_thread()?; // release the GIL for blocking I/O...
        let _ = env.py_list_new()?; // ...and call the API without it.
        Ok(())
    });
    println!("outcome: {out:?}\n");

    println!("--- exception-state constraint ---");
    let mut s = PySession::with_checker();
    let out = s.run(|env| {
        env.py_err_set_string("TypeError", "bad argument")?;
        let _ = env.py_list_new()?; // sensitive call with exception pending
        Ok(())
    });
    println!("outcome: {out:?}\n");

    // The Python/C coverage matrix (the Section 6.3 analogue).
    println!("--- Python/C microbenchmark coverage ---");
    let mut rows = Vec::new();
    let mut detected = 0;
    for s in py_scenarios() {
        let raw = run_py_scenario(&s, false);
        let checked = run_py_scenario(&s, true);
        if checked == minipy::PyBehavior::Detected {
            detected += 1;
        }
        rows.push(vec![
            s.name.to_string(),
            s.machine.to_string(),
            raw.to_string(),
            checked.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["microbenchmark", "machine", "plain CPython", "checker"],
            &rows
        )
    );
    println!(
        "checker coverage: {detected}/{} (plain interpreter: 0 diagnoses)\n",
        py_scenarios().len()
    );

    println!("--- leak sweep at Py_Finalize ---");
    let mut s = PySession::with_checker();
    let _ = s.run(|env| {
        let _leaked = env.py_string_from_string("never released")?;
        Ok(())
    });
    for v in s.shutdown() {
        println!("shutdown: {v}");
    }
}
