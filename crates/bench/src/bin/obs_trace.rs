//! Exports a recorded run of the churn workload: Chrome tracing JSON
//! (load it at `chrome://tracing` or `ui.perfetto.dev`), the plain-text
//! event dump, and the metrics snapshot.
//!
//! ```text
//! cargo run --release -p jinn-bench --bin obs_trace            # stdout summary
//! cargo run --release -p jinn-bench --bin obs_trace trace.json # + JSON file
//! ```

use jinn_bench::env_u64;
use jinn_bench::obs::ChurnHarness;
use jinn_obs::{Recorder, DEFAULT_RING_CAPACITY};

fn main() {
    let calls = env_u64("JINN_CALLS", 4) as u32;
    let strings = env_u64("JINN_STRINGS", 16) as u32;
    let mut harness = ChurnHarness::new(Recorder::enabled(DEFAULT_RING_CAPACITY), strings);
    for _ in 0..calls {
        harness.run_once();
    }

    let recorder = harness.session().recorder();
    let chrome = recorder.chrome_trace().expect("recorder enabled");
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &chrome).expect("write trace file");
            eprintln!(
                "wrote {} bytes of Chrome trace JSON to {path}",
                chrome.len()
            );
        }
        None => println!("{chrome}"),
    }

    let snapshot = recorder.snapshot().expect("recorder enabled");
    eprintln!();
    eprintln!("{}", snapshot.render());
    eprintln!(
        "{} events recorded ({} retained in the ring)",
        recorder.total_events(),
        recorder.events().len()
    );
}
