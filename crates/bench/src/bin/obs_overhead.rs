//! Measures the cost of the observability recorder on a JNI-heavy
//! workload: recorder disabled (the production default) vs recorder
//! enabled with the default ring.
//!
//! ```text
//! cargo run --release -p jinn-bench --bin obs_overhead
//! JINN_CALLS=500 JINN_TRIALS=7 cargo run --release -p jinn-bench --bin obs_overhead
//! ```
//!
//! Prints a JSON document (the `BENCH_obs_overhead.json` artifact) on
//! stdout.

use jinn_bench::env_u64;
use jinn_bench::obs::{median_nanos, time_churn};
use jinn_obs::{Recorder, DEFAULT_RING_CAPACITY};

fn main() {
    let calls = env_u64("JINN_CALLS", 200) as u32;
    let strings = env_u64("JINN_STRINGS", 64) as u32;
    let trials = (env_u64("JINN_TRIALS", 5) as usize).max(1);

    // Warm-up, excluded from measurement.
    time_churn(Recorder::disabled(), calls.min(20), strings);

    let mut disabled = Vec::with_capacity(trials);
    let mut enabled = Vec::with_capacity(trials);
    for _ in 0..trials {
        disabled.push(time_churn(Recorder::disabled(), calls, strings).as_nanos());
        enabled
            .push(time_churn(Recorder::enabled(DEFAULT_RING_CAPACITY), calls, strings).as_nanos());
    }
    let med_off = median_nanos(disabled.clone());
    let med_on = median_nanos(enabled.clone());
    let ratio = med_on as f64 / med_off as f64;
    let spread = |samples: &[u128]| {
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        (max as f64 - min as f64) / min as f64
    };
    // "Within noise" = the on/off gap is no larger than the run-to-run
    // spread of the disabled treatment itself.
    let noise = spread(&disabled).max(spread(&enabled));

    let list = |samples: &[u128]| {
        samples
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("{{");
    println!(
        "  \"benchmark\": \"jni-churn (strings across the JNI seam, Jinn checker attached)\","
    );
    println!("  \"native_calls_per_trial\": {calls},");
    println!("  \"jni_roundtrips_per_call\": {strings},");
    println!("  \"trials\": {trials},");
    println!("  \"ring_capacity\": {DEFAULT_RING_CAPACITY},");
    println!("  \"recorder_disabled_nanos\": [{}],", list(&disabled));
    println!("  \"recorder_enabled_nanos\": [{}],", list(&enabled));
    println!("  \"median_disabled_nanos\": {med_off},");
    println!("  \"median_enabled_nanos\": {med_on},");
    println!("  \"enabled_over_disabled\": {ratio:.4},");
    println!("  \"trial_noise_spread\": {noise:.4},");
    println!(
        "  \"enabled_within_noise\": {},",
        (ratio - 1.0).abs() <= noise
    );
    println!(
        "  \"note\": \"the disabled recorder (the default) adds one Option branch per \
         instrumentation site: no clock reads, no allocation, no ring writes\""
    );
    println!("}}");
}
