//! Measures the cost of the observability recorder on a JNI-heavy
//! workload: recorder disabled (the production default) vs recorder
//! enabled with the default ring and the full trace policy.
//!
//! ```text
//! cargo run --release -p jinn-bench --bin obs_overhead
//! JINN_CALLS=500 JINN_TRIALS=7 cargo run --release -p jinn-bench --bin obs_overhead
//! JINN_OBS_MAX_OVERHEAD=1.5 cargo run --release -p jinn-bench --bin obs_overhead
//! ```
//!
//! Prints a JSON document (the `BENCH_obs_overhead.json` artifact) on
//! stdout. `JINN_WARMUP` full-scale warm-up trials of *each* treatment
//! run first and are excluded from the medians (JIT-free Rust still
//! needs its allocator, page tables, and branch predictors warm). If
//! the measured trials spread by more than `JINN_MAX_NOISE` the run
//! aborts without printing an artifact — a noisy artifact is worse
//! than none. If `JINN_OBS_MAX_OVERHEAD` is set, the run fails when
//! the enabled/disabled ratio exceeds it — the CI regression gate.

use jinn_bench::env_u64;
use jinn_bench::obs::{median_nanos, time_churn};
use jinn_obs::{Recorder, DEFAULT_RING_CAPACITY};

fn main() {
    let calls = env_u64("JINN_CALLS", 200) as u32;
    let strings = env_u64("JINN_STRINGS", 64) as u32;
    let trials = (env_u64("JINN_TRIALS", 5) as usize).max(1);
    let warmup = env_u64("JINN_WARMUP", 2) as usize;
    let max_noise = std::env::var("JINN_MAX_NOISE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.5);
    let gate = std::env::var("JINN_OBS_MAX_OVERHEAD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    // Warm-up at full scale, both treatments, excluded from measurement.
    for _ in 0..warmup {
        time_churn(Recorder::disabled(), calls, strings);
        time_churn(Recorder::enabled(DEFAULT_RING_CAPACITY), calls, strings);
    }

    let mut disabled = Vec::with_capacity(trials);
    let mut enabled = Vec::with_capacity(trials);
    for _ in 0..trials {
        disabled.push(time_churn(Recorder::disabled(), calls, strings).as_nanos());
        enabled
            .push(time_churn(Recorder::enabled(DEFAULT_RING_CAPACITY), calls, strings).as_nanos());
    }
    let med_off = median_nanos(disabled.clone());
    let med_on = median_nanos(enabled.clone());
    let ratio = med_on as f64 / med_off as f64;
    let spread = |samples: &[u128]| {
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        (max as f64 - min as f64) / min as f64
    };
    let noise = spread(&disabled).max(spread(&enabled));
    assert!(
        noise <= max_noise,
        "trial spread {noise:.4} exceeds JINN_MAX_NOISE={max_noise}: \
         the machine is too noisy for a trustworthy artifact; re-run \
         (or raise JINN_MAX_NOISE if a rough number is acceptable)"
    );

    let list = |samples: &[u128]| {
        samples
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("{{");
    println!(
        "  \"benchmark\": \"jni-churn (strings across the JNI seam, Jinn checker attached)\","
    );
    println!("  \"native_calls_per_trial\": {calls},");
    println!("  \"jni_roundtrips_per_call\": {strings},");
    println!("  \"trials\": {trials},");
    println!("  \"warmup_trials_excluded\": {warmup},");
    println!("  \"ring_capacity\": {DEFAULT_RING_CAPACITY},");
    println!("  \"trace_policy\": \"full (every label traced, latency timers on)\",");
    println!("  \"recorder_disabled_nanos\": [{}],", list(&disabled));
    println!("  \"recorder_enabled_nanos\": [{}],", list(&enabled));
    println!("  \"median_disabled_nanos\": {med_off},");
    println!("  \"median_enabled_nanos\": {med_on},");
    println!("  \"enabled_over_disabled\": {ratio:.4},");
    println!("  \"trial_noise_spread\": {noise:.4},");
    println!(
        "  \"enabled_within_noise\": {},",
        (ratio - 1.0).abs() <= noise
    );
    println!(
        "  \"note\": \"the disabled recorder (the default) adds one Option branch per \
         instrumentation site; enabled, every site encodes a fixed-width record into the \
         thread's private SPSC ring by pre-interned label id\""
    );
    println!("}}");

    if let Some(max) = gate {
        assert!(
            ratio <= max,
            "enabled/disabled overhead {ratio:.4} exceeds the JINN_OBS_MAX_OVERHEAD={max} gate"
        );
        eprintln!("overhead gate: {ratio:.4} <= {max} ok");
    }
}
