//! Ablation study: the checking-cost contribution of each of the eleven
//! state machines, measured by disabling one machine at a time on the
//! Table 3 workload (a design-choice experiment DESIGN.md calls out;
//! the paper reports only the aggregate 4% checking cost).
//!
//! ```text
//! cargo run --release -p jinn-bench --bin ablation
//! JINN_SCALE=200 JINN_TRIALS=5 cargo run --release -p jinn-bench --bin ablation
//! ```

use std::time::Instant;

use jinn_bench::{env_u64, render_table};
use jinn_core::JinnConfig;
use jinn_vendors::Vendor;
use jinn_workloads::{benchmark, build_workload};
use minijni::Session;

fn measure(disabled: Option<&'static str>, target: u64, trials: usize) -> f64 {
    let mut times = Vec::new();
    for _ in 0..trials {
        let mut vm = Vendor::HotSpot.vm();
        vm.jvm_mut().set_auto_gc_period(Some(4096));
        let (entry, args) = build_workload(&mut vm, 0x00AB_1A7E);
        let thread = vm.jvm().main_thread();
        let mut session = Session::new(vm);
        let config = JinnConfig {
            disabled_machines: disabled.into_iter().collect(),
            ..Default::default()
        };
        jinn_core::install_with_config(&mut session, config);
        let start = Instant::now();
        while session.vm().stats().total() < target {
            let outcome = session.run_native(thread, entry, &args);
            assert!(matches!(outcome, minijni::RunOutcome::Completed(_)));
        }
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    times[times.len() / 2]
}

fn main() {
    let scale = env_u64("JINN_SCALE", 200);
    let trials = env_u64("JINN_TRIALS", 5) as usize;
    let spec = benchmark("jack").expect("tabulated");
    let target = (spec.transitions / scale).max(1_000);
    println!(
        "Ablation: full Jinn vs Jinn-minus-one-machine on the `{}` workload",
        spec.name
    );
    println!("({target} transitions per run, median of {trials} trials)\n");

    let full = measure(None, target, trials);
    let machines: Vec<&'static str> = jinn_spec::machines()
        .iter()
        .map(|m| {
            // Leak the name to get a 'static str for the config.
            Box::leak(m.name().to_string().into_boxed_str()) as &'static str
        })
        .collect();

    let mut rows = Vec::new();
    for name in machines {
        let without = measure(Some(name), target, trials);
        let saved = (full - without) / full * 100.0;
        rows.push(vec![
            name.to_string(),
            format!("{:.1} ms", without * 1e3),
            format!("{saved:+.1}%"),
        ]);
    }
    rows.push(vec![
        "(full jinn)".to_string(),
        format!("{:.1} ms", full * 1e3),
        "—".to_string(),
    ]);
    println!(
        "{}",
        render_table(
            &["machine disabled", "median time", "time saved vs full"],
            &rows
        )
    );
    println!("Reading: machines whose removal saves the most time contribute the most");
    println!("checking cost; negative values are measurement noise (raise JINN_TRIALS).");
}
