//! Reproduces **Figure 10**: the time series of acquired local references
//! for the original and the fixed Subversion info callback.
//!
//! ```text
//! cargo run -p jinn-bench --bin figure10
//! ```

use jinn_workloads::subversion::{local_ref_timeseries, INFO_FIELDS};

fn sparkline(series: &[usize], cap: usize) -> String {
    series
        .iter()
        .map(|&v| {
            if v > cap {
                '#'
            } else {
                // Eight-level bar from the braille-free ASCII ramp.
                const RAMP: [char; 8] = ['.', ':', '-', '=', '+', '*', 'o', 'O'];
                RAMP[(v * 7 / cap.max(1)).min(7)]
            }
        })
        .collect()
}

fn main() {
    println!("Figure 10: acquired local references per JNI call in the Subversion");
    println!("info callback, original vs fixed (capacity guarantee = 16)\n");

    let original = local_ref_timeseries(false);
    let fixed = local_ref_timeseries(true);

    println!("call#  original  fixed");
    for i in 0..INFO_FIELDS {
        let o = original[i];
        let f = fixed[i];
        let marker = if o > 16 {
            "  <-- beyond the 16-reference pool"
        } else {
            ""
        };
        println!("{:>5}  {:>8}  {:>5}{}", i + 1, o, f, marker);
    }
    println!();
    println!("original: {}", sparkline(&original, 16));
    println!("fixed:    {}", sparkline(&fixed, 16));
    println!("('#' marks calls past the guaranteed pool; Jinn throws at the first)");
    println!();
    println!(
        "max live references — original: {}, fixed: {} (paper: the fixed program \"never exceeds 8\")",
        original.iter().max().unwrap(),
        fixed.iter().max().unwrap()
    );
}
