//! The replay CLI: record golden traces, validate them, replay them
//! under checker configurations, and diff the verdicts.
//!
//! ```text
//! replay record [--out DIR] [--verify] [PROGRAM...]   record traces (default: all)
//! replay check [--json] FILE...                       parse + checksum-validate
//! replay diff [--config LIST] [--json] [--expect-agree] FILE...
//!                                                     differential verdicts
//! replay stats [--json] FILE...                       per-trace summaries
//!                                                     (+ static-discharge audit)
//! replay bench                                        BENCH_replay.json on stdout
//! ```
//!
//! Exit status: 0 clean, 1 on any validation failure, replay divergence,
//! or (under `--expect-agree`) verdict disagreement, 2 on usage errors.
//! `--json` switches `check`/`diff` to one JSON object per line.
//!
//! Configurations for `--config` are comma-separated labels:
//! `hotspot`, `j9`, `xcheck:hotspot`, `xcheck:j9`, `jinn`, `jinn:j9`.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use jinn_bench::env_u64;
use jinn_replay::{
    case_studies, check_version, diff_trace, microbench_programs, program_by_name, record_program,
    replay_trace, standard_configs, trace_discharge, RecordVendor, ReplayConfig, Trace,
    TraceWriter, FORMAT_VERSION,
};
use jinn_vendors::Vendor;
use jinn_workloads::{benchmark, build_workload};
use minijni::{RunOutcome, Session, Vm};
use minijvm::JValue;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("bench") => cmd_bench(),
        _ => {
            eprintln!("usage: replay <record|check|diff|stats|bench> [args...]");
            2
        }
    };
    std::process::exit(code);
}

// ---- record ------------------------------------------------------------

fn cmd_record(args: &[String]) -> i32 {
    let mut out_dir = "tests/corpus".to_string();
    let mut verify = false;
    let mut names = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(d) => out_dir = d.clone(),
                None => {
                    eprintln!("--out needs a directory");
                    return 2;
                }
            },
            "--verify" => verify = true,
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = microbench_programs()
            .iter()
            .chain(case_studies().iter())
            .map(|p| p.name.clone())
            .collect();
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("replay record: cannot create {out_dir}: {e}");
        return 1;
    }
    let mut failures = 0;
    for name in &names {
        let Some(program) = program_by_name(name) else {
            eprintln!("replay record: unknown program `{name}`");
            failures += 1;
            continue;
        };
        let bytes = record_program(&program);
        if verify {
            let again = record_program(&program);
            if bytes != again {
                eprintln!("replay record: {name}: re-recording is NOT byte-identical");
                failures += 1;
                continue;
            }
        }
        let path = format!("{out_dir}/{name}.jtrace");
        match std::fs::write(&path, &bytes) {
            Ok(()) => println!(
                "recorded {path}: {} bytes{}",
                bytes.len(),
                if verify {
                    " (verified deterministic)"
                } else {
                    ""
                }
            ),
            Err(e) => {
                eprintln!("replay record: {path}: {e}");
                failures += 1;
            }
        }
    }
    i32::from(failures > 0)
}

// ---- check -------------------------------------------------------------

/// Minimal JSON string escaping for file names and error messages.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates one trace file; returns the `ok` line or the `FAIL` message
/// (plain text or one JSON object, per `json`).
fn check_one(file: &str, json: bool) -> Result<String, String> {
    let fail = |e: String| {
        if json {
            format!(
                "{{\"file\": {}, \"ok\": false, \"error\": {}, \"reader_format\": {FORMAT_VERSION}}}",
                json_str(file),
                json_str(&e)
            )
        } else {
            format!("FAIL {file}: {e} (reader is at format v{FORMAT_VERSION})")
        }
    };
    let bytes = std::fs::read(file).map_err(|e| fail(e.to_string()))?;
    check_version(&bytes)
        .and_then(|_| Trace::parse(&bytes))
        .map(|trace| {
            if json {
                format!(
                    "{{\"file\": {}, \"ok\": true, \"program\": {}, \"format\": {}, \"events\": {}}}",
                    json_str(file),
                    json_str(trace.program()),
                    trace.version,
                    trace.events.len()
                )
            } else {
                format!(
                    "ok {file}: program={} format=v{} events={}",
                    trace.program(),
                    trace.version,
                    trace.events.len()
                )
            }
        })
        .map_err(|e| fail(e.to_string()))
}

fn cmd_check(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let files: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
    if files.is_empty() {
        eprintln!("usage: replay check [--json] FILE...");
        return 2;
    }
    // One verifier thread per trace: each thread reads and parses its own
    // file, so nothing but the path crosses in and nothing but the verdict
    // string crosses out. Results are reported in argument order so the
    // output is deterministic regardless of which verifier finishes first.
    let verdicts: Vec<Result<String, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = files
            .iter()
            .map(|file| scope.spawn(move || check_one(file, json)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("FAIL: verifier thread panicked".to_string()))
            })
            .collect()
    });
    let mut failures = 0;
    for verdict in verdicts {
        match verdict {
            Ok(line) => println!("{line}"),
            Err(line) => {
                if json {
                    println!("{line}");
                } else {
                    eprintln!("{line}");
                }
                failures += 1;
            }
        }
    }
    i32::from(failures > 0)
}

// ---- diff --------------------------------------------------------------

fn parse_configs(list: &str) -> Option<Vec<ReplayConfig>> {
    list.split(',').map(ReplayConfig::parse).collect()
}

/// One diff report as a JSON object line.
fn diff_json(file: &str, report: &jinn_replay::DiffReport) -> String {
    let outcomes: Vec<String> = report
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"config\": {}, \"behavior\": {}, \"message\": {}, \
                 \"events_replayed\": {}, \"divergences\": {}}}",
                json_str(&o.label),
                json_str(&o.behavior.to_string()),
                o.message.as_deref().map_or("null".to_string(), json_str),
                o.events_replayed,
                o.divergences
            )
        })
        .collect();
    format!(
        "{{\"file\": {}, \"ok\": true, \"program\": {}, \"agree\": {}, \
         \"distinct_behaviors\": {}, \"divergences\": {}, \"outcomes\": [{}]}}",
        json_str(file),
        json_str(&report.program),
        report.agree(),
        report.distinct_behaviors(),
        report.outcomes.iter().map(|o| o.divergences).sum::<u64>(),
        outcomes.join(", ")
    )
}

fn cmd_diff(args: &[String]) -> i32 {
    let mut configs = standard_configs();
    let mut files = Vec::new();
    let mut json = false;
    let mut expect_agree = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => match it.next().map(|l| parse_configs(l)) {
                Some(Some(c)) if !c.is_empty() => configs = c,
                _ => {
                    eprintln!("--config needs a comma-separated list of labels");
                    return 2;
                }
            },
            "--json" => json = true,
            "--expect-agree" => expect_agree = true,
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: replay diff [--config LIST] [--json] [--expect-agree] FILE...");
        return 2;
    }
    let mut failures = 0;
    for file in &files {
        let report = std::fs::read(file)
            .map_err(|e| e.to_string())
            .and_then(|bytes| Trace::parse(&bytes).map_err(|e| e.to_string()))
            .and_then(|trace| diff_trace(&trace, &configs).map_err(|e| e.to_string()));
        match report {
            Ok(r) => {
                if json {
                    println!("{}", diff_json(file, &r));
                } else {
                    print!("{}", r.render());
                }
                // A replay divergence means the trace no longer re-drives
                // faithfully under some configuration — that is a mismatch,
                // not a verdict difference, and always fails the run.
                if r.outcomes.iter().any(|o| o.divergences > 0) {
                    if !json {
                        eprintln!("FAIL {file}: replay diverged from the recorded trace");
                    }
                    failures += 1;
                } else if expect_agree && !r.agree() {
                    if !json {
                        eprintln!("FAIL {file}: configurations disagree (--expect-agree)");
                    }
                    failures += 1;
                }
            }
            Err(e) => {
                if json {
                    println!(
                        "{{\"file\": {}, \"ok\": false, \"error\": {}}}",
                        json_str(file),
                        json_str(&e)
                    );
                } else {
                    eprintln!("FAIL {file}: {e}");
                }
                failures += 1;
            }
        }
    }
    i32::from(failures > 0)
}

// ---- stats -------------------------------------------------------------

/// One per-trace stats report as a JSON object line, including the
/// static-discharge audit: which machine transitions could have been
/// compiled out for this trace's exact call-site set.
fn stats_json(file: &str, trace: &Trace, byte_len: usize) -> String {
    let counts: Vec<String> = trace
        .event_counts()
        .into_iter()
        .map(|(k, n)| format!("{}: {n}", json_str(k)))
        .collect();
    let report = trace_discharge(trace);
    let machines: Vec<String> = report
        .machines
        .iter()
        .map(|m| {
            format!(
                "{{\"machine\": {}, \"transitions\": {}, \"discharged\": {}, \"inactive\": {}}}",
                json_str(&m.machine),
                m.total_transitions,
                m.discharged.len(),
                m.inactive
            )
        })
        .collect();
    let inactive: Vec<String> = report
        .inactive_machines()
        .iter()
        .map(|m| json_str(m))
        .collect();
    format!(
        "{{\"file\": {}, \"ok\": true, \"program\": {}, \"format\": {}, \"bytes\": {byte_len}, \
         \"events\": {}, \"event_counts\": {{{}}}, \"discharge\": {{\
         \"called_functions\": {}, \"total_transitions\": {}, \"total_discharged\": {}, \
         \"inactive_machines\": [{}], \"machines\": [{}]}}}}",
        json_str(file),
        json_str(trace.program()),
        trace.version,
        trace.events.len(),
        counts.join(", "),
        report.manifest_functions,
        report.total_transitions(),
        report.total_discharged(),
        inactive.join(", "),
        machines.join(", "),
    )
}

fn cmd_stats(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let files: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
    if files.is_empty() {
        eprintln!("usage: replay stats [--json] FILE...");
        return 2;
    }
    let mut failures = 0;
    for file in &files {
        match std::fs::read(file)
            .map_err(|e| e.to_string())
            .and_then(|b| {
                Trace::parse(&b)
                    .map(|t| {
                        if json {
                            stats_json(file, &t, b.len())
                        } else {
                            let mut s = t.summary(b.len());
                            let report = trace_discharge(&t);
                            s.push_str(&format!(
                                "discharge audit: {} of {} transitions dischargeable; \
                             inactive machines: {:?}\n",
                                report.total_discharged(),
                                report.total_transitions(),
                                report.inactive_machines(),
                            ));
                            s
                        }
                    })
                    .map_err(|e| e.to_string())
            }) {
            Ok(out) => {
                if json {
                    println!("{out}");
                } else {
                    print!("{out}");
                }
            }
            Err(e) => {
                if json {
                    println!(
                        "{{\"file\": {}, \"ok\": false, \"error\": {}}}",
                        json_str(file),
                        json_str(&e)
                    );
                } else {
                    eprintln!("FAIL {file}: {e}");
                }
                failures += 1;
            }
        }
    }
    i32::from(failures > 0)
}

// ---- bench -------------------------------------------------------------

/// Runs the `jack`-density workload until `target` transitions, with or
/// without a recording tap, returning elapsed time and the trace bytes
/// when recording.
fn run_jack(target: u64, record: bool) -> (Duration, u64, Option<Vec<u8>>) {
    let mut vm = Vm::new(Box::new(RecordVendor));
    vm.jvm_mut().set_auto_gc_period(Some(4096));
    let baseline = vm.jvm().registry().class_count();
    let (entry, args) = build_workload(&mut vm, 0x1234_5678);

    let writer = if record {
        let writer = Rc::new(RefCell::new(TraceWriter::new()));
        {
            let mut w = writer.borrow_mut();
            w.meta("program", "jack");
            w.meta("leaks", "false");
            w.meta("gc_period", "4096");
            w.def_classes(vm.jvm(), baseline);
            for v in &args {
                if let JValue::Ref(r) = v {
                    w.seed(vm.jvm(), *r);
                }
            }
        }
        Some(writer)
    } else {
        None
    };

    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    if let Some(w) = &writer {
        session.set_tap(Some(w.clone()));
    }

    let start = Instant::now();
    loop {
        let outcome = session.run_native(thread, entry, &args);
        assert!(
            matches!(outcome, RunOutcome::Completed(_)),
            "workload must be bug-free: {outcome:?}"
        );
        if session.vm().stats().total() >= target {
            break;
        }
    }
    let elapsed = start.elapsed();
    let transitions = session.vm().stats().total();
    session.set_tap(None);
    drop(session);

    let bytes = writer.map(|w| {
        Rc::try_unwrap(w)
            .expect("tap detached; sole writer handle")
            .into_inner()
            .finish()
    });
    (elapsed, transitions, bytes)
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

#[allow(clippy::too_many_lines)]
fn cmd_bench() -> i32 {
    let spec = benchmark("jack").expect("jack is a Table 3 benchmark");
    let scale = env_u64("JINN_SCALE", 100).max(1);
    let trials = (env_u64("JINN_TRIALS", 5) as usize).max(1);
    let target = (spec.transitions / scale).max(100);

    // Warm-up, excluded from measurement.
    run_jack(target.min(1000), false);

    let mut off = Vec::with_capacity(trials);
    let mut on = Vec::with_capacity(trials);
    let mut trace_bytes = Vec::new();
    let mut transitions = 0;
    for _ in 0..trials {
        let (d, t, _) = run_jack(target, false);
        off.push(d.as_nanos());
        let (d, t2, bytes) = run_jack(target, true);
        on.push(d.as_nanos());
        transitions = t.max(t2);
        trace_bytes = bytes.expect("record mode returns bytes");
    }
    let med_off = median(off.clone());
    let med_on = median(on.clone());
    let record_ratio = med_on as f64 / med_off as f64;

    // Replay throughput: re-drive the recorded trace through a bare
    // HotSpot stack and through full Jinn, measuring re-issued calls/sec.
    let trace = Trace::parse(&trace_bytes).expect("fresh recording parses");
    let mut replay_nanos = Vec::with_capacity(trials);
    let mut events = 0u64;
    let mut divergences = 0u64;
    for _ in 0..trials {
        let start = Instant::now();
        let outcome =
            replay_trace(&trace, &ReplayConfig::Default(Vendor::HotSpot)).expect("replayable");
        replay_nanos.push(start.elapsed().as_nanos());
        events = outcome.events_replayed;
        divergences = outcome.divergences;
    }
    let med_replay = median(replay_nanos.clone());
    let events_per_sec = events as f64 / (med_replay as f64 / 1e9);

    let jinn_start = Instant::now();
    let jinn = replay_trace(&trace, &ReplayConfig::Jinn(Vendor::HotSpot)).expect("replayable");
    let jinn_events_per_sec =
        jinn.events_replayed as f64 / jinn_start.elapsed().as_secs_f64().max(1e-9);

    let list = |samples: &[u128]| {
        samples
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("{{");
    println!("  \"benchmark\": \"jack-density workload (Table 3 transition mix)\",");
    println!("  \"paper_transitions\": {},", spec.transitions);
    println!("  \"scale\": {scale},");
    println!("  \"transitions_per_trial\": {transitions},");
    println!("  \"trials\": {trials},");
    println!("  \"trace_bytes\": {},", trace_bytes.len());
    println!("  \"trace_events\": {},", trace.events.len());
    println!("  \"recorder_off_nanos\": [{}],", list(&off));
    println!("  \"recorder_on_nanos\": [{}],", list(&on));
    println!("  \"median_off_nanos\": {med_off},");
    println!("  \"median_on_nanos\": {med_on},");
    println!("  \"record_over_baseline\": {record_ratio:.4},");
    println!("  \"record_within_2x\": {},", record_ratio <= 2.0);
    println!("  \"replay_nanos\": [{}],", list(&replay_nanos));
    println!("  \"replay_events\": {events},");
    println!("  \"replay_divergences\": {divergences},");
    println!("  \"replay_events_per_sec\": {events_per_sec:.0},");
    println!(
        "  \"replay_at_least_100k_per_sec\": {},",
        events_per_sec >= 100_000.0
    );
    println!("  \"jinn_replay_events_per_sec\": {jinn_events_per_sec:.0},");
    println!(
        "  \"note\": \"record = TraceWriter tapped at the Interpose seam; replay = scripted \
         bodies re-issuing recorded JNI calls through a bare HotSpot stack\""
    );
    println!("}}");
    i32::from(!(record_ratio <= 2.0 && events_per_sec >= 100_000.0) && cfg!(not(debug_assertions)))
}
