//! Static discharge report for the benchmark workload mix.
//!
//! Runs the registry-driven discharge pass (`jinn_core::discharge`)
//! with the Table 3 call-site manifest against all eleven machines and
//! writes the machine-readable report to `DISCHARGE_bench.json`.
//!
//! ```text
//! cargo run --release -p jinn-bench --bin discharge
//! ```

use jinn_bench::render_table;
use jinn_core::{discharge, WorkloadManifest};

fn main() {
    let manifest = WorkloadManifest::new(
        "table3-mix",
        jinn_workloads::TABLE3_CALLED_FUNCTIONS.iter().copied(),
    );
    assert!(
        manifest.unknown_functions().is_empty(),
        "manifest names unknown functions: {:?}",
        manifest.unknown_functions()
    );
    let machines = jinn_spec::machines();
    let report = discharge(&machines, &manifest);

    println!("Static discharge: Table 3 workload mix vs the eleven machines");
    println!("(manifest: {} callable JNI functions)\n", manifest.len());
    let rows: Vec<Vec<String>> = report
        .machines
        .iter()
        .map(|m| {
            let reasons: Vec<String> = m
                .discharged
                .iter()
                .map(|d| format!("{} ({})", d.transition, d.reason.as_str()))
                .collect();
            vec![
                m.machine.clone(),
                m.total_transitions.to_string(),
                m.discharged.len().to_string(),
                if m.inactive { "yes" } else { "" }.to_string(),
                reasons.join(", "),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["machine", "transitions", "discharged", "inactive", "detail"],
            &rows,
        )
    );
    println!(
        "{} of {} transitions discharged; inactive machines: {:?}",
        report.total_discharged(),
        report.total_transitions(),
        report.inactive_machines(),
    );

    std::fs::write("DISCHARGE_bench.json", report.to_json()).expect("write DISCHARGE_bench.json");
    println!("wrote DISCHARGE_bench.json");
}
