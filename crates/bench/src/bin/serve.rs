//! The jinn-serve CLI: run the daemon, stream traces to it, query it,
//! smoke-test it, and benchmark a fleet of short-lived clients.
//!
//! ```text
//! serve daemon [--listen ADDR] [--workers N]      run until stdin closes
//! serve ingest ADDR [--tenant T] [--config C] FILE...
//!                                                 stream traces, print acks
//! serve query ADDR JSON...                        one request line each
//! serve smoke [--listen ADDR]                     3-trace socket round trip,
//!                                                 verdicts vs local replay
//! serve bench                                     BENCH_serve.json on stdout
//! serve bench-discharge                           BENCH_serve_discharge.json
//! serve bench-streaming                           BENCH_serve_streaming.json
//! ```
//!
//! `bench` knobs (environment): `JINN_SERVE_SESSIONS` (default 1000),
//! `JINN_SERVE_CLIENTS` (default 8), `JINN_SERVE_WORKERS` (default 4),
//! `JINN_SERVE_MIN_SESSIONS_PER_SEC` (throughput gate, release only,
//! default 25).
//!
//! `bench-streaming` knobs: `JINN_SERVE_STREAM_SESSIONS` (default 64),
//! `JINN_SERVE_STREAM_CHUNK` (append chunk bytes, default 2048),
//! `JINN_SERVE_STREAM_GAP_MICROS` (pacing gap between appends, default
//! 200), `JINN_SERVE_STREAM_CALLS` / `JINN_SERVE_STREAM_STRINGS`
//! (recorded drip-workload size: native calls × string round-trips per
//! call, defaults 8 × 200), `JINN_SERVE_STREAMING_MIN_SPEEDUP`
//! (seal-to-verdict p50 ratio floor, release only, default 5).
//!
//! `bench-discharge` knobs: `JINN_SERVE_DISCHARGE_ITERS` (default 200),
//! `JINN_SERVE_DISCHARGE_BALLAST` (ballast entities per machine, default
//! 60000), `JINN_SERVE_DISCHARGE_ENTITIES` (per-session entities per
//! machine, default 256), `JINN_SERVE_DISCHARGE_MIN_SPEEDUP` (percent
//! floor on the specialized-pool rollup speedup, release only, default
//! 25).
//!
//! Exit status: 0 clean, 1 on mismatch or gate failure, 2 on usage.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jinn_bench::env_u64;
use jinn_replay::{
    case_studies, encode_ingest, microbench_programs, replay_trace, ReplayConfig, Trace,
};
use jinn_serve::{Daemon, ServeConfig, SocketServer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("daemon") => cmd_daemon(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("smoke") => cmd_smoke(),
        Some("bench") => cmd_bench(),
        Some("bench-discharge") => cmd_bench_discharge(),
        Some("bench-streaming") => cmd_bench_streaming(),
        _ => {
            eprintln!(
                "usage: serve <daemon|ingest|query|smoke|bench|bench-discharge|bench-streaming> \
                 [args...]"
            );
            2
        }
    };
    std::process::exit(code);
}

// ---- shared client plumbing --------------------------------------------

/// Streams one trace as one session over a fresh connection; returns the
/// seal-ack JSON line (the daemon answers once the session is terminal).
fn ingest_session(
    addr: &str,
    session: u64,
    tenant: &str,
    config: &str,
    bytes: &[u8],
) -> std::io::Result<String> {
    let stream_bytes = encode_ingest(session, tenant, config, bytes, 64 * 1024);
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(&stream_bytes)?;
    conn.flush()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim().to_string())
}

/// One query round trip on a fresh connection.
fn query_line(addr: &str, request: &str) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(request.as_bytes())?;
    conn.write_all(b"\n")?;
    conn.flush()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim().to_string())
}

/// Scans a JSON line for `"key": <integer>` without a full parser — the
/// smoke/bench client only needs scalar counters out of known-shape
/// responses.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_true(line: &str, key: &str) -> bool {
    let needle = format!("\"{key}\":");
    line.find(&needle)
        .map(|at| line[at + needle.len()..].trim_start().starts_with("true"))
        .unwrap_or(false)
}

// ---- daemon ------------------------------------------------------------

fn cmd_daemon(args: &[String]) -> i32 {
    let mut listen = "127.0.0.1:7077".to_string();
    let mut workers = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => match it.next() {
                Some(v) => listen = v.clone(),
                None => {
                    eprintln!("--listen needs an address");
                    return 2;
                }
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => {
                    eprintln!("--workers needs a number");
                    return 2;
                }
            },
            other => {
                eprintln!("serve daemon: unknown argument `{other}`");
                return 2;
            }
        }
    }
    let daemon = Daemon::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    });
    let server = match SocketServer::bind(daemon.handle(), &listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve daemon: bind {listen}: {e}");
            return 1;
        }
    };
    println!("jinn-serve listening on {}", server.addr());
    println!("(close stdin to stop)");
    // Park until stdin closes — the natural lifetime for a foreground
    // daemon under a test harness or a shell.
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).is_ok_and(|n| n > 0) {
        sink.clear();
    }
    server.shutdown();
    daemon.shutdown();
    0
}

// ---- ingest ------------------------------------------------------------

fn cmd_ingest(args: &[String]) -> i32 {
    let mut tenant = "cli".to_string();
    let mut config = String::new();
    let mut addr = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tenant" => match it.next() {
                Some(v) => tenant = v.clone(),
                None => {
                    eprintln!("--tenant needs a value");
                    return 2;
                }
            },
            "--config" => match it.next() {
                Some(v) => config = v.clone(),
                None => {
                    eprintln!("--config needs a value");
                    return 2;
                }
            },
            other if addr.is_none() => addr = Some(other.to_string()),
            other => files.push(other.to_string()),
        }
    }
    let (Some(addr), false) = (addr, files.is_empty()) else {
        eprintln!("usage: serve ingest ADDR [--tenant T] [--config C] FILE...");
        return 2;
    };
    // Each invocation claims its own id range: repeated `serve ingest`
    // runs against one daemon must not collide on session ids.
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
        ^ u64::from(std::process::id());
    let base = jinn_serve::AUTO_SESSION_BASE + (nonce % (1 << 47));
    let mut failures = 0;
    for (i, file) in files.iter().enumerate() {
        let session = base + i as u64;
        let ack = std::fs::read(file)
            .and_then(|bytes| ingest_session(&addr, session, &tenant, &config, &bytes));
        match ack {
            Ok(line) => {
                println!("{file} -> session {session}: {line}");
                if !field_true(&line, "ok") || line.contains("\"state\":\"quarantined\"") {
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failures += 1;
            }
        }
    }
    i32::from(failures > 0)
}

// ---- query -------------------------------------------------------------

fn cmd_query(args: &[String]) -> i32 {
    let Some((addr, requests)) = args.split_first() else {
        eprintln!("usage: serve query ADDR JSON...");
        return 2;
    };
    if requests.is_empty() {
        eprintln!("usage: serve query ADDR JSON...");
        return 2;
    }
    for request in requests {
        match query_line(addr, request) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("FAIL: {e}");
                return 1;
            }
        }
    }
    0
}

// ---- smoke -------------------------------------------------------------

const SMOKE_TRACES: &[&str] = &["LocalRefDangling", "GlobalLeak", "ExceptionState"];

fn corpus_bytes(name: &str) -> Vec<u8> {
    let path = format!("tests/corpus/{name}.jtrace");
    std::fs::read(&path).unwrap_or_else(|e| panic!("{path}: {e} (run from the repo root)"))
}

/// The verdict multiset of a local replay under `jinn`:
/// (machine, function) → count.
fn local_verdicts(bytes: &[u8]) -> BTreeMap<(String, String), u64> {
    let trace = Trace::parse(bytes).expect("corpus trace parses");
    let outcome =
        replay_trace(&trace, &ReplayConfig::parse("jinn").expect("jinn config")).expect("replays");
    let mut set = BTreeMap::new();
    for v in &outcome.violations {
        *set.entry((v.machine.to_string(), v.function.clone()))
            .or_insert(0) += 1;
    }
    set
}

fn cmd_smoke() -> i32 {
    let daemon = Daemon::start(ServeConfig::default());
    let server = match SocketServer::bind(daemon.handle(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve smoke: bind: {e}");
            return 1;
        }
    };
    let addr = server.addr().to_string();
    let mut failures = 0;

    for (i, name) in SMOKE_TRACES.iter().enumerate() {
        let session = 1000 + i as u64;
        let bytes = corpus_bytes(name);
        let ack = match ingest_session(&addr, session, "smoke", "jinn", &bytes) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("FAIL {name}: ingest: {e}");
                failures += 1;
                continue;
            }
        };
        if !field_true(&ack, "ok") {
            eprintln!("FAIL {name}: seal ack: {ack}");
            failures += 1;
            continue;
        }

        // Compare the daemon's verdicts to a single-process replay:
        // total count, then one filtered count per (machine, function).
        let local = local_verdicts(&bytes);
        let total: u64 = local.values().sum();
        let line = match query_line(
            &addr,
            &format!("{{\"op\": \"query\", \"kind\": \"verdicts\", \"session\": {session}}}"),
        ) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("FAIL {name}: query: {e}");
                failures += 1;
                continue;
            }
        };
        let served_total = field_u64(&line, "count").unwrap_or(u64::MAX);
        if served_total != total {
            eprintln!("FAIL {name}: daemon has {served_total} verdicts, replay check has {total}");
            failures += 1;
            continue;
        }
        let mut ok = true;
        for ((machine, function), count) in &local {
            let request = format!(
                "{{\"op\": \"query\", \"kind\": \"verdicts\", \"session\": {session}, \
                 \"machine\": \"{machine}\", \"function\": \"{function}\"}}"
            );
            let line = query_line(&addr, &request).unwrap_or_default();
            let served = field_u64(&line, "count").unwrap_or(u64::MAX);
            if served != *count {
                eprintln!(
                    "FAIL {name}: {machine}/{function}: daemon {served}, replay check {count}"
                );
                ok = false;
            }
        }
        if ok {
            println!("ok {name}: session {session}, {total} verdicts match replay check");
        } else {
            failures += 1;
        }
    }

    // Fleet sanity over the socket.
    match query_line(&addr, "{\"op\": \"fleet\"}") {
        Ok(line) => {
            let judged = field_u64(&line, "judged").unwrap_or(0);
            let quarantined = field_u64(&line, "quarantined").unwrap_or(99);
            if judged == SMOKE_TRACES.len() as u64 && quarantined == 0 {
                println!("ok fleet: {line}");
            } else {
                eprintln!("FAIL fleet: {line}");
                failures += 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL fleet: {e}");
            failures += 1;
        }
    }

    server.shutdown();
    daemon.shutdown();
    i32::from(failures > 0)
}

// ---- bench -------------------------------------------------------------

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn cmd_bench() -> i32 {
    let sessions = env_u64("JINN_SERVE_SESSIONS", 1000).max(1);
    let clients = env_u64("JINN_SERVE_CLIENTS", 8).max(1) as usize;
    let workers = env_u64("JINN_SERVE_WORKERS", 4).max(1) as usize;
    let min_sessions_per_sec = env_u64("JINN_SERVE_MIN_SESSIONS_PER_SEC", 25);

    // The whole golden corpus, round-robin across the fleet.
    let traces: Arc<Vec<Vec<u8>>> = Arc::new(
        microbench_programs()
            .iter()
            .chain(case_studies().iter())
            .map(|p| corpus_bytes(&p.name))
            .collect(),
    );

    let daemon = Daemon::start(ServeConfig {
        workers,
        retention_bytes: 8 * 1024 * 1024,
        max_events_per_session: 64,
        ..ServeConfig::default()
    });
    let server = match SocketServer::bind(daemon.handle(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve bench: bind: {e}");
            return 1;
        }
    };
    let addr = server.addr().to_string();

    // Warm-up: one session end to end (synthesis cache, engine pool).
    let _ = ingest_session(&addr, 1, "warmup", "jinn", &traces[0]);

    let next = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        let addr = addr.clone();
        let traces = Arc::clone(&traces);
        let next = Arc::clone(&next);
        handles.push(std::thread::spawn(move || {
            // Each loop iteration is one short-lived client: fresh
            // connection, one session, one ack read, disconnect.
            let mut seal_micros = Vec::new();
            let mut first_micros = Vec::new();
            let mut events = 0u64;
            let mut errors = 0u64;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= sessions {
                    break;
                }
                let session = 1_000_000 + i;
                let tenant = format!("tenant-{client}");
                let bytes = &traces[i as usize % traces.len()];
                match ingest_session(&addr, session, &tenant, "jinn", bytes) {
                    Ok(ack) if field_true(&ack, "ok") => {
                        if let Some(us) = field_u64(&ack, "seal_to_verdict_micros") {
                            seal_micros.push(us);
                        }
                        if let Some(us) = field_u64(&ack, "first_frame_micros") {
                            first_micros.push(us);
                        }
                        events += field_u64(&ack, "events_replayed").unwrap_or(0);
                    }
                    _ => errors += 1,
                }
            }
            (seal_micros, first_micros, events, errors)
        }));
    }

    let mut seal_micros = Vec::new();
    let mut first_micros = Vec::new();
    let mut events = 0u64;
    let mut errors = 0u64;
    for h in handles {
        let (s, f, e, x) = h.join().expect("client thread");
        seal_micros.extend(s);
        first_micros.extend(f);
        events += e;
        errors += x;
    }
    let wall = start.elapsed();

    let fleet = daemon.handle().fleet();
    let pool = daemon.handle().pool_stats();
    server.shutdown();
    daemon.shutdown();

    seal_micros.sort_unstable();
    first_micros.sort_unstable();
    let sessions_per_sec = sessions as f64 / wall.as_secs_f64().max(1e-9);
    let events_per_sec = events as f64 / wall.as_secs_f64().max(1e-9);
    let p50 = percentile(&seal_micros, 0.50);
    let p99 = percentile(&seal_micros, 0.99);
    let first_p50 = percentile(&first_micros, 0.50);
    let first_p99 = percentile(&first_micros, 0.99);
    let gate_on = cfg!(not(debug_assertions));
    let pass = errors == 0 && (!gate_on || sessions_per_sec >= min_sessions_per_sec as f64);

    println!("{{");
    println!("  \"benchmark\": \"jinn-serve fleet ingest (golden corpus round-robin)\",");
    println!("  \"sessions\": {sessions},");
    println!("  \"clients\": {clients},");
    println!("  \"workers\": {workers},");
    println!("  \"wall_secs\": {:.3},", wall.as_secs_f64());
    println!("  \"sessions_per_sec\": {sessions_per_sec:.1},");
    println!("  \"events_rejudged\": {events},");
    println!("  \"events_rejudged_per_sec\": {events_per_sec:.0},");
    println!("  \"seal_to_verdict_p50_micros\": {p50},");
    println!("  \"seal_to_verdict_p99_micros\": {p99},");
    println!("  \"first_frame_to_verdict_p50_micros\": {first_p50},");
    println!("  \"first_frame_to_verdict_p99_micros\": {first_p99},");
    println!("  \"ingest_errors\": {errors},");
    println!("  \"fleet_judged\": {},", fleet.judged);
    println!("  \"fleet_quarantined\": {},", fleet.quarantined);
    println!("  \"fleet_purged_sessions\": {},", fleet.purged_sessions);
    println!("  \"history_bytes\": {},", fleet.history_bytes);
    println!("  \"pool_built\": {},", pool.built);
    println!("  \"pool_leases\": {},", pool.leases);
    println!("  \"min_sessions_per_sec\": {min_sessions_per_sec},");
    println!("  \"gate_enforced\": {gate_on},");
    println!("  \"pass\": {pass},");
    println!(
        "  \"note\": \"each session is a short-lived TCP client streaming one corpus trace \
         through the frame envelope; seal-to-verdict is measured inside the daemon from Seal \
         acceptance to verdict publication, first-frame-to-verdict from the first Append\""
    );
    println!("}}");
    i32::from(!pass)
}

// ---- bench-streaming ---------------------------------------------------

/// Per-mode outcome of the streaming-vs-buffered comparison.
struct StreamModeOut {
    seal_micros: Vec<u64>,
    first_micros: Vec<u64>,
    peak_buffered: u64,
    streamed: u64,
    errors: u64,
    wall_secs: f64,
    multisets: Vec<BTreeMap<(String, String, String), u64>>,
}

/// Drains one session's verdict multiset through the query API.
fn query_multiset(
    handle: &jinn_serve::DaemonHandle,
    session: u64,
) -> BTreeMap<(String, String, String), u64> {
    use jinn_serve::{Query, QueryItem, QueryKind};
    let mut set = BTreeMap::new();
    let mut cursor = None;
    loop {
        let page = handle.query(&Query {
            kind: QueryKind::Verdicts,
            session: Some(session),
            cursor,
            limit: 500,
            ..Query::default()
        });
        for item in &page.items {
            if let QueryItem::Verdict(v) = item {
                *set.entry((v.machine.clone(), v.error_state.clone(), v.function.clone()))
                    .or_insert(0u64) += 1;
            }
        }
        match page.next_cursor {
            Some(c) => cursor = Some(c),
            None => return set,
        }
    }
}

/// Records the drip-feed workload: a bug-free churn program (the
/// observability benches' JNI workload, sized by two knobs) whose trace
/// is large enough that O(trace) judging cost is visible. Each native
/// call performs `strings` string round-trips (allocate, measure,
/// delete) across the JNI seam, so the trace grows linearly in
/// `calls × strings` while staying a faithful recorded program — the
/// daemon replays it through the full checker stack like any corpus
/// trace.
fn stream_churn_trace(calls: u32, strings: u32) -> Vec<u8> {
    use std::rc::Rc;

    use jinn_microbench::Setup;
    use minijni::typed;
    use minijvm::JValue;

    let program = jinn_replay::Program {
        name: "StreamChurn".into(),
        pitfall: None,
        // Metadata only: the workload is bug-free by construction, so
        // these name the machine its events exercise, not a seeded bug.
        machine: "local-reference",
        error_state: "Ok",
        leaks: false,
        gc_period: Some(64),
        build: Box::new(move |vm| {
            let (_c, entry) = vm.define_native_class(
                "bench/StreamChurn",
                "churn",
                "()I",
                true,
                Rc::new(move |env, _| {
                    let mut survived = 0;
                    for i in 0..strings {
                        let s = typed::new_string_utf(env, &format!("churn-{i}"))?;
                        let len = typed::get_string_utf_length(env, s)?;
                        if len > 0 {
                            survived += 1;
                        }
                        typed::delete_local_ref(env, s)?;
                    }
                    Ok(JValue::Int(survived))
                }),
            );
            Setup {
                entries: vec![entry; calls as usize],
                first_args: Vec::new(),
            }
        }),
    };
    jinn_replay::record_program(&program)
}

/// Benchmarks the streaming-incremental-judging tentpole in two phases
/// per mode. Phase one (timed): identical paced ingest of the recorded
/// churn workload — chunked appends with a client-side gap, as a live
/// recorder would produce — against a streaming daemon and a buffered
/// one. The streaming daemon decodes and replays each chunk as it
/// arrives, so at `Seal` the verdict is one rollup away — seal-to-verdict
/// collapses from O(trace) to O(1) — and the undecoded tail is all it
/// ever holds resident. Phase two (unpaced): the whole golden corpus
/// through the same daemon, pinning streaming-vs-buffered
/// verdict-multiset equality in the same run that claims the speedup.
fn cmd_bench_streaming() -> i32 {
    use jinn_replay::{decode_stream, Frame};

    let sessions = env_u64("JINN_SERVE_STREAM_SESSIONS", 64).max(1);
    let chunk = env_u64("JINN_SERVE_STREAM_CHUNK", 2048).max(1) as usize;
    let gap_micros = env_u64("JINN_SERVE_STREAM_GAP_MICROS", 200);
    let calls = env_u64("JINN_SERVE_STREAM_CALLS", 8).max(1) as u32;
    let strings = env_u64("JINN_SERVE_STREAM_STRINGS", 200).max(1) as u32;
    let min_speedup = env_u64("JINN_SERVE_STREAMING_MIN_SPEEDUP", 5);

    let churn = stream_churn_trace(calls, strings);
    let traces: Vec<Vec<u8>> = microbench_programs()
        .iter()
        .chain(case_studies().iter())
        .map(|p| corpus_bytes(&p.name))
        .collect();

    let run_mode = |streaming: bool| -> StreamModeOut {
        let daemon = Daemon::start(ServeConfig {
            workers: 4,
            streaming_sessions: if streaming { 4096 } else { 0 },
            ..ServeConfig::default()
        });
        let handle = daemon.handle();
        // Warm-up outside the measurement: synthesis cache, engine pool.
        for frame in decode_stream(&encode_ingest(1, "warmup", "jinn", &churn, chunk)).unwrap() {
            let _ = handle.apply_frame(&frame);
        }
        let _ = handle.wait_session(1);

        let mut out = StreamModeOut {
            seal_micros: Vec::new(),
            first_micros: Vec::new(),
            peak_buffered: 0,
            streamed: 0,
            errors: 0,
            wall_secs: 0.0,
            multisets: Vec::new(),
        };
        let start = Instant::now();
        for i in 0..sessions {
            let id = 1000 + i;
            let frames = decode_stream(&encode_ingest(id, "bench", "jinn", &churn, chunk))
                .expect("self-encoded stream decodes");
            for frame in &frames {
                if handle.apply_frame(frame).is_err() {
                    out.errors += 1;
                    break;
                }
                // Pace the appends as a live recorder would: the gap is
                // the window the streaming daemon overlaps with checking.
                if gap_micros > 0 && matches!(frame, Frame::Append { .. }) {
                    std::thread::sleep(std::time::Duration::from_micros(gap_micros));
                }
            }
            match handle.wait_session(id) {
                Some(s) if s.state.to_string() == "judged" => {
                    out.seal_micros.extend(s.seal_to_verdict_micros);
                    out.first_micros.extend(s.first_frame_micros);
                    out.streamed += u64::from(s.streamed);
                    out.multisets.push(query_multiset(&handle, id));
                }
                _ => out.errors += 1,
            }
        }
        out.wall_secs = start.elapsed().as_secs_f64();
        // Equality sweep: every corpus trace through the same daemon,
        // unpaced — the multisets must match the other mode's exactly.
        for (j, bytes) in traces.iter().enumerate() {
            let id = 500_000 + j as u64;
            let frames = decode_stream(&encode_ingest(id, "bench", "jinn", bytes, chunk))
                .expect("self-encoded stream decodes");
            for frame in &frames {
                if handle.apply_frame(frame).is_err() {
                    out.errors += 1;
                    break;
                }
            }
            match handle.wait_session(id) {
                Some(s) if s.state.to_string() == "judged" => {
                    out.multisets.push(query_multiset(&handle, id));
                }
                _ => out.errors += 1,
            }
        }
        out.peak_buffered = handle.fleet().buffered_bytes_high_water;
        daemon.shutdown();
        out.seal_micros.sort_unstable();
        out.first_micros.sort_unstable();
        out
    };

    let buffered = run_mode(false);
    let streamed = run_mode(true);

    let verdicts_match = buffered.multisets == streamed.multisets;
    let s_p50 = percentile(&streamed.seal_micros, 0.50);
    let s_p99 = percentile(&streamed.seal_micros, 0.99);
    let b_p50 = percentile(&buffered.seal_micros, 0.50);
    let b_p99 = percentile(&buffered.seal_micros, 0.99);
    let speedup = b_p50 as f64 / (s_p50 as f64).max(1e-9);
    let peak_reduction = buffered.peak_buffered as f64 / (streamed.peak_buffered as f64).max(1.0);
    let gate_on = cfg!(not(debug_assertions));
    let pass = buffered.errors == 0
        && streamed.errors == 0
        && verdicts_match
        && streamed.streamed == sessions
        && buffered.streamed == 0
        && (!gate_on || speedup >= min_speedup as f64);

    println!("{{");
    println!(
        "  \"benchmark\": \"jinn-serve streaming vs buffered seal-to-verdict (paced churn \
         ingest + corpus equality sweep)\","
    );
    println!("  \"sessions_per_mode\": {sessions},");
    println!("  \"chunk_bytes\": {chunk},");
    println!("  \"append_gap_micros\": {gap_micros},");
    println!("  \"workload_native_calls\": {calls},");
    println!("  \"workload_strings_per_call\": {strings},");
    println!("  \"workload_trace_bytes\": {},", churn.len());
    println!("  \"streaming_seal_to_verdict_p50_micros\": {s_p50},");
    println!("  \"streaming_seal_to_verdict_p99_micros\": {s_p99},");
    println!("  \"buffered_seal_to_verdict_p50_micros\": {b_p50},");
    println!("  \"buffered_seal_to_verdict_p99_micros\": {b_p99},");
    println!("  \"seal_to_verdict_p50_speedup\": {speedup:.2},");
    println!(
        "  \"streaming_first_frame_to_verdict_p50_micros\": {},",
        percentile(&streamed.first_micros, 0.50)
    );
    println!(
        "  \"buffered_first_frame_to_verdict_p50_micros\": {},",
        percentile(&buffered.first_micros, 0.50)
    );
    println!(
        "  \"streaming_peak_buffered_bytes\": {},",
        streamed.peak_buffered
    );
    println!(
        "  \"buffered_peak_buffered_bytes\": {},",
        buffered.peak_buffered
    );
    println!("  \"peak_buffered_reduction\": {peak_reduction:.1},");
    println!(
        "  \"streaming_sessions_per_sec\": {:.1},",
        sessions as f64 / streamed.wall_secs.max(1e-9)
    );
    println!(
        "  \"buffered_sessions_per_sec\": {:.1},",
        sessions as f64 / buffered.wall_secs.max(1e-9)
    );
    println!("  \"streamed_sessions\": {},", streamed.streamed);
    println!("  \"verdicts_match\": {verdicts_match},");
    println!("  \"errors\": {},", buffered.errors + streamed.errors);
    println!("  \"min_seal_to_verdict_speedup\": {min_speedup},");
    println!("  \"gate_enforced\": {gate_on},");
    println!("  \"pass\": {pass},");
    println!(
        "  \"note\": \"identical paced frame sequences of a recorded bug-free churn workload \
         against a streaming daemon and a buffered one, then the whole golden corpus through \
         both for verdict-multiset equality; seal-to-verdict is the window the client blocks \
         on after Seal, peak buffered bytes is the fleet-wide high-water of resident \
         undecoded input\""
    );
    println!("}}");
    i32::from(!pass)
}

// ---- bench-discharge ---------------------------------------------------

/// One synthetic FSM transition for the rollup path.
fn fsm_event(seq: u64, machine: &str, transition: &str, entity: String) -> jinn_obs::TraceEvent {
    jinn_obs::TraceEvent {
        seq,
        micros: seq,
        thread: 0,
        kind: jinn_obs::EventKind::FsmTransition {
            machine: std::sync::Arc::from(machine),
            transition: std::sync::Arc::from(transition),
            outcome: jinn_obs::FsmOutcome::Moved,
            entity: Some(jinn_obs::EntityTag::new(&entity)),
        },
    }
}

/// Benchmarks the tentpole asymmetry of workload-adaptive discharge:
/// every lease drop clears the pooled engines, and `AtomicStore::clear`
/// walks every segment the store ever allocated. A fleet-shared full
/// pool therefore carries the all-tenant high-water footprint into
/// every later session's rollup, while a manifest-keyed specialized
/// pool receives only manifest-compliant traffic — inactive machines
/// have no engines and untouched machines never allocate a segment.
///
/// The harness plays one large "ballast" session (every resource
/// machine, many entities) through the full pool, then measures the
/// daemon's exact rollup path (`jinn_serve::rollup_events`) for a
/// stream of small manifest-compliant sessions on both pools.
fn cmd_bench_discharge() -> i32 {
    use jinn_serve::{rollup_events, SpecializedPool};

    let iters = env_u64("JINN_SERVE_DISCHARGE_ITERS", 200).max(1);
    let ballast_entities = env_u64("JINN_SERVE_DISCHARGE_BALLAST", 60_000).max(1);
    let mix_entities = env_u64("JINN_SERVE_DISCHARGE_ENTITIES", 256).max(1);
    let min_speedup_percent = env_u64("JINN_SERVE_DISCHARGE_MIN_SPEEDUP", 25);

    // The specialized pool for the Table 3 workload mix — the same
    // manifest DISCHARGE_bench.json is built from.
    let spec = SpecializedPool::for_functions(
        "table3-mix",
        jinn_workloads::TABLE3_CALLED_FUNCTIONS.iter().copied(),
    );
    let report = jinn_core::discharge(
        &jinn_spec::machines(),
        &jinn_core::WorkloadManifest::new(
            "table3-mix",
            jinn_workloads::TABLE3_CALLED_FUNCTIONS.iter().copied(),
        ),
    );
    let full: std::sync::Arc<jinn_fsm::AtomicEnginePool<u64>> =
        jinn_fsm::EnginePool::new(jinn_spec::machines());

    // Ballast: one fleet neighbor's huge session across every resource
    // machine — including the ones the Table 3 manifest discharges.
    let ballast_machines = [
        "pinned-buffer",
        "monitor",
        "global-reference",
        "local-reference",
        "critical-section",
    ];
    let mut ballast = Vec::new();
    let mut seq = 0u64;
    for m in ballast_machines {
        for i in 0..ballast_entities {
            ballast.push(fsm_event(seq, m, "Acquire", format!("ballast-{m}-{i}")));
            seq += 1;
        }
    }

    // The manifested tenant's session: small, resource machines only,
    // entirely inside the Table 3 manifest.
    let mut mix = Vec::new();
    for m in ["global-reference", "local-reference"] {
        for i in 0..mix_entities {
            mix.push(fsm_event(seq, m, "Acquire", format!("mix-{m}-{i}")));
            seq += 1;
            mix.push(fsm_event(seq, m, "Release", format!("mix-{m}-{i}")));
            seq += 1;
        }
    }

    // Equivalence first: both pools must roll the mix up identically on
    // the machines both carry (the specialized pool carries them all —
    // the mix stays inside the manifest).
    let from_full = rollup_events(&full, &mix);
    let from_spec = rollup_events(spec.pool(), &mix);
    let rollups_match = from_full == from_spec;

    // Inflate the full pool's parked engine set with the ballast
    // session, as a shared daemon pool would be after one big tenant.
    drop(rollup_events(&full, &ballast));
    // Warm both paths once after ballast.
    drop(rollup_events(&full, &mix));
    drop(rollup_events(spec.pool(), &mix));

    let start = Instant::now();
    for _ in 0..iters {
        drop(rollup_events(&full, &mix));
    }
    let full_wall = start.elapsed();
    let start = Instant::now();
    for _ in 0..iters {
        drop(rollup_events(spec.pool(), &mix));
    }
    let spec_wall = start.elapsed();

    let full_us = full_wall.as_secs_f64() * 1e6 / iters as f64;
    let spec_us = spec_wall.as_secs_f64() * 1e6 / iters as f64;
    let speedup = full_us / spec_us.max(1e-9);
    let speedup_percent = (speedup - 1.0) * 100.0;
    let gate_on = cfg!(not(debug_assertions));
    let pass = rollups_match && (!gate_on || speedup_percent >= min_speedup_percent as f64);

    let inactive: Vec<String> = spec
        .inactive_machines()
        .iter()
        .map(|m| format!("\"{m}\""))
        .collect();
    println!("{{");
    println!(
        "  \"benchmark\": \"jinn-serve specialized-pool rollup vs ballast-inflated full pool\","
    );
    println!("  \"iterations\": {iters},");
    println!("  \"ballast_entities_per_machine\": {ballast_entities},");
    println!("  \"mix_entities_per_machine\": {mix_entities},");
    println!("  \"mix_transitions\": {},", mix.len());
    println!("  \"manifest_functions\": {},", spec.functions().len());
    println!("  \"total_transitions\": {},", report.total_transitions());
    println!(
        "  \"discharged_transitions\": {},",
        report.total_discharged()
    );
    println!("  \"inactive_machines\": [{}],", inactive.join(","));
    println!("  \"full_pool_micros_per_session\": {full_us:.2},");
    println!("  \"specialized_micros_per_session\": {spec_us:.2},");
    println!("  \"speedup\": {speedup:.2},");
    println!("  \"speedup_percent\": {speedup_percent:.1},");
    println!("  \"rollups_match\": {rollups_match},");
    println!("  \"min_speedup_percent\": {min_speedup_percent},");
    println!("  \"gate_enforced\": {gate_on},");
    println!("  \"pass\": {pass},");
    println!(
        "  \"note\": \"identical small manifest-compliant sessions rolled up through the \
         daemon's rollup_events path; the full pool's engines were inflated once by a \
         fleet neighbor's ballast session, so every lease drop re-walks its high-water \
         slabs, while the manifest-keyed pool never allocated them\""
    );
    println!("}}");
    i32::from(!pass)
}
