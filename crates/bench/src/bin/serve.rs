//! The jinn-serve CLI: run the daemon, stream traces to it, query it,
//! smoke-test it, and benchmark a fleet of short-lived clients.
//!
//! ```text
//! serve daemon [--listen ADDR] [--workers N]      run until stdin closes
//! serve ingest ADDR [--tenant T] [--config C] FILE...
//!                                                 stream traces, print acks
//! serve query ADDR JSON...                        one request line each
//! serve smoke [--listen ADDR]                     3-trace socket round trip,
//!                                                 verdicts vs local replay
//! serve bench                                     BENCH_serve.json on stdout
//! serve bench-discharge                           BENCH_serve_discharge.json
//! ```
//!
//! `bench` knobs (environment): `JINN_SERVE_SESSIONS` (default 1000),
//! `JINN_SERVE_CLIENTS` (default 8), `JINN_SERVE_WORKERS` (default 4),
//! `JINN_SERVE_MIN_SESSIONS_PER_SEC` (throughput gate, release only,
//! default 25).
//!
//! `bench-discharge` knobs: `JINN_SERVE_DISCHARGE_ITERS` (default 200),
//! `JINN_SERVE_DISCHARGE_BALLAST` (ballast entities per machine, default
//! 60000), `JINN_SERVE_DISCHARGE_ENTITIES` (per-session entities per
//! machine, default 256), `JINN_SERVE_DISCHARGE_MIN_SPEEDUP` (percent
//! floor on the specialized-pool rollup speedup, release only, default
//! 25).
//!
//! Exit status: 0 clean, 1 on mismatch or gate failure, 2 on usage.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jinn_bench::env_u64;
use jinn_replay::{
    case_studies, encode_ingest, microbench_programs, replay_trace, ReplayConfig, Trace,
};
use jinn_serve::{Daemon, ServeConfig, SocketServer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("daemon") => cmd_daemon(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("smoke") => cmd_smoke(),
        Some("bench") => cmd_bench(),
        Some("bench-discharge") => cmd_bench_discharge(),
        _ => {
            eprintln!("usage: serve <daemon|ingest|query|smoke|bench|bench-discharge> [args...]");
            2
        }
    };
    std::process::exit(code);
}

// ---- shared client plumbing --------------------------------------------

/// Streams one trace as one session over a fresh connection; returns the
/// seal-ack JSON line (the daemon answers once the session is terminal).
fn ingest_session(
    addr: &str,
    session: u64,
    tenant: &str,
    config: &str,
    bytes: &[u8],
) -> std::io::Result<String> {
    let stream_bytes = encode_ingest(session, tenant, config, bytes, 64 * 1024);
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(&stream_bytes)?;
    conn.flush()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim().to_string())
}

/// One query round trip on a fresh connection.
fn query_line(addr: &str, request: &str) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(request.as_bytes())?;
    conn.write_all(b"\n")?;
    conn.flush()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim().to_string())
}

/// Scans a JSON line for `"key": <integer>` without a full parser — the
/// smoke/bench client only needs scalar counters out of known-shape
/// responses.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_true(line: &str, key: &str) -> bool {
    let needle = format!("\"{key}\":");
    line.find(&needle)
        .map(|at| line[at + needle.len()..].trim_start().starts_with("true"))
        .unwrap_or(false)
}

// ---- daemon ------------------------------------------------------------

fn cmd_daemon(args: &[String]) -> i32 {
    let mut listen = "127.0.0.1:7077".to_string();
    let mut workers = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => match it.next() {
                Some(v) => listen = v.clone(),
                None => {
                    eprintln!("--listen needs an address");
                    return 2;
                }
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => {
                    eprintln!("--workers needs a number");
                    return 2;
                }
            },
            other => {
                eprintln!("serve daemon: unknown argument `{other}`");
                return 2;
            }
        }
    }
    let daemon = Daemon::start(ServeConfig {
        workers,
        ..ServeConfig::default()
    });
    let server = match SocketServer::bind(daemon.handle(), &listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve daemon: bind {listen}: {e}");
            return 1;
        }
    };
    println!("jinn-serve listening on {}", server.addr());
    println!("(close stdin to stop)");
    // Park until stdin closes — the natural lifetime for a foreground
    // daemon under a test harness or a shell.
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).is_ok_and(|n| n > 0) {
        sink.clear();
    }
    server.shutdown();
    daemon.shutdown();
    0
}

// ---- ingest ------------------------------------------------------------

fn cmd_ingest(args: &[String]) -> i32 {
    let mut tenant = "cli".to_string();
    let mut config = String::new();
    let mut addr = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tenant" => match it.next() {
                Some(v) => tenant = v.clone(),
                None => {
                    eprintln!("--tenant needs a value");
                    return 2;
                }
            },
            "--config" => match it.next() {
                Some(v) => config = v.clone(),
                None => {
                    eprintln!("--config needs a value");
                    return 2;
                }
            },
            other if addr.is_none() => addr = Some(other.to_string()),
            other => files.push(other.to_string()),
        }
    }
    let (Some(addr), false) = (addr, files.is_empty()) else {
        eprintln!("usage: serve ingest ADDR [--tenant T] [--config C] FILE...");
        return 2;
    };
    // Each invocation claims its own id range: repeated `serve ingest`
    // runs against one daemon must not collide on session ids.
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
        ^ u64::from(std::process::id());
    let base = jinn_serve::AUTO_SESSION_BASE + (nonce % (1 << 47));
    let mut failures = 0;
    for (i, file) in files.iter().enumerate() {
        let session = base + i as u64;
        let ack = std::fs::read(file)
            .and_then(|bytes| ingest_session(&addr, session, &tenant, &config, &bytes));
        match ack {
            Ok(line) => {
                println!("{file} -> session {session}: {line}");
                if !field_true(&line, "ok") || line.contains("\"state\":\"quarantined\"") {
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failures += 1;
            }
        }
    }
    i32::from(failures > 0)
}

// ---- query -------------------------------------------------------------

fn cmd_query(args: &[String]) -> i32 {
    let Some((addr, requests)) = args.split_first() else {
        eprintln!("usage: serve query ADDR JSON...");
        return 2;
    };
    if requests.is_empty() {
        eprintln!("usage: serve query ADDR JSON...");
        return 2;
    }
    for request in requests {
        match query_line(addr, request) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("FAIL: {e}");
                return 1;
            }
        }
    }
    0
}

// ---- smoke -------------------------------------------------------------

const SMOKE_TRACES: &[&str] = &["LocalRefDangling", "GlobalLeak", "ExceptionState"];

fn corpus_bytes(name: &str) -> Vec<u8> {
    let path = format!("tests/corpus/{name}.jtrace");
    std::fs::read(&path).unwrap_or_else(|e| panic!("{path}: {e} (run from the repo root)"))
}

/// The verdict multiset of a local replay under `jinn`:
/// (machine, function) → count.
fn local_verdicts(bytes: &[u8]) -> BTreeMap<(String, String), u64> {
    let trace = Trace::parse(bytes).expect("corpus trace parses");
    let outcome =
        replay_trace(&trace, &ReplayConfig::parse("jinn").expect("jinn config")).expect("replays");
    let mut set = BTreeMap::new();
    for v in &outcome.violations {
        *set.entry((v.machine.to_string(), v.function.clone()))
            .or_insert(0) += 1;
    }
    set
}

fn cmd_smoke() -> i32 {
    let daemon = Daemon::start(ServeConfig::default());
    let server = match SocketServer::bind(daemon.handle(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve smoke: bind: {e}");
            return 1;
        }
    };
    let addr = server.addr().to_string();
    let mut failures = 0;

    for (i, name) in SMOKE_TRACES.iter().enumerate() {
        let session = 1000 + i as u64;
        let bytes = corpus_bytes(name);
        let ack = match ingest_session(&addr, session, "smoke", "jinn", &bytes) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("FAIL {name}: ingest: {e}");
                failures += 1;
                continue;
            }
        };
        if !field_true(&ack, "ok") {
            eprintln!("FAIL {name}: seal ack: {ack}");
            failures += 1;
            continue;
        }

        // Compare the daemon's verdicts to a single-process replay:
        // total count, then one filtered count per (machine, function).
        let local = local_verdicts(&bytes);
        let total: u64 = local.values().sum();
        let line = match query_line(
            &addr,
            &format!("{{\"op\": \"query\", \"kind\": \"verdicts\", \"session\": {session}}}"),
        ) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("FAIL {name}: query: {e}");
                failures += 1;
                continue;
            }
        };
        let served_total = field_u64(&line, "count").unwrap_or(u64::MAX);
        if served_total != total {
            eprintln!("FAIL {name}: daemon has {served_total} verdicts, replay check has {total}");
            failures += 1;
            continue;
        }
        let mut ok = true;
        for ((machine, function), count) in &local {
            let request = format!(
                "{{\"op\": \"query\", \"kind\": \"verdicts\", \"session\": {session}, \
                 \"machine\": \"{machine}\", \"function\": \"{function}\"}}"
            );
            let line = query_line(&addr, &request).unwrap_or_default();
            let served = field_u64(&line, "count").unwrap_or(u64::MAX);
            if served != *count {
                eprintln!(
                    "FAIL {name}: {machine}/{function}: daemon {served}, replay check {count}"
                );
                ok = false;
            }
        }
        if ok {
            println!("ok {name}: session {session}, {total} verdicts match replay check");
        } else {
            failures += 1;
        }
    }

    // Fleet sanity over the socket.
    match query_line(&addr, "{\"op\": \"fleet\"}") {
        Ok(line) => {
            let judged = field_u64(&line, "judged").unwrap_or(0);
            let quarantined = field_u64(&line, "quarantined").unwrap_or(99);
            if judged == SMOKE_TRACES.len() as u64 && quarantined == 0 {
                println!("ok fleet: {line}");
            } else {
                eprintln!("FAIL fleet: {line}");
                failures += 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL fleet: {e}");
            failures += 1;
        }
    }

    server.shutdown();
    daemon.shutdown();
    i32::from(failures > 0)
}

// ---- bench -------------------------------------------------------------

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn cmd_bench() -> i32 {
    let sessions = env_u64("JINN_SERVE_SESSIONS", 1000).max(1);
    let clients = env_u64("JINN_SERVE_CLIENTS", 8).max(1) as usize;
    let workers = env_u64("JINN_SERVE_WORKERS", 4).max(1) as usize;
    let min_sessions_per_sec = env_u64("JINN_SERVE_MIN_SESSIONS_PER_SEC", 25);

    // The whole golden corpus, round-robin across the fleet.
    let traces: Arc<Vec<Vec<u8>>> = Arc::new(
        microbench_programs()
            .iter()
            .chain(case_studies().iter())
            .map(|p| corpus_bytes(&p.name))
            .collect(),
    );

    let daemon = Daemon::start(ServeConfig {
        workers,
        retention_bytes: 8 * 1024 * 1024,
        max_events_per_session: 64,
        ..ServeConfig::default()
    });
    let server = match SocketServer::bind(daemon.handle(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve bench: bind: {e}");
            return 1;
        }
    };
    let addr = server.addr().to_string();

    // Warm-up: one session end to end (synthesis cache, engine pool).
    let _ = ingest_session(&addr, 1, "warmup", "jinn", &traces[0]);

    let next = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        let addr = addr.clone();
        let traces = Arc::clone(&traces);
        let next = Arc::clone(&next);
        handles.push(std::thread::spawn(move || {
            // Each loop iteration is one short-lived client: fresh
            // connection, one session, one ack read, disconnect.
            let mut ingest_micros = Vec::new();
            let mut events = 0u64;
            let mut errors = 0u64;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= sessions {
                    break;
                }
                let session = 1_000_000 + i;
                let tenant = format!("tenant-{client}");
                let bytes = &traces[i as usize % traces.len()];
                match ingest_session(&addr, session, &tenant, "jinn", bytes) {
                    Ok(ack) if field_true(&ack, "ok") => {
                        if let Some(us) = field_u64(&ack, "ingest_micros") {
                            ingest_micros.push(us);
                        }
                        events += field_u64(&ack, "events_replayed").unwrap_or(0);
                    }
                    _ => errors += 1,
                }
            }
            (ingest_micros, events, errors)
        }));
    }

    let mut ingest_micros = Vec::new();
    let mut events = 0u64;
    let mut errors = 0u64;
    for h in handles {
        let (m, e, x) = h.join().expect("client thread");
        ingest_micros.extend(m);
        events += e;
        errors += x;
    }
    let wall = start.elapsed();

    let fleet = daemon.handle().fleet();
    let pool = daemon.handle().pool_stats();
    server.shutdown();
    daemon.shutdown();

    ingest_micros.sort_unstable();
    let sessions_per_sec = sessions as f64 / wall.as_secs_f64().max(1e-9);
    let events_per_sec = events as f64 / wall.as_secs_f64().max(1e-9);
    let p50 = percentile(&ingest_micros, 0.50);
    let p99 = percentile(&ingest_micros, 0.99);
    let gate_on = cfg!(not(debug_assertions));
    let pass = errors == 0 && (!gate_on || sessions_per_sec >= min_sessions_per_sec as f64);

    println!("{{");
    println!("  \"benchmark\": \"jinn-serve fleet ingest (golden corpus round-robin)\",");
    println!("  \"sessions\": {sessions},");
    println!("  \"clients\": {clients},");
    println!("  \"workers\": {workers},");
    println!("  \"wall_secs\": {:.3},", wall.as_secs_f64());
    println!("  \"sessions_per_sec\": {sessions_per_sec:.1},");
    println!("  \"events_rejudged\": {events},");
    println!("  \"events_rejudged_per_sec\": {events_per_sec:.0},");
    println!("  \"ingest_latency_p50_micros\": {p50},");
    println!("  \"ingest_latency_p99_micros\": {p99},");
    println!("  \"ingest_errors\": {errors},");
    println!("  \"fleet_judged\": {},", fleet.judged);
    println!("  \"fleet_quarantined\": {},", fleet.quarantined);
    println!("  \"fleet_purged_sessions\": {},", fleet.purged_sessions);
    println!("  \"history_bytes\": {},", fleet.history_bytes);
    println!("  \"pool_built\": {},", pool.built);
    println!("  \"pool_leases\": {},", pool.leases);
    println!("  \"min_sessions_per_sec\": {min_sessions_per_sec},");
    println!("  \"gate_enforced\": {gate_on},");
    println!("  \"pass\": {pass},");
    println!(
        "  \"note\": \"each session is a short-lived TCP client streaming one corpus trace \
         through the frame envelope; ingest latency is seal-to-verdict inside the daemon\""
    );
    println!("}}");
    i32::from(!pass)
}

// ---- bench-discharge ---------------------------------------------------

/// One synthetic FSM transition for the rollup path.
fn fsm_event(seq: u64, machine: &str, transition: &str, entity: String) -> jinn_obs::TraceEvent {
    jinn_obs::TraceEvent {
        seq,
        micros: seq,
        thread: 0,
        kind: jinn_obs::EventKind::FsmTransition {
            machine: std::sync::Arc::from(machine),
            transition: std::sync::Arc::from(transition),
            outcome: jinn_obs::FsmOutcome::Moved,
            entity: Some(jinn_obs::EntityTag::new(&entity)),
        },
    }
}

/// Benchmarks the tentpole asymmetry of workload-adaptive discharge:
/// every lease drop clears the pooled engines, and `AtomicStore::clear`
/// walks every segment the store ever allocated. A fleet-shared full
/// pool therefore carries the all-tenant high-water footprint into
/// every later session's rollup, while a manifest-keyed specialized
/// pool receives only manifest-compliant traffic — inactive machines
/// have no engines and untouched machines never allocate a segment.
///
/// The harness plays one large "ballast" session (every resource
/// machine, many entities) through the full pool, then measures the
/// daemon's exact rollup path (`jinn_serve::rollup_events`) for a
/// stream of small manifest-compliant sessions on both pools.
fn cmd_bench_discharge() -> i32 {
    use jinn_serve::{rollup_events, SpecializedPool};

    let iters = env_u64("JINN_SERVE_DISCHARGE_ITERS", 200).max(1);
    let ballast_entities = env_u64("JINN_SERVE_DISCHARGE_BALLAST", 60_000).max(1);
    let mix_entities = env_u64("JINN_SERVE_DISCHARGE_ENTITIES", 256).max(1);
    let min_speedup_percent = env_u64("JINN_SERVE_DISCHARGE_MIN_SPEEDUP", 25);

    // The specialized pool for the Table 3 workload mix — the same
    // manifest DISCHARGE_bench.json is built from.
    let spec = SpecializedPool::for_functions(
        "table3-mix",
        jinn_workloads::TABLE3_CALLED_FUNCTIONS.iter().copied(),
    );
    let report = jinn_core::discharge(
        &jinn_spec::machines(),
        &jinn_core::WorkloadManifest::new(
            "table3-mix",
            jinn_workloads::TABLE3_CALLED_FUNCTIONS.iter().copied(),
        ),
    );
    let full: std::sync::Arc<jinn_fsm::AtomicEnginePool<u64>> =
        jinn_fsm::EnginePool::new(jinn_spec::machines());

    // Ballast: one fleet neighbor's huge session across every resource
    // machine — including the ones the Table 3 manifest discharges.
    let ballast_machines = [
        "pinned-buffer",
        "monitor",
        "global-reference",
        "local-reference",
        "critical-section",
    ];
    let mut ballast = Vec::new();
    let mut seq = 0u64;
    for m in ballast_machines {
        for i in 0..ballast_entities {
            ballast.push(fsm_event(seq, m, "Acquire", format!("ballast-{m}-{i}")));
            seq += 1;
        }
    }

    // The manifested tenant's session: small, resource machines only,
    // entirely inside the Table 3 manifest.
    let mut mix = Vec::new();
    for m in ["global-reference", "local-reference"] {
        for i in 0..mix_entities {
            mix.push(fsm_event(seq, m, "Acquire", format!("mix-{m}-{i}")));
            seq += 1;
            mix.push(fsm_event(seq, m, "Release", format!("mix-{m}-{i}")));
            seq += 1;
        }
    }

    // Equivalence first: both pools must roll the mix up identically on
    // the machines both carry (the specialized pool carries them all —
    // the mix stays inside the manifest).
    let from_full = rollup_events(&full, &mix);
    let from_spec = rollup_events(spec.pool(), &mix);
    let rollups_match = from_full == from_spec;

    // Inflate the full pool's parked engine set with the ballast
    // session, as a shared daemon pool would be after one big tenant.
    drop(rollup_events(&full, &ballast));
    // Warm both paths once after ballast.
    drop(rollup_events(&full, &mix));
    drop(rollup_events(spec.pool(), &mix));

    let start = Instant::now();
    for _ in 0..iters {
        drop(rollup_events(&full, &mix));
    }
    let full_wall = start.elapsed();
    let start = Instant::now();
    for _ in 0..iters {
        drop(rollup_events(spec.pool(), &mix));
    }
    let spec_wall = start.elapsed();

    let full_us = full_wall.as_secs_f64() * 1e6 / iters as f64;
    let spec_us = spec_wall.as_secs_f64() * 1e6 / iters as f64;
    let speedup = full_us / spec_us.max(1e-9);
    let speedup_percent = (speedup - 1.0) * 100.0;
    let gate_on = cfg!(not(debug_assertions));
    let pass = rollups_match && (!gate_on || speedup_percent >= min_speedup_percent as f64);

    let inactive: Vec<String> = spec
        .inactive_machines()
        .iter()
        .map(|m| format!("\"{m}\""))
        .collect();
    println!("{{");
    println!(
        "  \"benchmark\": \"jinn-serve specialized-pool rollup vs ballast-inflated full pool\","
    );
    println!("  \"iterations\": {iters},");
    println!("  \"ballast_entities_per_machine\": {ballast_entities},");
    println!("  \"mix_entities_per_machine\": {mix_entities},");
    println!("  \"mix_transitions\": {},", mix.len());
    println!("  \"manifest_functions\": {},", spec.functions().len());
    println!("  \"total_transitions\": {},", report.total_transitions());
    println!(
        "  \"discharged_transitions\": {},",
        report.total_discharged()
    );
    println!("  \"inactive_machines\": [{}],", inactive.join(","));
    println!("  \"full_pool_micros_per_session\": {full_us:.2},");
    println!("  \"specialized_micros_per_session\": {spec_us:.2},");
    println!("  \"speedup\": {speedup:.2},");
    println!("  \"speedup_percent\": {speedup_percent:.1},");
    println!("  \"rollups_match\": {rollups_match},");
    println!("  \"min_speedup_percent\": {min_speedup_percent},");
    println!("  \"gate_enforced\": {gate_on},");
    println!("  \"pass\": {pass},");
    println!(
        "  \"note\": \"identical small manifest-compliant sessions rolled up through the \
         daemon's rollup_events path; the full pool's engines were inflated once by a \
         fleet neighbor's ballast session, so every lease drop re-walks its high-water \
         slabs, while the manifest-keyed pool never allocated them\""
    );
    println!("}}");
    i32::from(!pass)
}
