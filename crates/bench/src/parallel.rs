//! The multi-threaded workload driver: N `JniSession`s on N OS threads.
//!
//! The paper's checkers are thread-local by construction — a `JNIEnv` is
//! only valid on its owning thread, so per-entity state naturally shards
//! by the thread that first touched the entity. This driver exercises
//! the whole concurrent stack at once:
//!
//! - one [`Jinn`] checker **per worker**, constructed on the driver
//!   thread and *moved* into the worker (`Jinn: Send` since the stats
//!   cell went atomic);
//! - one shared lock-free [`AtomicStore`] that every worker drives with
//!   its own disjoint *dense* entity keys — per-entity CAS, no shard
//!   mutexes — while the cross-thread counter must stay zero (a
//!   non-zero count is the paper's `EnvMismatch` pitfall);
//! - one shared sharded-`RwLock` heap directory that workers publish
//!   into and read across shards, pruned at epoch sweeps;
//! - one shared [`EpochParticipants`] domain: workers pin every
//!   iteration (one load + one store) and periodically run a *quiesced*
//!   leak/directory sweep — nobody parks, nobody stops the world;
//! - one shared enabled [`Recorder`], so every worker's events land in
//!   per-thread ring shards and merge on export.
//!
//! Each worker owns a full `Vm` (its private heap, with `ballast/N`
//! long-lived globals) and runs `transitions/N` boundary crossings of
//! the Table 3 workload mix. Total work is constant across thread
//! counts, so `checked events / wall-clock` is directly comparable.
//!
//! A note on where the speedup comes from: on a multi-core host the
//! workers overlap on real cores. On a *single*-core host (like CI
//! containers) the measured win comes from removing coordination and
//! from sharding itself — no condvar parking or wakeup storms at
//! sweeps, no mutex convoys on the store, and the copying collector's
//! cost per collection is O(live heap), so N workers each collecting a
//! heap 1/N-th the size do ~1/N-th the aggregate GC work for the same
//! number of checked events. Per-worker wall times (the fairness
//! spread) are reported so the curve's shape is interpretable either
//! way.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use jinn_core::Jinn;
use jinn_fsm::{AtomicStore, TransitionId};
use jinn_obs::Recorder;
use jinn_vendors::Vendor;
use jinn_workloads::build_workload;
use minijni::{RunOutcome, Session};
use minijvm::EpochParticipants;

/// Number of shards in the shared heap directory.
pub const HEAP_SHARDS: usize = 8;

/// Per-worker live-entity window in the shared store. Keys are
/// `worker * KEYS_PER_WORKER + (iter % KEYS_PER_WORKER)`: disjoint per
/// worker and *dense*, so the store's lock-free slab path is what gets
/// measured (the old `(t << 32) | i` scheme landed every worker but the
/// first in the spill map).
pub const KEYS_PER_WORKER: u64 = 1 << 10;

/// Knobs for one parallel run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker (OS thread) count.
    pub threads: usize,
    /// Total boundary transitions across all workers.
    pub transitions: u64,
    /// Total long-lived ballast objects, split evenly across workers'
    /// private heaps. Ballast is what makes each collection expensive.
    pub ballast: usize,
    /// Auto-GC period per worker VM (transitions between collections).
    pub gc_period: u64,
    /// A worker runs a quiesced epoch sweep of the shared directory and
    /// store every this many native calls.
    pub safepoint_every: u64,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            threads: 1,
            transitions: 40_000,
            ballast: 8_192,
            gc_period: 512,
            safepoint_every: 1_024,
        }
    }
}

/// Measured outcome of one parallel run.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Worker count.
    pub threads: usize,
    /// Sum of per-worker boundary transitions actually executed.
    pub transitions: u64,
    /// Sum of `checks_executed` across all workers' checkers.
    pub checked_events: u64,
    /// Sum of violations (must be zero — the workload is bug-free).
    pub violations: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// `checked_events / elapsed` — the headline metric.
    pub events_per_sec: f64,
    /// Quiesced epoch sweeps that actually ran (no world was stopped).
    pub epoch_sweeps: u64,
    /// Largest live-entity count any leak sweep observed in the shared
    /// store (bounded by `threads * KEYS_PER_WORKER`).
    pub leak_sweep_peak: u64,
    /// Cross-shard (foreign-thread) entity touches observed by the
    /// shared store. Non-zero would be an `EnvMismatch`-class bug in
    /// the driver itself.
    pub cross_thread_uses: u64,
    /// Entities live in the shared store at the end (should be zero:
    /// every worker evicts what it acquires).
    pub store_residue: usize,
    /// Events captured by the shared per-thread recorder rings.
    pub trace_events: u64,
    /// Leak/violation reports from session shutdown (must be empty).
    pub shutdown_reports: usize,
    /// Per-worker wall-clock, in spawn order.
    pub worker_wall_nanos: Vec<u64>,
    /// Max/min of per-worker wall times: 1.0 is perfectly fair
    /// scheduling; large values mean the curve is measuring stragglers.
    pub fairness_spread: f64,
}

/// Runs the workload across `cfg.threads` workers and measures it.
pub fn run_parallel(cfg: &ParallelConfig) -> ParallelRun {
    let threads = cfg.threads.max(1);
    let share = (cfg.transitions / threads as u64).max(100);
    let ballast_each = cfg.ballast / threads;

    // Shared concurrent stack, one of each across all workers.
    let store: Arc<AtomicStore<u64>> = Arc::new(AtomicStore::new(lifecycle_machine()));
    let acquire = store.compiled().transition_id("Acquire").expect("spec");
    let release = store.compiled().transition_id("Release").expect("spec");
    let released = store.machine().state_id("Released").expect("spec");
    let directory: Arc<Vec<RwLock<HashMap<u64, u64>>>> = Arc::new(
        (0..HEAP_SHARDS)
            .map(|_| RwLock::new(HashMap::new()))
            .collect(),
    );
    let epochs = Arc::new(EpochParticipants::new());
    let recorder = Recorder::enabled(1 << 14);
    let cross_thread = Arc::new(AtomicU64::new(0));
    let leak_peak = Arc::new(AtomicU64::new(0));

    // Checkers are built *here*, on the driver thread, then moved into
    // the workers — the whole point of `Jinn: Send`.
    let checkers: Vec<Jinn> = (0..threads).map(|_| Jinn::new()).collect();

    let start = Instant::now();
    let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = checkers
            .into_iter()
            .enumerate()
            .map(|(t, jinn)| {
                let store = Arc::clone(&store);
                let directory = Arc::clone(&directory);
                let epochs = Arc::clone(&epochs);
                let cross_thread = Arc::clone(&cross_thread);
                let leak_peak = Arc::clone(&leak_peak);
                let recorder = recorder.clone();
                scope.spawn(move || {
                    run_worker(WorkerContext {
                        t,
                        jinn,
                        share,
                        ballast: ballast_each,
                        gc_period: cfg.gc_period,
                        safepoint_every: cfg.safepoint_every,
                        store: &store,
                        acquire,
                        release,
                        released,
                        directory: &directory,
                        epochs: &epochs,
                        cross_thread: &cross_thread,
                        leak_peak: &leak_peak,
                        recorder,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker must not panic"))
            .collect()
    });
    let elapsed = start.elapsed();

    let transitions: u64 = worker_results.iter().map(|w| w.transitions).sum();
    let checked_events: u64 = worker_results.iter().map(|w| w.checks_executed).sum();
    let violations: u64 = worker_results.iter().map(|w| w.violations).sum();
    let shutdown_reports: usize = worker_results.iter().map(|w| w.shutdown_reports).sum();
    let worker_wall_nanos: Vec<u64> = worker_results.iter().map(|w| w.wall_nanos).collect();
    let slowest = worker_wall_nanos.iter().copied().max().unwrap_or(1).max(1);
    let fastest = worker_wall_nanos.iter().copied().min().unwrap_or(1).max(1);
    ParallelRun {
        threads,
        transitions,
        checked_events,
        violations,
        elapsed,
        events_per_sec: checked_events as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        epoch_sweeps: epochs.sweeps(),
        leak_sweep_peak: leak_peak.load(Ordering::Relaxed),
        cross_thread_uses: cross_thread.load(Ordering::Relaxed),
        store_residue: store.len(),
        trace_events: recorder.total_events(),
        shutdown_reports,
        worker_wall_nanos,
        fairness_spread: slowest as f64 / fastest as f64,
    }
}

/// The per-entity machine the shared store runs: a plain acquire/release
/// resource lifecycle, one fresh entity per native call per worker.
fn lifecycle_machine() -> jinn_fsm::MachineSpec {
    use jinn_fsm::{ConstraintClass, Direction, EntityKind};
    jinn_fsm::MachineSpec::builder("bench-resource", ConstraintClass::Resource)
        .entity(EntityKind::Reference)
        .state("BeforeAcquire")
        .state("Acquired")
        .state("Released")
        .error_state("Error:Dangling", "dangling use in {function}")
        .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
            t.on(Direction::CallJavaToC, "native call")
        })
        .transition("Release", "Acquired", "Released", |t| {
            t.on(Direction::ReturnCToJava, "native return")
        })
        .build()
        .expect("static spec")
}

struct WorkerContext<'a> {
    t: usize,
    jinn: Jinn,
    share: u64,
    ballast: usize,
    gc_period: u64,
    safepoint_every: u64,
    store: &'a AtomicStore<u64>,
    acquire: TransitionId,
    release: TransitionId,
    released: jinn_fsm::StateId,
    directory: &'a [RwLock<HashMap<u64, u64>>],
    epochs: &'a EpochParticipants,
    cross_thread: &'a AtomicU64,
    leak_peak: &'a AtomicU64,
    recorder: Recorder,
}

struct WorkerResult {
    transitions: u64,
    checks_executed: u64,
    violations: u64,
    shutdown_reports: usize,
    wall_nanos: u64,
}

fn run_worker(cx: WorkerContext<'_>) -> WorkerResult {
    let wall_start = Instant::now();
    let mut vm = Vendor::HotSpot.vm();
    vm.jvm_mut().set_auto_gc_period(Some(cx.gc_period));
    // Ballast: long-lived globals allocated *before* the session exists,
    // so the checker never sees them (no leak-sweep noise). They make
    // every copying collection cost O(ballast).
    if let Some(class) = vm.jvm().find_class("java/lang/Object") {
        for _ in 0..cx.ballast {
            let oop = vm.jvm_mut().alloc_object(class);
            vm.jvm_mut().new_global(oop);
        }
    }
    let (entry, args) = build_workload(&mut vm, 0x9e37_79b9 ^ cx.t as u64);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.set_recorder(cx.recorder.clone());
    let stats = jinn_core::install_prebuilt(&mut session, cx.jinn);

    // Join the epoch domain; pinning advertises progress, and the
    // handle's drop takes this worker out of every future quiesce.
    let epoch = cx.epochs.register();

    let mut iter: u64 = 0;
    while session.vm().stats().total() < cx.share {
        let outcome = session.run_native(thread, entry, &args);
        debug_assert!(
            matches!(outcome, RunOutcome::Completed(_)),
            "workload must be bug-free: {outcome:?}"
        );
        if !matches!(outcome, RunOutcome::Completed(_)) {
            break;
        }

        // Shared store: acquire/release a fresh per-thread entity on the
        // lock-free dense path. The key space is disjoint per worker, so
        // `cross_thread` must stay None — any Some is an
        // EnvMismatch-class bug in this driver.
        let key = (cx.t as u64) * KEYS_PER_WORKER + (iter % KEYS_PER_WORKER);
        let out = cx.store.apply(cx.t as u16, &key, cx.acquire);
        if out.cross_thread.is_some() {
            cx.cross_thread.fetch_add(1, Ordering::Relaxed);
        }
        cx.store.apply(cx.t as u16, &key, cx.release);
        cx.store.evict(&key);

        // Shared heap directory: publish into one shard, read another.
        let h = key.wrapping_add(iter).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let shard = (h >> 33) as usize % cx.directory.len();
        {
            let mut map = cx.directory[shard]
                .write()
                .unwrap_or_else(|e| e.into_inner());
            map.insert(h & 0xfff, iter);
        }
        if iter.is_multiple_of(16) {
            let other = (shard + 1) % cx.directory.len();
            let map = cx.directory[other]
                .read()
                .unwrap_or_else(|e| e.into_inner());
            let _ = map.len();
        }

        // Epochs: advertise progress every iteration (one load + one
        // store); periodically take a quiesced cut and sweep — the
        // other workers keep running the whole time.
        iter += 1;
        epoch.pin();
        if iter.is_multiple_of(cx.safepoint_every) {
            epoch.quiesce(|| {
                // Leak/death sweep against the quiesced cut: sorted and
                // a pure function of the pre-epoch operation set.
                let live = cx.store.entities_not_in(cx.released).len() as u64;
                cx.leak_peak.fetch_max(live, Ordering::Relaxed);
                for s in cx.directory {
                    let mut map = s.write().unwrap_or_else(|e| e.into_inner());
                    if map.len() > 2_048 {
                        map.clear();
                    }
                }
            });
        }
    }

    // Leave the epoch domain before shutdown so sweeping peers never
    // wait on a finished worker.
    drop(epoch);
    let transitions = session.vm().stats().total();
    let reports = session.shutdown();
    WorkerResult {
        transitions,
        checks_executed: stats.checks_executed(),
        violations: stats.violations(),
        shutdown_reports: reports.len(),
        wall_nanos: wall_start.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            transitions: 4_000,
            ballast: 256,
            gc_period: 256,
            safepoint_every: 64,
        }
    }

    #[test]
    fn single_worker_runs_clean() {
        let run = run_parallel(&small(1));
        assert!(run.transitions >= 4_000);
        assert!(run.checked_events > 0);
        assert_eq!(run.violations, 0);
        assert_eq!(run.cross_thread_uses, 0);
        assert_eq!(run.store_residue, 0);
        assert_eq!(run.shutdown_reports, 0);
        assert!(run.trace_events > 0);
        assert_eq!(run.worker_wall_nanos.len(), 1);
        assert!(run.fairness_spread >= 1.0);
    }

    #[test]
    fn four_workers_run_clean_and_sweep_epochs() {
        let run = run_parallel(&small(4));
        assert_eq!(run.threads, 4);
        assert!(run.checked_events > 0);
        assert_eq!(run.violations, 0, "workload is bug-free");
        assert_eq!(run.cross_thread_uses, 0, "entity keys are disjoint");
        assert_eq!(run.store_residue, 0, "every acquire is evicted");
        assert_eq!(run.shutdown_reports, 0);
        assert!(run.epoch_sweeps > 0, "epoch sweeps must actually fire");
        assert!(
            run.leak_sweep_peak <= 4 * KEYS_PER_WORKER,
            "leak sweep bounded by the live window: {run:?}"
        );
        assert_eq!(run.worker_wall_nanos.len(), 4);
        assert!(run.fairness_spread >= 1.0);
    }

    #[test]
    fn total_work_is_constant_across_thread_counts() {
        let one = run_parallel(&small(1));
        let four = run_parallel(&small(4));
        // Shares are floor-divided, so allow the per-worker overshoot of
        // finishing the in-flight native call.
        let lo = one.transitions.min(four.transitions) as f64;
        let hi = one.transitions.max(four.transitions) as f64;
        assert!(hi / lo < 1.10, "within 10%: {one:?} vs {four:?}");
    }
}
