//! The dispatch microbenchmark: reference [`StateStore`] vs compiled
//! [`CompactStore`] on byte-identical deterministic event streams.
//!
//! Both engines consume the same pre-generated mix of applicable,
//! not-applicable, and error-entering transitions over a dense `u32`
//! key space, folding every [`TransitionOutcome`] into an FNV checksum.
//! Equal checksums prove the engines agreed outcome-for-outcome on the
//! whole run, so the timing comparison is apples-to-apples; the sharded
//! variant drives [`ShardedStateStore`] vs `ShardedCompactStore` with
//! disjoint per-worker key ranges.
//!
//! Event streams are generated *before* the clock starts, so the timed
//! region is dispatch plus the checksum fold — not the RNG.

use std::time::{Duration, Instant};

use jinn_fsm::{
    AtomicStore, ConstraintClass, Direction, Engine, EntityKind, MachineSpec, ShardedStateStore,
    TransitionId, TransitionOutcome,
};

/// Knobs for one dispatch measurement.
#[derive(Debug, Clone, Copy)]
pub struct DispatchConfig {
    /// Transition applications per single-thread trial, and in total
    /// across workers for the sharded trial.
    pub events: u64,
    /// Working-set size: distinct entity keys per worker.
    pub entities: u32,
    /// Worker count for the sharded measurement.
    pub threads: usize,
}

impl Default for DispatchConfig {
    fn default() -> DispatchConfig {
        DispatchConfig {
            events: 1_000_000,
            entities: 16_384,
            threads: 4,
        }
    }
}

/// One pre-generated boundary event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Entity key (dense `u32`).
    pub key: u32,
    /// Transition to apply.
    pub transition: TransitionId,
    /// Evict the entity after applying (sparse churn, keeps first-touch
    /// insertion on the hot path).
    pub evict: bool,
}

/// One measured trial: wall-clock plus the outcome checksum that must
/// match across engines.
#[derive(Debug, Clone, Copy)]
pub struct DispatchRun {
    /// Wall-clock for the whole event stream.
    pub elapsed: Duration,
    /// FNV fold of every transition outcome, in stream order.
    pub checksum: u64,
    /// Events actually applied.
    pub events: u64,
}

impl DispatchRun {
    /// `events / elapsed` — the headline metric.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// The machine under measurement: the acquire/release resource lifecycle
/// the parallel driver uses, plus a use-after-release transition so the
/// stream exercises the error path (a pre-formatted `Arc` clone in the
/// compiled engine, four string allocations in the reference one).
pub fn dispatch_machine() -> MachineSpec {
    MachineSpec::builder("bench-dispatch", ConstraintClass::Resource)
        .entity(EntityKind::Reference)
        .state("BeforeAcquire")
        .state("Acquired")
        .state("Released")
        .error_state("Error:Dangling", "dangling use in {function}")
        .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
            t.on(Direction::CallJavaToC, "native call")
        })
        .transition("Release", "Acquired", "Released", |t| {
            t.on(Direction::ReturnCToJava, "native return")
        })
        .transition("UseAfterRelease", "Released", "Error:Dangling", |t| {
            t.on(Direction::CallCToJava, "JNI function taking reference")
        })
        .build()
        .expect("static spec")
}

/// Generates `events` deterministic events over keys
/// `[base, base + entities)`: ~55% Acquire, ~39% Release, ~6%
/// UseAfterRelease, ~1.6% post-apply evictions.
pub fn generate(
    machine: &MachineSpec,
    events: u64,
    entities: u32,
    base: u32,
    seed: u64,
) -> Vec<Event> {
    let transitions = [
        machine.transition_id("Acquire").expect("spec"),
        machine.transition_id("Release").expect("spec"),
        machine.transition_id("UseAfterRelease").expect("spec"),
    ];
    let mut rng = seed | 1;
    (0..events)
        .map(|_| {
            let r = xorshift(&mut rng);
            Event {
                key: base + (r % u64::from(entities)) as u32,
                transition: match (r >> 32) & 0xff {
                    0..=139 => transitions[0],
                    140..=239 => transitions[1],
                    _ => transitions[2],
                },
                evict: r & 0x3f == 0x3f,
            }
        })
        .collect()
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn fnv(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Folds one outcome into the running checksum. Error records are hashed
/// field-by-field so a diagnosis mismatch between engines is caught, not
/// just a state mismatch.
fn fold(hash: u64, outcome: &TransitionOutcome) -> u64 {
    // Rotate-xor keeps the fold order-sensitive at a couple of ALU ops,
    // so the timed loop measures dispatch, not checksum arithmetic.
    let tagged = match outcome {
        TransitionOutcome::Moved { from, to } => {
            hash ^ (1 | ((from.index() as u64) << 8) | ((to.index() as u64) << 24))
        }
        TransitionOutcome::NotApplicable { current } => {
            hash ^ (2 | ((current.index() as u64) << 8))
        }
        TransitionOutcome::Error(e) => {
            let h = fnv(hash ^ 3, e.machine.as_bytes());
            let h = fnv(h, e.transition.as_bytes());
            let h = fnv(h, e.state.as_bytes());
            fnv(h, e.diagnosis.as_bytes())
        }
    };
    tagged.rotate_left(5)
}

/// Cap on the materialized stream length: longer runs loop a
/// cache-resident stream instead of streaming hundreds of megabytes of
/// pre-generated events through memory, so the timed region measures
/// dispatch rather than stream-buffer bandwidth (entity state persists
/// across rounds, so coverage is unchanged).
pub const STREAM_CAP: u64 = 1 << 17;

/// Runs a pre-generated stream through one single-threaded engine.
pub fn run_single<E: Engine<u32>>(cfg: &DispatchConfig, seed: u64) -> DispatchRun {
    let machine = dispatch_machine();
    let len = cfg.events.clamp(1, STREAM_CAP);
    let rounds = cfg.events / len;
    let stream = generate(&machine, len, cfg.entities, 0, seed);
    let mut engine = E::for_machine(machine);
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let start = Instant::now();
    for _ in 0..rounds {
        for event in &stream {
            hash = fold(hash, &engine.apply(&event.key, event.transition));
            if event.evict {
                engine.evict(&event.key);
            }
        }
    }
    DispatchRun {
        elapsed: start.elapsed(),
        checksum: hash,
        events: len * rounds,
    }
}

/// Runs pre-generated streams through a sharded store, `cfg.threads`
/// workers with disjoint dense key ranges (worker `t` owns
/// `[t*entities, (t+1)*entities)`).
///
/// The checksum is the XOR of per-worker stream checksums — order-free
/// across workers, order-sensitive within each, so it still pins both
/// engines to identical per-worker outcome sequences.
pub fn run_sharded<E: Engine<u32> + Send>(cfg: &DispatchConfig, seed: u64) -> DispatchRun {
    let threads = cfg.threads.max(1);
    let share = cfg.events / threads as u64;
    let len = share.clamp(1, STREAM_CAP);
    let rounds = share / len;
    let machine = dispatch_machine();
    let streams: Vec<Vec<Event>> = (0..threads)
        .map(|t| {
            let base = t as u32 * cfg.entities;
            let worker_seed = seed.wrapping_add(t as u64).wrapping_mul(0x9e37_79b9);
            generate(&machine, len, cfg.entities, base, worker_seed)
        })
        .collect();
    let store: ShardedStateStore<u32, E> = ShardedStateStore::with_shards(machine, threads);

    let start = Instant::now();
    let checksum = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(t, stream)| {
                let store = &store;
                scope.spawn(move || {
                    let mut hash = 0xcbf2_9ce4_8422_2325u64;
                    for _ in 0..rounds {
                        for event in stream {
                            let out = store.apply(t as u16, &event.key, event.transition);
                            debug_assert!(out.cross_thread.is_none(), "keys are worker-disjoint");
                            hash = fold(hash, &out.outcome);
                            if event.evict {
                                store.evict(&event.key);
                            }
                        }
                    }
                    hash
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker must not panic"))
            .fold(0u64, |acc, h| acc ^ h)
    });
    DispatchRun {
        elapsed: start.elapsed(),
        checksum,
        events: len * rounds * threads as u64,
    }
}

/// Runs the same per-worker streams through the lock-free
/// [`AtomicStore`]: no shard mutexes, one CAS per transition on a dense
/// atomic slab. Checksums are folded exactly as in [`run_sharded`], so
/// a matching checksum proves the lock-free engine agreed
/// outcome-for-outcome with both locked engines on every worker stream.
pub fn run_lockfree(cfg: &DispatchConfig, seed: u64) -> DispatchRun {
    let threads = cfg.threads.max(1);
    let share = cfg.events / threads as u64;
    let len = share.clamp(1, STREAM_CAP);
    let rounds = share / len;
    let machine = dispatch_machine();
    let streams: Vec<Vec<Event>> = (0..threads)
        .map(|t| {
            let base = t as u32 * cfg.entities;
            let worker_seed = seed.wrapping_add(t as u64).wrapping_mul(0x9e37_79b9);
            generate(&machine, len, cfg.entities, base, worker_seed)
        })
        .collect();
    let store: AtomicStore<u32> = AtomicStore::new(machine);

    let start = Instant::now();
    let checksum = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(t, stream)| {
                let store = &store;
                scope.spawn(move || {
                    let mut hash = 0xcbf2_9ce4_8422_2325u64;
                    for _ in 0..rounds {
                        for event in stream {
                            let out = store.apply(t as u16, &event.key, event.transition);
                            debug_assert!(out.cross_thread.is_none(), "keys are worker-disjoint");
                            hash = fold(hash, &out.outcome);
                            if event.evict {
                                store.evict(&event.key);
                            }
                        }
                    }
                    hash
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker must not panic"))
            .fold(0u64, |acc, h| acc ^ h)
    });
    DispatchRun {
        elapsed: start.elapsed(),
        checksum,
        events: len * rounds * threads as u64,
    }
}

/// Medians a list of trial durations (nanoseconds).
pub fn median_nanos(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Best (minimum) of a list of trial durations — the noise-robust
/// estimator on shared machines, where interference only ever adds time.
pub fn best_nanos(samples: &[u128]) -> u128 {
    *samples.iter().min().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinn_fsm::{CompactStore, DiffStore, StateStore};

    fn small() -> DispatchConfig {
        DispatchConfig {
            events: 20_000,
            entities: 64,
            threads: 4,
        }
    }

    #[test]
    fn engines_agree_on_the_single_thread_stream() {
        let cfg = small();
        let reference = run_single::<StateStore<u32>>(&cfg, 42);
        let compiled = run_single::<CompactStore<u32>>(&cfg, 42);
        let differential = run_single::<DiffStore<u32>>(&cfg, 42);
        assert_eq!(reference.checksum, compiled.checksum);
        assert_eq!(reference.checksum, differential.checksum);
        assert_eq!(reference.events, compiled.events);
    }

    #[test]
    fn engines_agree_on_the_sharded_stream() {
        let cfg = small();
        let reference = run_sharded::<StateStore<u32>>(&cfg, 42);
        let compiled = run_sharded::<CompactStore<u32>>(&cfg, 42);
        let lockfree = run_lockfree(&cfg, 42);
        assert_eq!(reference.checksum, compiled.checksum);
        assert_eq!(reference.checksum, lockfree.checksum);
        assert_eq!(reference.events, compiled.events);
        assert_eq!(reference.events, lockfree.events);
    }

    #[test]
    fn different_seeds_change_the_checksum() {
        let cfg = small();
        let a = run_single::<StateStore<u32>>(&cfg, 1);
        let b = run_single::<StateStore<u32>>(&cfg, 2);
        assert_ne!(a.checksum, b.checksum, "checksum must reflect the stream");
    }

    #[test]
    fn stream_mix_exercises_every_transition_and_the_error_path() {
        let machine = dispatch_machine();
        let stream = generate(&machine, 20_000, 64, 0, 7);
        let mut counts = [0u64; 3];
        for e in &stream {
            counts[e.transition.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "all transitions: {counts:?}");
        let errors = run_single::<StateStore<u32>>(&small(), 7);
        // The checksum folding error strings is only meaningful if error
        // outcomes actually occur; a pure Moved/NotApplicable stream
        // would silently stop covering the error path.
        let _ = errors;
        let mut engine: StateStore<u32> = StateStore::new(machine);
        let hit_error = stream
            .iter()
            .any(|e| engine.apply(&e.key, e.transition).error().is_some());
        assert!(hit_error, "stream must enter the error state");
    }

    #[test]
    fn median_is_order_insensitive() {
        assert_eq!(median_nanos(vec![5, 1, 9]), 5);
        assert_eq!(median_nanos(vec![9, 1, 5]), 5);
    }
}
