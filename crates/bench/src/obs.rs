//! A boundary-crossing JNI workload shared by the observability
//! binaries: a native method that churns strings across the JNI seam
//! (allocations, comparisons, deletions) with GC pressure, driven by the
//! full Jinn checker stack — every layer the recorder instruments.

use std::rc::Rc;

use jinn_obs::Recorder;
use minijni::{typed, RunOutcome, Session, Vm};
use minijvm::{JValue, MethodId};

/// A session running the churn workload, with the Jinn checker attached
/// and the given recorder installed.
pub struct ChurnHarness {
    session: Session,
    entry: MethodId,
}

impl ChurnHarness {
    /// Builds the harness. `strings_per_call` controls how many JNI
    /// round-trips each native call performs.
    pub fn new(recorder: Recorder, strings_per_call: u32) -> ChurnHarness {
        let mut vm = Vm::permissive();
        vm.jvm_mut().set_auto_gc_period(Some(64));
        let (_c, entry) = vm.define_native_class(
            "bench/Churn",
            "churn",
            "()I",
            true,
            Rc::new(move |env, _| {
                let mut survived = 0;
                for i in 0..strings_per_call {
                    let s = typed::new_string_utf(env, &format!("churn-{i}"))?;
                    let len = typed::get_string_utf_length(env, s)?;
                    if len > 0 {
                        survived += 1;
                    }
                    typed::delete_local_ref(env, s)?;
                }
                Ok(JValue::Int(survived))
            }),
        );
        let mut session = Session::new(vm);
        session.set_recorder(recorder);
        jinn_core::install(&mut session);
        ChurnHarness { session, entry }
    }

    /// Runs the native method once; panics on any non-completion outcome
    /// (the workload is bug-free by construction).
    pub fn run_once(&mut self) {
        let thread = self.session.vm().jvm().main_thread();
        let outcome = self.session.run_native(thread, self.entry, &[]);
        assert!(
            matches!(outcome, RunOutcome::Completed(JValue::Int(_))),
            "churn workload must complete: {outcome:?}"
        );
    }

    /// The session, for reading the recorder after runs.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The session, mutably (forensics extraction).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

/// Runs `calls` native calls and returns the elapsed wall time.
pub fn time_churn(recorder: Recorder, calls: u32, strings_per_call: u32) -> std::time::Duration {
    let mut harness = ChurnHarness::new(recorder, strings_per_call);
    let start = std::time::Instant::now();
    for _ in 0..calls {
        harness.run_once();
    }
    start.elapsed()
}

/// Median of a set of sampled durations, in nanoseconds.
pub fn median_nanos(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}
