//! `jinn-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — the pitfall/behaviour matrix |
//! | `table2` | Table 2 — constraint classification counts |
//! | `table3` | Table 3 — normalized overhead on 19 benchmarks |
//! | `figure9` | Figure 9 — error messages of the three checkers |
//! | `figure10` | Figure 10 — Subversion local-reference time series |
//! | `coverage` | Section 6.3 — microbenchmark detection coverage |
//! | `casestudies` | Section 6.4 — Subversion/Java-gnome/Eclipse findings |
//! | `codegen_stats` | Section 1/4 — spec size vs generated-code size |
//! | `python_checker` | Section 7 / Figure 11 — the Python/C checker |
//! | `obs_trace` | Observability — Chrome trace + metrics exports |
//! | `obs_overhead` | Observability — recorder-off vs recorder-on cost |
//! | `parallel` | Sharded checking — events/sec at 1/2/4/8 worker threads |
//! | `dispatch` | Compiled dispatch — reference vs compiled engine throughput |
//!
//! This library crate holds the shared table-rendering helpers, the
//! [`obs`] workload used by the observability binaries, the
//! [`parallel`] multi-threaded workload driver, and the [`dispatch`]
//! engine microbenchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod obs;
pub mod parallel;

/// Renders rows as a padded ASCII table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("| {h:w$} "));
    }
    line.push('|');
    let rule: String = line
        .chars()
        .map(|c| if c == '|' { '+' } else { '-' })
        .collect();
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&line);
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            line.push_str(&format!("| {cell:w$} "));
        }
        line.push('|');
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// Reads a `NAME=value` integer from the environment with a default —
/// used for experiment scale factors.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Marks agreement between the paper's expectation and the measured value.
pub fn tick(matches: bool) -> &'static str {
    if matches {
        "ok"
    } else {
        "DIFF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("| name   |"));
        assert!(t.contains("| longer | 22    |"));
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "all lines same width"
        );
    }

    #[test]
    fn env_default() {
        assert_eq!(env_u64("JINN_BENCH_NO_SUCH_VAR", 7), 7);
    }
}
