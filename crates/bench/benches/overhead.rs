//! Criterion benches behind Table 3: the cost of one workload iteration
//! under each of the four measured configurations.
//!
//! ```text
//! cargo bench -p jinn-bench --bench overhead
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jinn_vendors::Vendor;
use jinn_workloads::{build_workload, Treatment};
use minijni::Session;

fn session_for(treatment: Treatment) -> (Session, minijvm::MethodId, Vec<minijvm::JValue>) {
    let mut vm = Vendor::HotSpot.vm();
    let (entry, args) = build_workload(&mut vm, 0xBEEF);
    let mut session = Session::new(vm);
    match treatment {
        Treatment::Baseline => {}
        Treatment::VendorCheck => session.attach(Vendor::HotSpot.xcheck()),
        Treatment::JinnInterposing => {
            session.attach(Box::new(jinn_core::Jinn::interpose_only()));
        }
        Treatment::JinnChecking => {
            jinn_core::install(&mut session);
        }
    }
    (session, entry, args)
}

fn bench_workload_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_iteration");
    for treatment in Treatment::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(treatment),
            &treatment,
            |b, &treatment| {
                let (mut session, entry, args) = session_for(treatment);
                let thread = session.vm().jvm().main_thread();
                b.iter(|| {
                    let outcome = session.run_native(thread, entry, &args);
                    assert!(matches!(outcome, minijni::RunOutcome::Completed(_)));
                });
            },
        );
    }
    group.finish();
}

fn bench_native_call_roundtrip(c: &mut Criterion) {
    // The bare Call:Java→C / Return:C→Java round trip with an empty body —
    // the floor of the interposition cost.
    let mut group = c.benchmark_group("native_roundtrip");
    for treatment in [
        Treatment::Baseline,
        Treatment::JinnInterposing,
        Treatment::JinnChecking,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(treatment),
            &treatment,
            |b, &treatment| {
                let mut vm = Vendor::HotSpot.vm();
                let (_, entry) = vm.define_native_class(
                    "bench/Empty",
                    "nop",
                    "()V",
                    true,
                    std::rc::Rc::new(|_env, _| Ok(minijvm::JValue::Void)),
                );
                let mut session = Session::new(vm);
                match treatment {
                    Treatment::JinnInterposing => {
                        session.attach(Box::new(jinn_core::Jinn::interpose_only()));
                    }
                    Treatment::JinnChecking => {
                        jinn_core::install(&mut session);
                    }
                    _ => {}
                }
                let thread = session.vm().jvm().main_thread();
                b.iter(|| {
                    let outcome = session.run_native(thread, entry, &[]);
                    assert!(matches!(outcome, minijni::RunOutcome::Completed(_)));
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_workload_iteration, bench_native_call_roundtrip
}
criterion_main!(benches);
