//! Criterion benches of per-machine check microcosts: how much one JNI
//! call of each flavour costs under full Jinn, isolating which of the
//! eleven machines' checks dominate (the ablation DESIGN.md calls out).
//!
//! ```text
//! cargo bench -p jinn-bench --bench checks
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jinn_vendors::Vendor;
use minijni::{typed, Session};
use minijvm::JValue;
use std::rc::Rc;

/// Builds a session in which a native method runs `op` once per call.
fn bench_op(
    c: &mut Criterion,
    group_name: &str,
    with_jinn: bool,
    op: impl Fn(&mut minijni::JniEnv<'_>, &[JValue]) -> Result<JValue, minijni::JniError> + 'static,
) {
    let mut vm = Vendor::HotSpot.vm();
    let (_, entry) = vm.define_native_class(
        "bench/Ops",
        "op",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(op),
    );
    let class = vm
        .jvm()
        .find_class("java/lang/Object")
        .expect("bootstrapped");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let arg = JValue::Ref(vm.jvm_mut().new_local(thread, oop));
    let mut session = Session::new(vm);
    if with_jinn {
        jinn_core::install(&mut session);
    }
    let label = if with_jinn { "jinn" } else { "raw" };
    c.bench_with_input(BenchmarkId::new(group_name, label), &(), |b, ()| {
        b.iter(|| {
            let outcome = session.run_native(thread, entry, std::slice::from_ref(&arg));
            assert!(matches!(outcome, minijni::RunOutcome::Completed(_)));
        });
    });
}

fn per_check_costs(c: &mut Criterion) {
    for with_jinn in [false, true] {
        // JVM-state machines only (GetVersion has no parameters).
        bench_op(c, "jvm_state_only", with_jinn, |env, _| {
            typed::get_version(env)?;
            Ok(JValue::Void)
        });
        // Nullness + fixed-typing + ref-use machines (string functions).
        bench_op(c, "string_type_checks", with_jinn, |env, _| {
            let s = typed::new_string_utf(env, "abc")?;
            let _ = typed::get_string_length(env, s)?;
            typed::delete_local_ref(env, s)?;
            Ok(JValue::Void)
        });
        // Resource machines (pin acquire/release).
        bench_op(c, "pinned_buffer_machine", with_jinn, |env, _| {
            let arr = typed::new_int_array(env, 4)?;
            let pin = typed::get_int_array_elements(env, arr)?;
            typed::release_int_array_elements(env, arr, pin, 0)?;
            typed::delete_local_ref(env, arr)?;
            Ok(JValue::Void)
        });
        // Entity-typing machine (method lookup + call).
        bench_op(c, "entity_typing_machine", with_jinn, |env, args| {
            let obj = args[0].as_ref().expect("receiver");
            let clazz = typed::get_object_class(env, obj)?;
            let mid = typed::get_method_id(env, clazz, "toString", "()Ljava/lang/String;");
            // java/lang/Object has no toString in the mini registry; the
            // lookup itself (including the thrown NoSuchMethodError path)
            // is what we're timing.
            if mid.is_err() {
                typed::exception_clear(env)?;
            }
            typed::delete_local_ref(env, clazz)?;
            Ok(JValue::Void)
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = per_check_costs
}
criterion_main!(benches);
