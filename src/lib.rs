//! Jinn — synthesized dynamic bug detectors for foreign language
//! interfaces, reproduced in Rust.
//!
//! Façade crate re-exporting the workspace's public API. See the individual
//! crates for details:
//!
//! * [`fsm`] — the state-machine specification framework (paper Section 4).
//! * [`jvm`] — the simulated JVM substrate.
//! * [`jni`] — the 229-function JNI surface and its constraint registry.
//! * [`spec`] — the eleven Jinn state machines (Figures 2, 6, 7, 8).
//! * [`core`] — the synthesizer (Algorithm 1) and the interposing checker.
//! * [`vendors`] — HotSpot/J9 behavioural models and `-Xcheck:jni` baselines.
//! * [`py`] — the mini Python interpreter and its Python/C checker (Sec 7).
//! * [`obs`] — boundary-crossing trace ring, metrics, and bug forensics.
//! * [`microbench`] — the 16 error-triggering microbenchmarks (Sec 6.1).
//! * [`workloads`] — Table 3 workload generators and the Section 6.4 case
//!   studies.
//! * [`replay`] — deterministic trace record/replay with differential
//!   verdict checking (the `.jtrace` format and golden corpus).
//! * [`serve`] — the multi-tenant trace-ingestion and re-judging daemon
//!   with its verdict query API.

pub use jinn_core as core;
pub use jinn_fsm as fsm;
pub use jinn_microbench as microbench;
pub use jinn_obs as obs;
pub use jinn_replay as replay;
pub use jinn_serve as serve;
pub use jinn_spec as spec;
pub use jinn_vendors as vendors;
pub use jinn_workloads as workloads;
pub use minijni as jni;
pub use minijvm as jvm;
pub use minipy as py;
