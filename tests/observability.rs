//! End-to-end observability tests: the trace ring, metrics, forensics,
//! and hook panic containment, across the whole JVM/JNI/checker stack
//! and the Python/C side.

use std::rc::Rc;

use jinn::jni::{typed, CallCx, Interpose, Report, RunOutcome, Session, Vm};
use jinn::jvm::{JValue, Jvm};
use jinn::obs::{EventKind, Recorder, TracePolicy};
use jinn::py::{dangle_bug, PyRunOutcome, PySession};

fn object_arg(vm: &mut Vm) -> JValue {
    let class = vm
        .jvm()
        .find_class("java/lang/Object")
        .expect("bootstrapped");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    JValue::Ref(vm.jvm_mut().new_local(thread, oop))
}

/// A recorded GC-heavy workload produces a trace with JNI, FSM, and GC
/// events, non-zero metrics for all three, and a Chrome trace export —
/// the ISSUE's acceptance workload.
#[test]
fn recorded_workload_produces_trace_metrics_and_chrome_json() {
    let mut vm = Vm::permissive();
    vm.jvm_mut().set_auto_gc_period(Some(1)); // GC at every safepoint
    let (_c, entry) = vm.define_native_class(
        "obs/Churn",
        "churn",
        "(Ljava/lang/Object;)Z",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("arg");
            let mut ok = true;
            for i in 0..10 {
                let s = typed::new_string_utf(env, &format!("tmp-{i}"))?;
                ok &= !typed::is_same_object(env, obj, s)?;
                typed::delete_local_ref(env, s)?;
            }
            Ok(JValue::Bool(ok))
        }),
    );
    let arg = object_arg(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.set_recorder(Recorder::enabled(1024));
    jinn::core::install(&mut session);
    let outcome = session.run_native(thread, entry, &[arg]);
    assert!(
        matches!(outcome, RunOutcome::Completed(JValue::Bool(true))),
        "{outcome:?}"
    );

    // The ring saw all three event families.
    let events = session.recorder().events();
    let has = |pred: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::JniEnter { .. })));
    assert!(has(&|k| matches!(k, EventKind::JniExit { .. })));
    assert!(has(&|k| matches!(k, EventKind::NativeEnter { .. })));
    assert!(has(&|k| matches!(k, EventKind::FsmTransition { .. })));
    assert!(has(&|k| matches!(k, EventKind::GcSafepoint { .. })));
    assert!(has(&|k| matches!(k, EventKind::Gc { .. })));

    // Metrics: non-zero JNI, FSM, and GC counts.
    let snapshot = session.recorder().snapshot().expect("recorder enabled");
    let m = &snapshot.metrics;
    assert!(m.total_jni_calls() > 0, "jni calls");
    assert!(m.total_fsm_transitions() > 0, "fsm transitions");
    assert!(m.counter("gc.safepoints") > 0, "safepoints");
    assert!(m.counter("gc.collections") > 0, "collections");
    assert!(m.counter("native.calls") > 0, "native calls");
    assert!(
        m.jni_functions().any(|(f, _)| f == "NewStringUTF"),
        "per-function metrics keyed by JNI name"
    );
    let rendered = snapshot.render();
    assert!(rendered.contains("NewStringUTF"), "{rendered}");

    // Exporters.
    let chrome = session.recorder().chrome_trace().expect("enabled");
    assert!(
        chrome.starts_with("{\"displayTimeUnit\":\"ms\""),
        "{chrome}"
    );
    assert!(chrome.contains("\"ph\":\"B\""), "begin events present");
    assert!(chrome.contains("NewStringUTF"), "function names present");
    let dump = session.recorder().text_dump().expect("enabled");
    assert!(dump.contains("NewStringUTF"), "{dump}");
}

/// A disabled recorder observes nothing and exports nothing.
#[test]
fn disabled_recorder_is_inert() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "obs/Quiet",
        "m",
        "()V",
        true,
        Rc::new(|env, _| {
            typed::get_version(env)?;
            Ok(JValue::Void)
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn::core::install(&mut session);
    assert!(!session.recorder().is_enabled());
    session.run_native(thread, entry, &[]);
    assert!(session.recorder().events().is_empty());
    assert!(session.recorder().snapshot().is_none());
    assert!(session.recorder().chrome_trace().is_none());
    assert!(session.last_bug_report().is_none());
}

/// The Figure 9 experience: a seeded use-after-release produces a
/// forensics report naming the machine, the failing entity, and the last
/// N boundary crossings.
#[test]
fn seeded_dangling_local_produces_forensics_report() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "obs/Dangle",
        "m",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            let r = typed::new_local_ref(env, obj)?;
            typed::delete_local_ref(env, r)?;
            // Use after release: the checker must fire here.
            let _ = typed::is_same_object(env, obj, r)?;
            Ok(JValue::Void)
        }),
    );
    let arg = object_arg(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.set_recorder(Recorder::enabled(512));
    jinn::core::install(&mut session);
    let outcome = session.run_native(thread, entry, &[arg]);
    match &outcome {
        RunOutcome::CheckerException(v) => assert_eq!(v.machine, "local-reference"),
        other => panic!("expected a checker exception, got {other:?}"),
    }

    let report = session.take_bug_report().expect("forensics captured");
    assert_eq!(report.machine, "local-reference");
    assert!(!report.recent.is_empty(), "history attached");
    let text = report.render();
    assert!(text.contains("JNIAssertionFailure"), "{text}");
    assert!(text.contains("local-reference"), "{text}");
    assert!(
        report.entity.is_some(),
        "failing entity recovered from the ring: {text}"
    );
    // The history ends at (or near) the failing call.
    assert!(text.contains("IsSameObject"), "{text}");
}

/// The Python/C checker's use-after-release (Figure 11) also captures a
/// forensics report, through `PySession`.
#[test]
fn python_use_after_release_produces_forensics_report() {
    let mut s = PySession::with_checker();
    s.set_recorder(Recorder::enabled(512));
    let outcome = s.run(|env| dangle_bug(env).map(|_| ()));
    match &outcome {
        PyRunOutcome::CheckerError(v) => {
            assert_eq!(v.machine, "borrowed-reference");
            assert!(v.entity.is_some(), "violation names the pointer");
        }
        other => panic!("expected a checker error, got {other:?}"),
    }
    let report = s.take_bug_report().expect("forensics captured");
    assert_eq!(report.machine, "borrowed-reference");
    assert_eq!(report.error_state, "Error:DanglingBorrow");
    assert_eq!(report.function, "PyString_AsString");
    assert!(report.entity.is_some(), "entity recovered");
    assert!(!report.recent.is_empty());
    let snapshot = s.recorder().snapshot().expect("enabled");
    assert!(snapshot.metrics.total_jni_calls() > 0, "Python/C calls");
    assert!(snapshot.metrics.counter("checks.violations") > 0);
}

/// Runs the seeded use-after-release workload under the given trace
/// policy and serialises everything verdict-related: the violation the
/// checker raised and the metrics the recorder aggregated (which the
/// policy must never thin).
fn dangle_verdict_bytes(policy: Option<TracePolicy>) -> Vec<u8> {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "obs/PolicyDangle",
        "m",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().unwrap();
            let r = typed::new_local_ref(env, obj)?;
            typed::delete_local_ref(env, r)?;
            let _ = typed::is_same_object(env, obj, r)?;
            Ok(JValue::Void)
        }),
    );
    let arg = object_arg(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.set_recorder(Recorder::enabled(512));
    if let Some(p) = policy {
        session.recorder().set_policy(p);
    }
    jinn::core::install(&mut session);
    let outcome = session.run_native(thread, entry, &[arg]);
    let violation = match outcome {
        RunOutcome::CheckerException(v) => v,
        other => panic!("expected a checker exception, got {other:?}"),
    };
    let snapshot = session.recorder().snapshot().expect("enabled");
    let mut bytes = format!("{violation:?}\n").into_bytes();
    bytes.extend(
        format!(
            "violations={} checks-metric={}\n",
            snapshot.metrics.counter("checks.violations"),
            snapshot.metrics.total_fsm_transitions(),
        )
        .into_bytes(),
    );
    bytes
}

/// The trace policy governs the ring only: whatever it disables or
/// samples away, the checker's verdicts — and the metrics backing them
/// — are byte-identical across configurations (the ISSUE's acceptance
/// evidence).
#[test]
fn verdicts_are_byte_identical_across_trace_policies() {
    let full = dangle_verdict_bytes(None);
    let off = dangle_verdict_bytes(Some(TracePolicy::off()));
    let sampled = dangle_verdict_bytes(Some(
        TracePolicy::full()
            .rate("local-reference", 4)
            .disable("IsSameObject"),
    ));
    assert_eq!(full, off, "tracing off must not change verdicts");
    assert_eq!(full, sampled, "sampling must not change verdicts");
}

/// Swapping the trace policy while the workload runs takes effect for
/// subsequent events without restarting the session, and both exporters
/// flag the resulting partial coverage.
#[test]
fn policy_swaps_mid_workload_take_effect_and_are_flagged() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "obs/Swap",
        "m",
        "()V",
        true,
        Rc::new(|env, _| {
            typed::get_version(env)?;
            Ok(JValue::Void)
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.set_recorder(Recorder::enabled(1024));
    jinn::core::install(&mut session);

    session.run_native(thread, entry, &[]);
    let baseline = session.recorder().coverage();
    assert!(baseline.recorded > 0, "full policy records");
    assert_eq!(baseline.suppressed_disabled, 0);

    // Phase 2: tracing off. The swap must bite without re-wiring.
    session.recorder().set_policy(TracePolicy::off());
    session.run_native(thread, entry, &[]);
    session.recorder().flush();
    let off = session.recorder().coverage();
    assert_eq!(
        off.recorded, baseline.recorded,
        "no new events while the policy is off"
    );
    assert!(off.suppressed_disabled > 0, "suppression is accounted");
    assert_eq!(off.policy_epoch, baseline.policy_epoch + 1);

    // Phase 3: back to full. Recording resumes on the same rings.
    session.recorder().set_policy(TracePolicy::full());
    session.run_native(thread, entry, &[]);
    session.recorder().flush();
    let restored = session.recorder().coverage();
    assert!(restored.recorded > off.recorded, "recording resumed");

    // Both exporters must say the timeline is partial.
    let chrome = session.recorder().chrome_trace().expect("enabled");
    assert!(chrome.contains("trace-sampling"), "{chrome}");
    let dump = session.recorder().text_dump().expect("enabled");
    assert!(dump.contains("SAMPLED"), "{dump}");

    // Verdict-layer metrics were never thinned: every phase's JNI calls
    // are in the metrics even though phase 2's events are not in the
    // ring.
    let snapshot = session.recorder().snapshot().expect("enabled");
    assert!(
        snapshot.metrics.total_jni_calls() > baseline.recorded / 2,
        "metrics kept counting while tracing was off"
    );
}

/// A checker whose hook panics.
struct Panicky;

impl Interpose for Panicky {
    fn name(&self) -> &str {
        "panicky"
    }

    fn pre_jni(&mut self, _jvm: &Jvm, _cx: &CallCx<'_>) -> Vec<Report> {
        panic!("checker bug: poisoned invariant")
    }
}

/// A panicking hook must not unwind through the `JniEnv` driver: the
/// simulated VM dies deterministically with the panic text as diagnosis,
/// and the host test harness (this function) keeps running.
#[test]
fn panicking_checker_hook_does_not_poison_the_driver() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "obs/Panic",
        "m",
        "()V",
        true,
        Rc::new(|env, _| {
            typed::get_version(env)?;
            Ok(JValue::Void)
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    session.set_recorder(Recorder::enabled(256));
    session.attach(Box::new(Panicky));
    let outcome = session.run_native(thread, entry, &[]);
    match &outcome {
        RunOutcome::Died(d) => {
            assert!(d.message.contains("panicked during pre_jni"), "{d}");
            assert!(d.message.contains("checker bug"), "{d}");
        }
        other => panic!("expected deterministic VM death, got {other:?}"),
    }
    // The internal-error verdict captured forensics like any other abort.
    let report = session.take_bug_report().expect("forensics captured");
    assert_eq!(report.machine, "checker-internal");
    assert_eq!(report.error_state, "Error:Panic");
    // Death is latched, but the session itself stays usable.
    assert!(matches!(
        session.run_native(thread, entry, &[]),
        RunOutcome::Died(_)
    ));
}
