//! Cross-crate integration tests: the full stack from the simulated JVM
//! through the JNI surface to the synthesized checker.

use std::cell::RefCell;
use std::rc::Rc;

use jinn::jni::{typed, JniError, RunOutcome, Session, Vm};
use jinn::jvm::{JValue, PrimArray};
use jinn::vendors::Vendor;

fn object_arg(vm: &mut Vm) -> JValue {
    let class = vm
        .jvm()
        .find_class("java/lang/Object")
        .expect("bootstrapped");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    JValue::Ref(vm.jvm_mut().new_local(thread, oop))
}

#[test]
fn nested_java_c_java_c_call_chain() {
    // Java -> native outer -> managed middle -> native inner, with values
    // flowing back up — the language-transition nesting Jinn interposes on.
    let mut vm = Vm::permissive();
    let (_c, inner) = vm.define_native_class(
        "chain/Inner",
        "leaf",
        "()I",
        true,
        Rc::new(|_env, _| Ok(JValue::Int(21))),
    );
    let (_c2, _middle) = vm.define_managed_class(
        "chain/Middle",
        "relay",
        "()I",
        true,
        Rc::new(move |env, _| {
            let v = env.call_native_method(inner, &[])?;
            Ok(JValue::Int(v.as_int().unwrap_or(0) * 2))
        }),
    );
    let (_c3, outer) = vm.define_native_class(
        "chain/Outer",
        "enter",
        "()I",
        true,
        Rc::new(move |env, _| {
            let clazz = typed::find_class(env, "chain/Middle")?;
            let mid = typed::get_static_method_id(env, clazz, "relay", "()I")?;
            let v = typed::call_static_int_method_a(env, clazz, mid, &[])?;
            Ok(JValue::Int(v))
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn::core::install(&mut session);
    let outcome = session.run_native(thread, outer, &[]);
    match outcome {
        RunOutcome::Completed(JValue::Int(v)) => assert_eq!(v, 42),
        other => panic!("chain failed: {other:?}"),
    }
    assert!(session.shutdown().is_empty(), "no leaks in a clean chain");
    // Transitions: 2 native calls + several JNI calls.
    assert!(session.vm().stats().java_to_c >= 2);
    assert!(session.vm().stats().c_to_java >= 3);
}

#[test]
fn gc_during_native_work_preserves_handles() {
    let mut vm = Vm::permissive();
    vm.jvm_mut().set_auto_gc_period(Some(1)); // GC at every safepoint
    let (_c, entry) = vm.define_native_class(
        "gc/Stress",
        "churn",
        "(Ljava/lang/Object;)Z",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("arg");
            let mut ok = true;
            for i in 0..20 {
                let s = typed::new_string_utf(env, &format!("tmp-{i}"))?;
                // Both references must stay valid across the GCs the
                // safepoints trigger.
                ok &= !typed::is_same_object(env, obj, s)?;
                typed::delete_local_ref(env, s)?;
            }
            Ok(JValue::Bool(ok))
        }),
    );
    let arg = object_arg(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn::core::install(&mut session);
    let outcome = session.run_native(thread, entry, &[arg]);
    assert!(
        matches!(outcome, RunOutcome::Completed(JValue::Bool(true))),
        "{outcome:?}"
    );
    assert!(
        session.vm().jvm().heap().collections() > 10,
        "GC really ran"
    );
}

#[test]
fn register_natives_binds_and_unbinds() {
    let mut vm = Vm::permissive();
    // A class with an unbound native method.
    vm.jvm_mut()
        .registry_mut()
        .define("reg/Native")
        .native_method("hello", "()I", jinn::jvm::MemberFlags::public_static())
        .build()
        .expect("fresh class");
    let (_c, entry) = vm.define_native_class(
        "reg/Driver",
        "drive",
        "()I",
        true,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "reg/Native")?;
            let mid = typed::get_static_method_id(env, clazz, "hello", "()I")?;
            // Before RegisterNatives: UnsatisfiedLinkError.
            match typed::call_static_int_method_a(env, clazz, mid, &[]) {
                Err(JniError::Exception) => typed::exception_clear(env)?,
                other => panic!("expected link error, got {other:?}"),
            }
            typed::register_natives(
                env,
                clazz,
                vec![typed::NativeMethodDef {
                    name: "hello".into(),
                    sig: "()I".into(),
                    func: Rc::new(|_env, _| Ok(JValue::Int(7))),
                }],
            )?;
            let v = typed::call_static_int_method_a(env, clazz, mid, &[])?;
            typed::unregister_natives(env, clazz)?;
            Ok(JValue::Int(v))
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    let outcome = session.run_native(thread, entry, &[]);
    assert!(
        matches!(outcome, RunOutcome::Completed(JValue::Int(7))),
        "{outcome:?}"
    );
}

#[test]
fn push_pop_local_frame_protocol_is_clean_under_jinn() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "frames/Disciplined",
        "work",
        "(Ljava/lang/Object;)V",
        true,
        Rc::new(|env, args| {
            let obj = args[0].as_ref().expect("arg");
            // More than 16 references, managed with explicit frames as the
            // JNI book instructs.
            for _ in 0..5 {
                typed::push_local_frame(env, 16)?;
                for _ in 0..10 {
                    typed::new_local_ref(env, obj)?;
                }
                typed::pop_local_frame(env, jinn::jvm::JRef::NULL)?;
            }
            Ok(JValue::Void)
        }),
    );
    let arg = object_arg(&mut vm);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn::core::install(&mut session);
    let outcome = session.run_native(thread, entry, &[arg]);
    assert!(matches!(outcome, RunOutcome::Completed(_)), "{outcome:?}");
    assert!(session.shutdown().is_empty());
}

#[test]
fn pop_local_frame_migrates_its_result_reference() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "frames/Migrate",
        "build",
        "()Ljava/lang/String;",
        true,
        Rc::new(|env, _| {
            typed::push_local_frame(env, 16)?;
            let s = typed::new_string_utf(env, "survivor")?;
            // PopLocalFrame(result) re-registers `s` in the outer frame.
            let migrated = typed::pop_local_frame(env, s)?;
            let n = typed::get_string_utf_length(env, migrated)?;
            assert_eq!(n, 8);
            Ok(JValue::Ref(migrated))
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn::core::install(&mut session);
    match session.run_native(thread, entry, &[]) {
        RunOutcome::Completed(JValue::Ref(r)) => {
            let oop = session.vm().jvm().resolve(thread, r).unwrap().unwrap();
            assert_eq!(
                session.vm().jvm().string_value(oop).as_deref(),
                Some("survivor")
            );
        }
        other => panic!("migration failed: {other:?}"),
    }
}

#[test]
fn array_copy_back_semantics() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "arrays/CopyBack",
        "bump",
        "()I",
        true,
        Rc::new(|env, _| {
            let arr = typed::new_int_array(env, 3)?;
            typed::set_int_array_region(env, arr, 0, PrimArray::Int(vec![1, 2, 3]))?;
            let pin = typed::get_int_array_elements(env, arr)?;
            // Mutate the C copy, then commit.
            assert!(typed::write_prim_buffer(env, pin, 1, JValue::Int(99)));
            typed::release_int_array_elements(env, arr, pin, 0)?;
            let region = typed::get_int_array_region(env, arr, 0, 3)?;
            Ok(region
                .get(1)
                .as_int()
                .map(JValue::Int)
                .unwrap_or(JValue::Int(-1)))
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    let outcome = session.run_native(thread, entry, &[]);
    assert!(
        matches!(outcome, RunOutcome::Completed(JValue::Int(99))),
        "{outcome:?}"
    );
}

#[test]
fn abort_mode_discards_the_c_copy() {
    let mut vm = Vm::permissive();
    let (_c, entry) = vm.define_native_class(
        "arrays/Abort",
        "scratch",
        "()I",
        true,
        Rc::new(|env, _| {
            let arr = typed::new_int_array(env, 1)?;
            typed::set_int_array_region(env, arr, 0, PrimArray::Int(vec![5]))?;
            let pin = typed::get_int_array_elements(env, arr)?;
            assert!(typed::write_prim_buffer(env, pin, 0, JValue::Int(77)));
            typed::release_int_array_elements(env, arr, pin, jinn::jni::JNI_ABORT)?;
            let region = typed::get_int_array_region(env, arr, 0, 1)?;
            Ok(region
                .get(0)
                .as_int()
                .map(JValue::Int)
                .unwrap_or(JValue::Int(-1)))
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    let outcome = session.run_native(thread, entry, &[]);
    assert!(
        matches!(outcome, RunOutcome::Completed(JValue::Int(5))),
        "{outcome:?}"
    );
}

#[test]
fn weak_globals_observe_collection() {
    let mut vm = Vm::permissive();
    let weak_stash = Rc::new(RefCell::new(None));
    let (_c, make) = {
        let weak_stash = Rc::clone(&weak_stash);
        vm.define_native_class(
            "weak/Make",
            "make",
            "()V",
            true,
            Rc::new(move |env, _| {
                let s = typed::new_string_utf(env, "ephemeral")?;
                let w = typed::new_weak_global_ref(env, s)?;
                *weak_stash.borrow_mut() = Some(w);
                Ok(JValue::Void)
            }),
        )
    };
    let (_c2, probe) = {
        let weak_stash = Rc::clone(&weak_stash);
        vm.define_native_class(
            "weak/Probe",
            "probe",
            "()Z",
            true,
            Rc::new(move |env, _| {
                let w = weak_stash.borrow().expect("make ran");
                // IsSameObject(weak, NULL) is the canonical liveness test.
                let cleared = typed::is_same_object(env, w, jinn::jvm::JRef::NULL)?;
                typed::delete_weak_global_ref(env, w)?;
                Ok(JValue::Bool(cleared))
            }),
        )
    };
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn::core::install(&mut session);
    assert!(matches!(
        session.run_native(thread, make, &[]),
        RunOutcome::Completed(_)
    ));
    // The string was only reachable through the weak ref; collect it.
    session.vm_mut().jvm_mut().gc();
    match session.run_native(thread, probe, &[]) {
        RunOutcome::Completed(JValue::Bool(cleared)) => {
            assert!(cleared, "weak global must observe the collection");
        }
        other => panic!("probe failed: {other:?}"),
    }
    assert!(
        session.shutdown().is_empty(),
        "weak ref was deleted: no leak"
    );
}

#[test]
fn jinn_is_vendor_independent_end_to_end() {
    // The same buggy program gets the same Jinn diagnosis on both vendor
    // models, even though the raw outcomes differ.
    for vendor in Vendor::ALL {
        let mut vm = vendor.vm();
        let (_c, entry) = vm.define_native_class(
            "vendor/Bug",
            "oops",
            "(Ljava/lang/Object;)V",
            true,
            Rc::new(|env, args| {
                let obj = args[0].as_ref().expect("arg");
                let r = typed::new_local_ref(env, obj)?;
                typed::delete_local_ref(env, r)?;
                typed::get_object_class(env, r)?; // dangling use
                Ok(JValue::Void)
            }),
        );
        let arg = object_arg(&mut vm);
        let thread = vm.jvm().main_thread();
        let mut session = Session::new(vm);
        jinn::core::install(&mut session);
        match session.run_native(thread, entry, &[arg]) {
            RunOutcome::CheckerException(v) => {
                assert_eq!(v.machine, "local-reference");
                assert_eq!(v.error_state, "Error:Dangling");
            }
            other => panic!("Jinn on {vendor} missed the bug: {other:?}"),
        }
    }
}

#[test]
fn exception_propagates_from_java_through_c_to_java() {
    let mut vm = Vm::permissive();
    let (_c, thrower) = vm.define_managed_class(
        "exc/Thrower",
        "boom",
        "()V",
        true,
        Rc::new(|env, _| Err(env.java_throw("java/lang/IllegalArgumentException", "bad input"))),
    );
    let _ = thrower;
    let (_c2, entry) = vm.define_native_class(
        "exc/Caller",
        "call",
        "()V",
        true,
        Rc::new(|env, _| {
            let clazz = typed::find_class(env, "exc/Thrower")?;
            let mid = typed::get_static_method_id(env, clazz, "boom", "()V")?;
            // The C code propagates by returning with the exception pending
            // — the correct pattern.
            match typed::call_static_void_method_a(env, clazz, mid, &[]) {
                Err(JniError::Exception) => Ok(JValue::Void),
                other => panic!("expected exception, got {other:?}"),
            }
        }),
    );
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    jinn::core::install(&mut session);
    match session.run_native(thread, entry, &[]) {
        RunOutcome::UncaughtException(desc) => {
            assert!(desc.contains("IllegalArgumentException"), "{desc}");
            assert!(desc.contains("bad input"));
        }
        other => panic!("expected uncaught exception, got {other:?}"),
    }
}
