//! Property-based tests of the substrates' invariants: the descriptor
//! grammar, the moving collector, local-reference frames, and the Python
//! refcounting kernel.

use jinn::jvm::{FieldType, Jvm, MethodSig, PrimType, Slot};
use jinn::py::{Arena, PyValue};
use proptest::prelude::*;

// ---- descriptor grammar ----------------------------------------------------

fn field_type_strategy() -> impl Strategy<Value = FieldType> {
    let leaf = prop_oneof![
        prop_oneof![
            Just(PrimType::Boolean),
            Just(PrimType::Byte),
            Just(PrimType::Char),
            Just(PrimType::Short),
            Just(PrimType::Int),
            Just(PrimType::Long),
            Just(PrimType::Float),
            Just(PrimType::Double),
        ]
        .prop_map(FieldType::Prim),
        "[a-zA-Z][a-zA-Z0-9_$]{0,8}(/[a-zA-Z][a-zA-Z0-9_$]{0,8}){0,3}".prop_map(FieldType::Object),
    ];
    leaf.prop_recursive(3, 8, 2, |inner| inner.prop_map(FieldType::array))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print ∘ parse = id over the full descriptor grammar.
    #[test]
    fn descriptor_roundtrip(ty in field_type_strategy()) {
        let text = ty.descriptor();
        let parsed = FieldType::parse(&text).expect("printer emits valid descriptors");
        prop_assert_eq!(parsed, ty);
    }

    /// Method descriptors roundtrip too.
    #[test]
    fn method_descriptor_roundtrip(
        params in proptest::collection::vec(field_type_strategy(), 0..6),
        ret in proptest::option::of(field_type_strategy()),
    ) {
        let sig = MethodSig::new(
            params,
            ret.map_or(jinn::jvm::ReturnType::Void, jinn::jvm::ReturnType::Field),
        );
        let text = sig.descriptor();
        let parsed = MethodSig::parse(&text).expect("printer emits valid descriptors");
        prop_assert_eq!(parsed, sig);
    }

    /// Parsing arbitrary bytes never panics (it may reject).
    #[test]
    fn descriptor_parser_is_total(input in ".{0,40}") {
        let _ = FieldType::parse(&input);
        let _ = MethodSig::parse(&input);
    }
}

// ---- moving collector -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rooted object graphs survive collection with identities and field
    /// structure intact; unrooted objects are reclaimed.
    #[test]
    fn gc_preserves_reachable_graphs(
        // Each node optionally points at an earlier node.
        edges in proptest::collection::vec(proptest::option::of(0usize..64), 1..64),
        root_choice in 0usize..64,
    ) {
        let mut jvm = Jvm::new();
        let thread = jvm.main_thread();
        let class = jvm
            .registry_mut()
            .define("prop/Node")
            .field("next", "Lprop/Node;", jinn::jvm::MemberFlags::public())
            .build()
            .expect("fresh VM");
        let fid = jvm.registry().resolve_field(class, "next", "Lprop/Node;", false).unwrap();

        // Edges point strictly backwards (to already-allocated nodes), so
        // every chain terminates.
        let installed: Vec<Option<usize>> = edges
            .iter()
            .enumerate()
            .map(|(i, e)| e.filter(|t| *t < i))
            .collect();
        let mut oops = Vec::new();
        let mut ids = Vec::new();
        for edge in &installed {
            let oop = jvm.alloc_object(class);
            if let Some(e) = edge {
                jvm.set_instance_field(oop, fid, Slot::Ref(Some(oops[*e])));
            }
            ids.push(jvm.heap().id_of(oop));
            oops.push(oop);
        }
        // Root exactly one node via a handle.
        let root_idx = root_choice % oops.len();
        let handle = jvm.new_local(thread, oops[root_idx]);

        // Compute expected survivors (transitive closure over `installed`).
        let mut live = vec![false; oops.len()];
        let mut cursor = Some(root_idx);
        while let Some(i) = cursor {
            if live[i] {
                break;
            }
            live[i] = true;
            cursor = installed[i];
        }

        let before_count = live.iter().filter(|l| **l).count();
        let stats = jvm.gc();
        prop_assert_eq!(stats.live, before_count, "survivor count");

        // The rooted chain is intact: walk it via the handle.
        let mut oop = jvm.resolve(thread, handle).unwrap().unwrap();
        let mut i = root_idx;
        loop {
            prop_assert_eq!(jvm.heap().id_of(oop), ids[i], "identity preserved");
            match jvm.get_instance_field(oop, fid) {
                Slot::Ref(Some(next)) => {
                    oop = next;
                    i = installed[i].expect("edge existed");
                }
                _ => break,
            }
        }
    }

    /// Local frames: references acquired in a frame are exactly the ones
    /// invalidated by its pop.
    #[test]
    fn frame_pop_invalidates_exactly_its_refs(
        outer_n in 0usize..10,
        inner_n in 0usize..10,
    ) {
        let mut jvm = Jvm::new();
        let thread = jvm.main_thread();
        let class = jvm.find_class("java/lang/Object").unwrap();
        let outer: Vec<_> = (0..outer_n)
            .map(|_| {
                let oop = jvm.alloc_object(class);
                jvm.new_local(thread, oop)
            })
            .collect();
        jvm.thread_mut(thread).push_frame(16);
        let inner: Vec<_> = (0..inner_n)
            .map(|_| {
                let oop = jvm.alloc_object(class);
                jvm.new_local(thread, oop)
            })
            .collect();
        jvm.thread_mut(thread).pop_frame();
        for r in &outer {
            prop_assert!(jvm.resolve(thread, *r).is_ok(), "outer ref survived");
        }
        for r in &inner {
            prop_assert!(jvm.resolve(thread, *r).is_err(), "inner ref dangles");
        }
    }
}

// ---- Python refcounting ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Refcount conservation: after building a list of n strings and
    /// dropping the only owner, everything is reclaimed.
    #[test]
    fn refcount_conservation(names in proptest::collection::vec("[a-z]{1,8}", 0..12)) {
        let mut arena = Arena::new();
        let items: Vec<_> =
            names.iter().map(|n| arena.alloc(PyValue::Str(n.clone()))).collect();
        let list = arena.alloc(PyValue::List(items.clone()));
        prop_assert_eq!(arena.live(), names.len() + 1);
        let freed = arena.decref(list).expect("sole owner");
        prop_assert_eq!(freed.len(), names.len() + 1, "cascade frees all");
        prop_assert_eq!(arena.live(), 0);
    }

    /// Extra INCREFs keep exactly the incref'd strings alive.
    #[test]
    fn increfs_pin_exactly_their_targets(
        names in proptest::collection::vec("[a-z]{1,6}", 1..10),
        pins in proptest::collection::vec(any::<bool>(), 1..10),
    ) {
        let mut arena = Arena::new();
        let items: Vec<_> =
            names.iter().map(|n| arena.alloc(PyValue::Str(n.clone()))).collect();
        for (p, pin) in items.iter().zip(&pins) {
            if *pin {
                arena.incref(*p);
            }
        }
        let list = arena.alloc(PyValue::List(items.clone()));
        arena.decref(list).expect("sole owner of the list");
        for (i, p) in items.iter().enumerate() {
            let pinned = pins.get(i).copied().unwrap_or(false);
            prop_assert_eq!(arena.is_alive(*p), pinned, "item {}", i);
        }
    }
}
