//! Property-based tests of Jinn's headline guarantees:
//!
//! * **no false positives** — arbitrary *correct* JNI programs run under
//!   Jinn without a single report;
//! * **no false negatives for exercised, boundary-visible bugs** — a
//!   correct program with one seeded bug gets exactly that constraint
//!   class reported.

use std::rc::Rc;

use jinn::jni::{typed, JniError, RunOutcome, Session, Vm};
use jinn::jvm::{JRef, JValue};
use proptest::prelude::*;

/// The op-language of generated native methods. Every op is correct by
/// construction against the model the interpreter below maintains.
#[derive(Debug, Clone)]
enum Op {
    NewString(u8),
    NewIntArray(u8),
    DupArg,
    DupLast,
    DeleteLast,
    Globalize,
    DropGlobal,
    PinAndRelease,
    MonitorPair,
    GetVersion,
    ExceptionCheck,
    FramedAllocs(u8),
    UpcallPing,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..40).prop_map(Op::NewString),
        (0u8..8).prop_map(Op::NewIntArray),
        Just(Op::DupArg),
        Just(Op::DupLast),
        Just(Op::DeleteLast),
        Just(Op::Globalize),
        Just(Op::DropGlobal),
        Just(Op::PinAndRelease),
        Just(Op::MonitorPair),
        Just(Op::GetVersion),
        Just(Op::ExceptionCheck),
        (1u8..10).prop_map(Op::FramedAllocs),
        Just(Op::UpcallPing),
    ]
}

/// Interprets the op list as a correct native method body.
fn interpret(
    env: &mut jinn::jni::JniEnv<'_>,
    args: &[JValue],
    ops: &[Op],
) -> Result<JValue, JniError> {
    let anchor = args[0].as_ref().expect("anchor argument");
    // A correct program requests capacity before creating many refs.
    typed::ensure_local_capacity(env, 4096)?;
    let mut locals: Vec<JRef> = vec![anchor];
    let mut globals: Vec<JRef> = Vec::new();
    for op in ops {
        match op {
            Op::NewString(n) => {
                let s = typed::new_string_utf(env, &format!("str-{n}"))?;
                locals.push(s);
            }
            Op::NewIntArray(n) => {
                let a = typed::new_int_array(env, i64::from(*n))?;
                locals.push(a);
            }
            Op::DupArg => {
                locals.push(typed::new_local_ref(env, anchor)?);
            }
            Op::DupLast => {
                let last = *locals.last().expect("anchor always present");
                locals.push(typed::new_local_ref(env, last)?);
            }
            Op::DeleteLast => {
                // Never delete the anchor (it belongs to the caller-facing
                // frame contract, and other ops may still use it).
                if locals.len() > 1 {
                    let r = locals.pop().expect("len checked");
                    typed::delete_local_ref(env, r)?;
                }
            }
            Op::Globalize => {
                let last = *locals.last().expect("non-empty");
                globals.push(typed::new_global_ref(env, last)?);
            }
            Op::DropGlobal => {
                if let Some(g) = globals.pop() {
                    typed::delete_global_ref(env, g)?;
                }
            }
            Op::PinAndRelease => {
                let arr = typed::new_int_array(env, 4)?;
                let pin = typed::get_int_array_elements(env, arr)?;
                typed::release_int_array_elements(env, arr, pin, 0)?;
                typed::delete_local_ref(env, arr)?;
            }
            Op::MonitorPair => {
                typed::monitor_enter(env, anchor)?;
                typed::monitor_exit(env, anchor)?;
            }
            Op::GetVersion => {
                typed::get_version(env)?;
            }
            Op::ExceptionCheck => {
                assert!(!typed::exception_check(env)?);
            }
            Op::FramedAllocs(n) => {
                typed::push_local_frame(env, i64::from(*n) + 1)?;
                for _ in 0..*n {
                    typed::new_local_ref(env, anchor)?;
                }
                typed::pop_local_frame(env, JRef::NULL)?;
            }
            Op::UpcallPing => {
                let clazz = typed::find_class(env, "prop/Pong")?;
                let mid = typed::get_static_method_id(env, clazz, "ping", "()I")?;
                let v = typed::call_static_int_method_a(env, clazz, mid, &[])?;
                assert_eq!(v, 42);
                typed::delete_local_ref(env, clazz)?;
            }
        }
    }
    // A correct program releases what it still owns.
    for g in globals {
        typed::delete_global_ref(env, g)?;
    }
    Ok(JValue::Void)
}

/// The bugs we can seed after a correct prefix.
#[derive(Debug, Clone, Copy)]
enum Seeded {
    UseAfterDelete,
    DoubleDelete,
    NullArgument,
    PinDoubleFree,
    StaleGlobalUse,
    ForgedMethodId,
}

impl Seeded {
    fn expected_machine(self) -> &'static str {
        match self {
            Seeded::UseAfterDelete | Seeded::DoubleDelete => "local-reference",
            Seeded::NullArgument => "nullness",
            Seeded::PinDoubleFree => "pinned-buffer",
            Seeded::StaleGlobalUse => "global-reference",
            Seeded::ForgedMethodId => "entity-typing",
        }
    }

    fn commit(self, env: &mut jinn::jni::JniEnv<'_>, anchor: JRef) -> Result<(), JniError> {
        match self {
            Seeded::UseAfterDelete => {
                let r = typed::new_local_ref(env, anchor)?;
                typed::delete_local_ref(env, r)?;
                typed::get_object_class(env, r)?;
            }
            Seeded::DoubleDelete => {
                let r = typed::new_local_ref(env, anchor)?;
                typed::delete_local_ref(env, r)?;
                typed::delete_local_ref(env, r)?;
            }
            Seeded::NullArgument => {
                typed::get_object_class(env, JRef::NULL)?;
            }
            Seeded::PinDoubleFree => {
                let arr = typed::new_int_array(env, 2)?;
                let pin = typed::get_int_array_elements(env, arr)?;
                typed::release_int_array_elements(env, arr, pin, 0)?;
                typed::release_int_array_elements(env, arr, pin, 0)?;
            }
            Seeded::StaleGlobalUse => {
                let g = typed::new_global_ref(env, anchor)?;
                typed::delete_global_ref(env, g)?;
                typed::get_object_class(env, g)?;
            }
            Seeded::ForgedMethodId => {
                typed::call_void_method_a(
                    env,
                    anchor,
                    jinn::jvm::MethodId::forged(0xFFFF_0001),
                    &[],
                )?;
            }
        }
        Ok(())
    }
}

fn seeded_strategy() -> impl Strategy<Value = Seeded> {
    prop_oneof![
        Just(Seeded::UseAfterDelete),
        Just(Seeded::DoubleDelete),
        Just(Seeded::NullArgument),
        Just(Seeded::PinDoubleFree),
        Just(Seeded::StaleGlobalUse),
        Just(Seeded::ForgedMethodId),
    ]
}

fn run_ops(ops: Vec<Op>, seeded: Option<Seeded>) -> (RunOutcome, Vec<minijni::Report>) {
    run_ops_on(Vm::permissive(), ops, seeded)
}

fn run_ops_on(vm: Vm, ops: Vec<Op>, seeded: Option<Seeded>) -> (RunOutcome, Vec<minijni::Report>) {
    let mut vm = vm;
    let (_c, _pong) = vm.define_managed_class(
        "prop/Pong",
        "ping",
        "()I",
        true,
        Rc::new(|_env, _| Ok(JValue::Int(42))),
    );
    let ops = Rc::new(ops);
    let (_c2, entry) = {
        let ops = Rc::clone(&ops);
        vm.define_native_class(
            "prop/Program",
            "run",
            "(Ljava/lang/Object;)V",
            true,
            Rc::new(move |env, args| {
                interpret(env, args, &ops)?;
                if let Some(bug) = seeded {
                    let anchor = args[0].as_ref().expect("anchor");
                    bug.commit(env, anchor)?;
                }
                Ok(JValue::Void)
            }),
        )
    };
    let class = vm
        .jvm()
        .find_class("java/lang/Object")
        .expect("bootstrapped");
    let oop = vm.jvm_mut().alloc_object(class);
    let thread = vm.jvm().main_thread();
    let anchor = vm.jvm_mut().new_local(thread, oop);
    let mut session = Session::new(vm);
    jinn::core::install(&mut session);
    let outcome = session.run_native(thread, entry, &[JValue::Ref(anchor)]);
    let reports = session.shutdown();
    (outcome, reports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Jinn never reports on a correct program: "Jinn never generates
    /// false positives" (Section 2.2).
    #[test]
    fn no_false_positives(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let (outcome, reports) = run_ops(ops, None);
        prop_assert!(
            matches!(outcome, RunOutcome::Completed(_)),
            "correct program rejected: {outcome:?}"
        );
        prop_assert!(reports.is_empty(), "phantom leak reports: {reports:?}");
    }

    /// A correct program with one seeded bug is reported with exactly the
    /// seeded constraint class.
    #[test]
    fn seeded_bugs_are_detected(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        bug in seeded_strategy(),
    ) {
        let (outcome, _reports) = run_ops(ops, Some(bug));
        match outcome {
            RunOutcome::CheckerException(v) => {
                prop_assert_eq!(
                    v.machine, bug.expected_machine(),
                    "bug {:?} attributed to the wrong machine: {}", bug, v
                );
            }
            other => prop_assert!(false, "bug {bug:?} missed: {other:?}"),
        }
    }

    /// Vendor independence (Section 1): Jinn's verdict on the same program
    /// — clean or the same machine's violation — is identical whether it
    /// runs over the HotSpot model or the J9 model.
    #[test]
    fn jinn_verdicts_are_vendor_independent(
        ops in proptest::collection::vec(op_strategy(), 0..30),
        bug in proptest::option::of(seeded_strategy()),
    ) {
        let verdict = |vm| match run_ops_on(vm, ops.clone(), bug).0 {
            RunOutcome::Completed(_) => None,
            RunOutcome::CheckerException(v) => Some(v.machine),
            other => panic!("Jinn lets nothing else through: {other:?}"),
        };
        let hotspot = verdict(jinn::vendors::hotspot_vm());
        let j9 = verdict(jinn::vendors::j9_vm());
        prop_assert_eq!(hotspot, j9);
    }
}
