//! Fleet-scale daemon integration test: ≥64 concurrent sessions stream
//! golden-corpus traces through the frame codec into `jinn-serve`, and
//! every session's verdict multiset must match a single-process
//! `replay check` of the same trace — with corrupt-frame sessions
//! quarantined and the rest of the fleet unharmed.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use jinn::replay::format::fnv1a;
use jinn::replay::{
    case_studies, decode_stream, encode_frame, encode_ingest, microbench_programs, replay_trace,
    Frame, ReplayConfig, Trace,
};
use jinn::serve::{Daemon, Query, QueryItem, QueryKind, ServeConfig, SessionState};

fn corpus_bytes(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/corpus/{name}.jtrace", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn corpus_names() -> Vec<String> {
    microbench_programs()
        .iter()
        .chain(case_studies().iter())
        .map(|p| p.name.clone())
        .collect()
}

/// The verdict multiset of one local replay: (machine, error_state,
/// function) → count.
fn local_multiset(bytes: &[u8], config: &ReplayConfig) -> BTreeMap<(String, String, String), u64> {
    let trace = Trace::parse(bytes).expect("corpus trace parses");
    let outcome = replay_trace(&trace, config).expect("local replay succeeds");
    let mut set = BTreeMap::new();
    for v in &outcome.violations {
        *set.entry((
            v.machine.to_string(),
            v.error_state.to_string(),
            v.function.clone(),
        ))
        .or_insert(0u64) += 1;
    }
    set
}

/// The daemon's verdict multiset for one session, via the query API
/// (paginated to exercise the cursor).
fn served_multiset(
    handle: &jinn::serve::DaemonHandle,
    session: u64,
) -> BTreeMap<(String, String, String), u64> {
    let mut set = BTreeMap::new();
    let mut cursor = None;
    loop {
        let page = handle.query(&Query {
            kind: QueryKind::Verdicts,
            session: Some(session),
            cursor,
            limit: 3, // tiny page size: force pagination
            ..Query::default()
        });
        for item in &page.items {
            let QueryItem::Verdict(v) = item else {
                panic!("verdict query returned a non-verdict row")
            };
            *set.entry((v.machine.clone(), v.error_state.clone(), v.function.clone()))
                .or_insert(0u64) += 1;
        }
        match page.next_cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    set
}

#[test]
fn fleet_of_64_sessions_matches_single_process_replay() {
    const SESSIONS: u64 = 64;
    const CORRUPT: &[u64] = &[11, 37]; // two poisoned sessions in the fleet

    let names = corpus_names();
    let traces: Arc<Vec<(String, Vec<u8>)>> =
        Arc::new(names.iter().map(|n| (n.clone(), corpus_bytes(n))).collect());

    let daemon = Daemon::start(ServeConfig {
        workers: 4,
        retention_bytes: 64 * 1024 * 1024, // plenty: no purge in this test
        max_events_per_session: 128,
        ..ServeConfig::default()
    });
    let handle = daemon.handle();

    // 64 client threads, each streaming one corpus trace (round-robin)
    // through the real frame codec into the in-process handle.
    let mut clients = Vec::new();
    for session in 0..SESSIONS {
        let handle = handle.clone();
        let traces = Arc::clone(&traces);
        clients.push(thread::spawn(move || {
            let (_, bytes) = &traces[session as usize % traces.len()];
            let corrupt = CORRUPT.contains(&session);
            let tenant = format!("tenant-{}", session % 4);
            let stream = encode_ingest(session, &tenant, "jinn", bytes, 1024);
            let mut frames = decode_stream(&stream).expect("self-encoded stream decodes");
            if corrupt {
                // Flip a byte mid-trace: the Seal declaration no longer
                // matches the reassembled bytes, so seal must quarantine.
                let mid = frames.len() / 2;
                if let Frame::Append { session, chunk } = &frames[mid] {
                    let mut bad = chunk.clone();
                    let at = bad.len() / 2;
                    bad[at] ^= 0x40;
                    frames[mid] = Frame::Append {
                        session: *session,
                        chunk: bad,
                    };
                } else {
                    panic!("expected an Append frame mid-stream");
                }
            }
            let mut seal_err = None;
            for frame in &frames {
                if let Err(e) = handle.apply_frame(frame) {
                    seal_err = Some(e.to_string());
                    break;
                }
            }
            let stats = handle.wait_session(session).expect("session exists");
            (session, corrupt, seal_err, stats)
        }));
    }

    for client in clients {
        let (session, corrupt, seal_err, stats) = client.join().expect("client thread");
        if corrupt {
            assert_eq!(
                stats.state,
                SessionState::Quarantined,
                "session {session}: corrupt ingest must quarantine"
            );
            let err = seal_err.unwrap_or_else(|| panic!("session {session}: seal should fail"));
            assert!(
                err.contains("quarantined"),
                "session {session}: unexpected error `{err}`"
            );
        } else {
            assert_eq!(
                stats.state,
                SessionState::Judged,
                "session {session}: {:?}",
                stats.reason
            );
            assert!(
                seal_err.is_none(),
                "session {session}: clean ingest errored"
            );
        }
    }

    // Every healthy session's verdict multiset equals the single-process
    // replay of its trace under the same checker stack.
    let jinn = ReplayConfig::parse("jinn").unwrap();
    let mut local_cache: BTreeMap<usize, BTreeMap<(String, String, String), u64>> = BTreeMap::new();
    for session in 0..SESSIONS {
        if CORRUPT.contains(&session) {
            assert!(
                served_multiset(&handle, session).is_empty(),
                "session {session}: quarantined session must hold no verdicts"
            );
            continue;
        }
        let idx = session as usize % traces.len();
        let local = local_cache
            .entry(idx)
            .or_insert_with(|| local_multiset(&traces[idx].1, &jinn))
            .clone();
        let served = served_multiset(&handle, session);
        assert_eq!(
            served, local,
            "session {session} ({}): daemon verdicts diverge from replay check",
            traces[idx].0
        );
    }

    // Fleet accounting: the poison stayed contained.
    let fleet = handle.fleet();
    assert_eq!(fleet.opened, SESSIONS);
    assert_eq!(fleet.quarantined, CORRUPT.len() as u64);
    assert_eq!(fleet.judged, SESSIONS - CORRUPT.len() as u64);
    assert_eq!(fleet.live, 0);

    // Satellite 2: recorder policy counters surface in per-session stats.
    for session in 0..SESSIONS {
        if CORRUPT.contains(&session) {
            continue;
        }
        let stats = handle.session_stats(session).expect("stats");
        let json = stats.to_json();
        assert!(
            json.contains("\"obs\"") && json.contains("\"policy_epoch\""),
            "session {session}: judged session must expose obs counters, got {json}"
        );
    }

    daemon.shutdown();
}

/// Tentpole equivalence pin: a daemon serving manifested tenants from
/// specialized (discharged) pools must produce verdict multisets
/// identical to a plain full-pool daemon, across the whole corpus —
/// both for an honest manifest (every session specialized) and for a
/// deliberately lying one (every session falls back, is flagged, and
/// loses no verdicts).
#[test]
fn specialized_pool_daemon_matches_full_pool_daemon_across_corpus() {
    let names = corpus_names();
    assert!(names.len() >= 20, "corpus spans at least 20 traces");
    let traces: Vec<(String, Vec<u8>)> =
        names.iter().map(|n| (n.clone(), corpus_bytes(n))).collect();

    let full = Daemon::start(ServeConfig::default());
    let spec = Daemon::start(ServeConfig::default());
    let full_handle = full.handle();
    let spec_handle = spec.handle();

    // The honest manifest: the union of every corpus trace's own
    // call-site set, so every session is admitted to the specialized
    // pool. The lying manifest claims a workload that calls almost
    // nothing — every real trace must fall back.
    let mut union = std::collections::BTreeSet::new();
    for (_, bytes) in &traces {
        union.extend(
            Trace::parse(bytes)
                .expect("corpus trace")
                .called_functions(),
        );
    }
    let honest: Vec<String> = union.into_iter().collect();
    let summary = spec_handle
        .declare_manifest("honest", &honest)
        .expect("declare honest manifest");
    assert!(summary.discharged > 0, "discharge pass elides something");
    spec_handle
        .declare_manifest("liar", &["IsSameObject".to_string()])
        .expect("declare lying manifest");

    let liar_base = 1000u64;
    for (i, (_, bytes)) in traces.iter().enumerate() {
        let i = i as u64;
        for frame in decode_stream(&encode_ingest(i, "plain", "jinn", bytes, 4096)).unwrap() {
            full_handle.apply_frame(&frame).expect("full ingest");
        }
        for frame in decode_stream(&encode_ingest(i, "honest", "jinn", bytes, 4096)).unwrap() {
            spec_handle.apply_frame(&frame).expect("honest ingest");
        }
        let stream = encode_ingest(liar_base + i, "liar", "jinn", bytes, 4096);
        for frame in decode_stream(&stream).unwrap() {
            spec_handle.apply_frame(&frame).expect("liar ingest");
        }
    }
    full_handle.wait_idle();
    spec_handle.wait_idle();

    for (i, (name, _)) in traces.iter().enumerate() {
        let i = i as u64;
        let baseline = served_multiset(&full_handle, i);
        let honest_set = served_multiset(&spec_handle, i);
        let liar_set = served_multiset(&spec_handle, liar_base + i);
        assert_eq!(
            honest_set, baseline,
            "{name}: specialized-pool verdicts diverge from the full pool"
        );
        assert_eq!(
            liar_set, baseline,
            "{name}: fallback re-judging lost verdicts"
        );

        let hs = spec_handle.session_stats(i).expect("honest stats");
        assert_eq!(hs.state, SessionState::Judged, "{name}: {:?}", hs.reason);
        assert!(hs.specialized, "{name}: honest session not specialized");
        assert!(!hs.discharge_fallback);
        let ls = spec_handle
            .session_stats(liar_base + i)
            .expect("liar stats");
        assert!(
            !ls.specialized && ls.discharge_fallback,
            "{name}: lying manifest must be flagged, not served specialized"
        );
    }

    let fleet = spec_handle.fleet();
    assert_eq!(fleet.specialized_sessions, traces.len() as u64);
    assert_eq!(fleet.fallback_sessions, traces.len() as u64);
    assert_eq!(full_handle.fleet().specialized_sessions, 0);

    spec.shutdown();
    full.shutdown();
}

/// With `learn_after_sessions` set, a tenant that never declares a
/// manifest earns one from the union of its first K sessions — and a
/// later out-of-manifest trace falls back once, widens the learned
/// manifest, and is served specialized from then on.
#[test]
fn undeclared_tenants_learn_a_manifest_and_widen_on_fallback() {
    let daemon = Daemon::start(ServeConfig {
        learn_after_sessions: 2,
        ..ServeConfig::default()
    });
    let handle = daemon.handle();
    let narrow = corpus_bytes("LocalRefDangling");
    let wider = corpus_bytes("MonitorLeak");
    assert!(
        !Trace::parse(&wider)
            .unwrap()
            .called_functions()
            .is_subset(&Trace::parse(&narrow).unwrap().called_functions()),
        "test needs a trace outside the learned set"
    );

    let ingest = |id: u64, bytes: &[u8]| {
        for frame in decode_stream(&encode_ingest(id, "learner", "jinn", bytes, 4096)).unwrap() {
            handle.apply_frame(&frame).expect("ingest");
        }
        handle.wait_session(id).expect("session exists")
    };

    // Sessions 1 and 2 fill the learning window: neither is specialized.
    assert!(!ingest(1, &narrow).specialized);
    assert!(!ingest(2, &narrow).specialized);
    // Session 3 matches the learned union and is specialized.
    let s3 = ingest(3, &narrow);
    assert!(s3.specialized && !s3.discharge_fallback);
    // Session 4 calls outside it: flagged fallback, verdicts intact...
    let s4 = ingest(4, &wider);
    assert!(!s4.specialized && s4.discharge_fallback);
    let local = local_multiset(&wider, &ReplayConfig::parse("jinn").unwrap());
    assert_eq!(served_multiset(&handle, 4), local, "fallback lost verdicts");
    // ...and the learned manifest widened, so session 5 is specialized.
    let s5 = ingest(5, &wider);
    assert!(s5.specialized && !s5.discharge_fallback);
    assert_eq!(served_multiset(&handle, 5), local);

    daemon.shutdown();
}

/// Streaming-incremental-judging pin: a daemon that overlaps ingest with
/// checking (every session on the streaming path) must be
/// observationally identical to a buffered daemon fed the *same frame
/// sequences* — same verdict multisets across the full corpus, same
/// quarantine reasons for seal-mismatch and unreadable-trace input, same
/// abort handling, and same discharge-fallback flagging for a lying
/// manifest — while actually streaming (`stats.streamed`,
/// `fleet.streamed_sessions`) and holding far fewer bytes resident
/// (`buffered_bytes_high_water`).
#[test]
fn streaming_daemon_matches_buffered_daemon_across_corpus() {
    const CHUNK: usize = 512; // small chunks: many incremental-decode resume points
    const CORRUPT: u64 = 1000; // flipped byte, stale seal declaration
    const UNREADABLE: u64 = 2000; // flipped byte, *honest* seal declaration
    const ABORTED: u64 = 3000;
    const LIAR: u64 = 4000;

    let names = corpus_names();
    let traces: Vec<(String, Vec<u8>)> =
        names.iter().map(|n| (n.clone(), corpus_bytes(n))).collect();

    let streaming = Daemon::start(ServeConfig {
        streaming_sessions: 4096, // every session takes the streaming path
        ..ServeConfig::default()
    });
    let buffered = Daemon::start(ServeConfig {
        streaming_sessions: 0,
        ..ServeConfig::default()
    });
    let sh = streaming.handle();
    let bh = buffered.handle();
    for h in [&sh, &bh] {
        h.declare_manifest("liar", &["IsSameObject".to_string()])
            .expect("declare lying manifest");
    }

    let drive = |h: &jinn::serve::DaemonHandle, id: u64, frames: &[Frame]| {
        let mut err = None;
        for frame in frames {
            if let Err(e) = h.apply_frame(frame) {
                err = Some(e.to_string());
                break;
            }
        }
        (err, h.wait_session(id).expect("session exists"))
    };
    let clean = |id: u64, tenant: &str, bytes: &[u8]| {
        decode_stream(&encode_ingest(id, tenant, "jinn", bytes, CHUNK)).unwrap()
    };
    let flip_mid_append = |frames: &mut [Frame]| {
        let mid = frames.len() / 2;
        let Frame::Append { chunk, .. } = &mut frames[mid] else {
            panic!("expected an Append frame mid-stream");
        };
        let at = chunk.len() / 2;
        chunk[at] ^= 0x40;
    };

    for (i, (name, bytes)) in traces.iter().enumerate() {
        let i = i as u64;

        let mut corrupt = clean(CORRUPT + i, "t", bytes);
        flip_mid_append(&mut corrupt);

        // Re-declare the seal over the corrupted bytes: the envelope is
        // now honest, so the damage only surfaces when the *trace* is
        // decoded — mid-stream on the streaming path, at parse time on
        // the buffered path. Both must quarantine with the same reason.
        let mut unreadable = clean(UNREADABLE + i, "t", bytes);
        flip_mid_append(&mut unreadable);
        let rejoined: Vec<u8> = unreadable
            .iter()
            .filter_map(|f| match f {
                Frame::Append { chunk, .. } => Some(chunk.as_slice()),
                _ => None,
            })
            .collect::<Vec<_>>()
            .concat();
        let last = unreadable.len() - 1;
        unreadable[last] = Frame::Seal {
            session: UNREADABLE + i,
            total_len: rejoined.len() as u64,
            checksum: fnv1a(&rejoined),
        };

        // Mid-stream client cancellation: speculative streaming state
        // must be discarded, never judged.
        let mut aborted = clean(ABORTED + i, "t", bytes);
        aborted.pop(); // drop the Seal
        aborted.push(Frame::Abort {
            session: ABORTED + i,
            reason: "client gave up".into(),
        });

        for (base, frames) in [
            (0, clean(i, "t", bytes)),
            (CORRUPT, corrupt),
            (UNREADABLE, unreadable),
            (ABORTED, aborted),
            (LIAR, clean(LIAR + i, "liar", bytes)),
        ] {
            let id = base + i;
            let (serr, s) = drive(&sh, id, &frames);
            let (berr, b) = drive(&bh, id, &frames);
            assert_eq!(
                s.state, b.state,
                "{name} session {id}: {:?} vs {:?}",
                s.reason, b.reason
            );
            assert_eq!(s.reason, b.reason, "{name} session {id}: reasons diverge");
            assert_eq!(serr, berr, "{name} session {id}: ingest errors diverge");
            assert_eq!(
                served_multiset(&sh, id),
                served_multiset(&bh, id),
                "{name} session {id}: streaming verdicts diverge from buffered"
            );
            match base {
                0 | LIAR => {
                    assert_eq!(s.state, SessionState::Judged, "{name}: {:?}", s.reason);
                    assert!(s.streamed, "{name} session {id}: fast path did not run");
                    assert!(!b.streamed);
                    assert!(s.seal_to_verdict_micros.is_some());
                    assert!(s.first_frame_micros.is_some());
                    if base == LIAR {
                        assert!(
                            !s.specialized && s.discharge_fallback,
                            "{name}: streamed lying-manifest session must fall back"
                        );
                        assert!(!b.specialized && b.discharge_fallback);
                    }
                }
                CORRUPT => {
                    assert_eq!(s.state, SessionState::Quarantined);
                    assert!(serr.expect("seal must fail").contains("quarantined"));
                    assert!(served_multiset(&sh, id).is_empty());
                }
                UNREADABLE => {
                    assert_eq!(s.state, SessionState::Quarantined);
                    assert!(serr.is_none(), "honest seal must be accepted");
                    let reason = s.reason.expect("quarantine reason");
                    assert!(
                        reason.starts_with("unreadable trace"),
                        "{name}: unexpected reason `{reason}`"
                    );
                }
                ABORTED => assert_eq!(s.state, SessionState::Aborted),
                _ => unreachable!(),
            }
        }
    }

    // The fast path really ran, and it held less resident than buffering:
    // the buffered daemon's high-water is at least one whole trace, the
    // streaming daemon's only the undecoded tail of an in-flight chunk.
    let sf = sh.fleet();
    let bf = bh.fleet();
    assert_eq!(sf.judged, bf.judged);
    assert_eq!(sf.quarantined, bf.quarantined);
    assert_eq!(sf.streamed_sessions, 2 * traces.len() as u64);
    assert_eq!(bf.streamed_sessions, 0);
    let max_len = traces.iter().map(|(_, b)| b.len() as u64).max().unwrap();
    assert!(
        bf.buffered_bytes_high_water >= max_len,
        "buffered daemon must hold a whole trace at seal"
    );
    assert!(
        sf.buffered_bytes_high_water < bf.buffered_bytes_high_water,
        "streaming daemon held {} resident bytes, buffered {}",
        sf.buffered_bytes_high_water,
        bf.buffered_bytes_high_water
    );

    streaming.shutdown();
    buffered.shutdown();
}

/// A trace the live executor cannot judge faithfully — an activation
/// still open at end of trace (the buffered fold silently drops it,
/// live order cannot) — exercises the streaming anomaly valve: the
/// speculative live outcome is discarded and the session is re-judged
/// from the retained records, so streaming and buffered daemons still
/// agree exactly.
#[test]
fn anomalous_live_trace_falls_back_and_still_matches_buffered() {
    use jinn::replay::{StreamDecoder, TraceRecord};

    // Build the anomaly from a *real* corpus trace so every method id
    // resolves: duplicate one of its own NativeEnter records (no
    // interned strings — the bytes are position-independent) in front
    // of the End record, then re-seal with the new count and checksum.
    let bytes = corpus_bytes("LocalRefDangling");
    let mut dec = StreamDecoder::new();
    let mut boundaries = Vec::new(); // (record, end offset in `bytes`)
    for (i, b) in bytes.iter().enumerate() {
        dec.feed(std::slice::from_ref(b));
        while let Some(rec) = dec.next_record().expect("corpus trace decodes") {
            boundaries.push((rec, i + 1));
        }
    }
    let enter_at = boundaries
        .iter()
        .position(|(r, _)| matches!(r, TraceRecord::NativeEnter { .. }))
        .expect("corpus trace has a native activation");
    assert!(enter_at > 0, "a setup record precedes the first activation");
    let record = bytes[boundaries[enter_at - 1].1..boundaries[enter_at].1].to_vec();

    // Everything after the last surfaced record is the End record: tag,
    // raw-record count (interns included, so read the declared varint
    // rather than counting surfaced records), 8-byte checksum.
    let end_pos = boundaries.last().expect("records decoded").1;
    assert_eq!(bytes[end_pos], 0xFF, "End tag follows the last record");
    let mut declared = 0u64;
    let mut shift = 0;
    for &b in &bytes[end_pos + 1..] {
        declared |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    let mut count = declared + 1;
    let mut spliced = bytes[..end_pos].to_vec();
    spliced.extend_from_slice(&record);
    let sum = fnv1a(&spliced); // the checksum covers everything before the tag
    spliced.push(0xFF); // End tag
    loop {
        let byte = (count & 0x7F) as u8;
        count >>= 7;
        if count == 0 {
            spliced.push(byte);
            break;
        }
        spliced.push(byte | 0x80);
    }
    spliced.extend_from_slice(&sum.to_le_bytes());
    let parsed = Trace::parse(&spliced).expect("splice is wire-valid");
    assert_eq!(
        parsed.events.len(),
        boundaries
            .iter()
            .filter(|(r, _)| {
                !matches!(
                    r,
                    TraceRecord::Meta { .. }
                        | TraceRecord::DefClass(_)
                        | TraceRecord::SpawnThread { .. }
                        | TraceRecord::Seed(_)
                )
            })
            .count()
            + 1,
        "splice adds exactly one event"
    );

    let streaming = Daemon::start(ServeConfig {
        streaming_sessions: 4096,
        ..ServeConfig::default()
    });
    let buffered = Daemon::start(ServeConfig {
        streaming_sessions: 0,
        ..ServeConfig::default()
    });
    let mut outcomes = Vec::new();
    for daemon in [&streaming, &buffered] {
        let handle = daemon.handle();
        for frame in decode_stream(&encode_ingest(9, "t", "jinn", &spliced, 64)).unwrap() {
            handle.apply_frame(&frame).expect("ingest");
        }
        let stats = handle.wait_session(9).expect("session exists");
        outcomes.push((
            stats.state,
            stats.reason.clone(),
            served_multiset(&handle, 9),
        ));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "anomalous trace: streaming diverges from buffered"
    );
    assert_eq!(
        outcomes[0].0,
        SessionState::Judged,
        "the fallback re-judge must still publish: {:?}",
        outcomes[0].1
    );
    assert!(
        streaming.handle().session_stats(9).expect("stats").streamed,
        "the session took the streaming path before falling back"
    );
    streaming.shutdown();
    buffered.shutdown();
}

#[test]
fn frame_stream_corruption_is_contained_to_its_connection() {
    // Stream-level corruption (bad frame checksum) — distinct from the
    // seal-declaration mismatch above — must poison only the sessions the
    // bad stream opened.
    let daemon = Daemon::start(ServeConfig::default());
    let handle = daemon.handle();
    let bytes = corpus_bytes("LocalRefDangling");

    // A healthy session first.
    let good = encode_ingest(1, "ok", "jinn", &bytes, 4096);
    for frame in decode_stream(&good).expect("decodes") {
        handle.apply_frame(&frame).expect("healthy ingest");
    }
    assert_eq!(handle.wait_session(1).unwrap().state, SessionState::Judged);

    // A corrupt frame stream: flip a byte inside a frame payload so the
    // frame checksum fails at decode time.
    let mut stream = encode_frame(&Frame::Open {
        session: 2,
        tenant: "bad".into(),
        config: "jinn".into(),
    });
    stream.extend_from_slice(&encode_frame(&Frame::Append {
        session: 2,
        chunk: bytes.clone(),
    }));
    let at = stream.len() - 64;
    stream[at] ^= 0x01;
    stream.extend_from_slice(&encode_frame(&Frame::Seal {
        session: 2,
        total_len: bytes.len() as u64,
        checksum: fnv1a(&bytes),
    }));

    // Drive it the way the socket does: open first, then hit the error.
    let mut decoder = jinn::replay::FrameDecoder::new();
    let preamble = jinn::replay::stream_preamble();
    let mut full = preamble.to_vec();
    full.extend_from_slice(&stream);
    decoder.feed(&full);
    let mut opened = Vec::new();
    let err = loop {
        match decoder.next_frame() {
            Ok(Some(frame)) => {
                if let Frame::Open { session, .. } = &frame {
                    opened.push(*session);
                }
                handle
                    .apply_frame(&frame)
                    .expect("pre-corruption frames apply");
            }
            Ok(None) => panic!("decoder should hit the corrupt frame"),
            Err(e) => break e,
        }
    };
    assert!(matches!(
        err,
        jinn::replay::FrameError::ChecksumMismatch { .. }
    ));
    for id in opened {
        handle.quarantine(id, "corrupt frame stream");
    }

    let s2 = handle.session_stats(2).expect("session 2");
    assert_eq!(s2.state, SessionState::Quarantined);
    // Session 1's history is untouched.
    let page = handle.query(&Query {
        session: Some(1),
        ..Query::default()
    });
    assert!(!page.items.is_empty(), "healthy session keeps its verdicts");
    daemon.shutdown();
}
