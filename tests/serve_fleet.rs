//! Fleet-scale daemon integration test: ≥64 concurrent sessions stream
//! golden-corpus traces through the frame codec into `jinn-serve`, and
//! every session's verdict multiset must match a single-process
//! `replay check` of the same trace — with corrupt-frame sessions
//! quarantined and the rest of the fleet unharmed.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use jinn::replay::format::fnv1a;
use jinn::replay::{
    case_studies, decode_stream, encode_frame, encode_ingest, microbench_programs, replay_trace,
    Frame, ReplayConfig, Trace,
};
use jinn::serve::{Daemon, Query, QueryItem, QueryKind, ServeConfig, SessionState};

fn corpus_bytes(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/corpus/{name}.jtrace", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn corpus_names() -> Vec<String> {
    microbench_programs()
        .iter()
        .chain(case_studies().iter())
        .map(|p| p.name.clone())
        .collect()
}

/// The verdict multiset of one local replay: (machine, error_state,
/// function) → count.
fn local_multiset(bytes: &[u8], config: &ReplayConfig) -> BTreeMap<(String, String, String), u64> {
    let trace = Trace::parse(bytes).expect("corpus trace parses");
    let outcome = replay_trace(&trace, config).expect("local replay succeeds");
    let mut set = BTreeMap::new();
    for v in &outcome.violations {
        *set.entry((
            v.machine.to_string(),
            v.error_state.to_string(),
            v.function.clone(),
        ))
        .or_insert(0u64) += 1;
    }
    set
}

/// The daemon's verdict multiset for one session, via the query API
/// (paginated to exercise the cursor).
fn served_multiset(
    handle: &jinn::serve::DaemonHandle,
    session: u64,
) -> BTreeMap<(String, String, String), u64> {
    let mut set = BTreeMap::new();
    let mut cursor = None;
    loop {
        let page = handle.query(&Query {
            kind: QueryKind::Verdicts,
            session: Some(session),
            cursor,
            limit: 3, // tiny page size: force pagination
            ..Query::default()
        });
        for item in &page.items {
            let QueryItem::Verdict(v) = item else {
                panic!("verdict query returned a non-verdict row")
            };
            *set.entry((v.machine.clone(), v.error_state.clone(), v.function.clone()))
                .or_insert(0u64) += 1;
        }
        match page.next_cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    set
}

#[test]
fn fleet_of_64_sessions_matches_single_process_replay() {
    const SESSIONS: u64 = 64;
    const CORRUPT: &[u64] = &[11, 37]; // two poisoned sessions in the fleet

    let names = corpus_names();
    let traces: Arc<Vec<(String, Vec<u8>)>> =
        Arc::new(names.iter().map(|n| (n.clone(), corpus_bytes(n))).collect());

    let daemon = Daemon::start(ServeConfig {
        workers: 4,
        retention_bytes: 64 * 1024 * 1024, // plenty: no purge in this test
        max_events_per_session: 128,
        ..ServeConfig::default()
    });
    let handle = daemon.handle();

    // 64 client threads, each streaming one corpus trace (round-robin)
    // through the real frame codec into the in-process handle.
    let mut clients = Vec::new();
    for session in 0..SESSIONS {
        let handle = handle.clone();
        let traces = Arc::clone(&traces);
        clients.push(thread::spawn(move || {
            let (_, bytes) = &traces[session as usize % traces.len()];
            let corrupt = CORRUPT.contains(&session);
            let tenant = format!("tenant-{}", session % 4);
            let stream = encode_ingest(session, &tenant, "jinn", bytes, 1024);
            let mut frames = decode_stream(&stream).expect("self-encoded stream decodes");
            if corrupt {
                // Flip a byte mid-trace: the Seal declaration no longer
                // matches the reassembled bytes, so seal must quarantine.
                let mid = frames.len() / 2;
                if let Frame::Append { session, chunk } = &frames[mid] {
                    let mut bad = chunk.clone();
                    let at = bad.len() / 2;
                    bad[at] ^= 0x40;
                    frames[mid] = Frame::Append {
                        session: *session,
                        chunk: bad,
                    };
                } else {
                    panic!("expected an Append frame mid-stream");
                }
            }
            let mut seal_err = None;
            for frame in &frames {
                if let Err(e) = handle.apply_frame(frame) {
                    seal_err = Some(e.to_string());
                    break;
                }
            }
            let stats = handle.wait_session(session).expect("session exists");
            (session, corrupt, seal_err, stats)
        }));
    }

    for client in clients {
        let (session, corrupt, seal_err, stats) = client.join().expect("client thread");
        if corrupt {
            assert_eq!(
                stats.state,
                SessionState::Quarantined,
                "session {session}: corrupt ingest must quarantine"
            );
            let err = seal_err.unwrap_or_else(|| panic!("session {session}: seal should fail"));
            assert!(
                err.contains("quarantined"),
                "session {session}: unexpected error `{err}`"
            );
        } else {
            assert_eq!(
                stats.state,
                SessionState::Judged,
                "session {session}: {:?}",
                stats.reason
            );
            assert!(
                seal_err.is_none(),
                "session {session}: clean ingest errored"
            );
        }
    }

    // Every healthy session's verdict multiset equals the single-process
    // replay of its trace under the same checker stack.
    let jinn = ReplayConfig::parse("jinn").unwrap();
    let mut local_cache: BTreeMap<usize, BTreeMap<(String, String, String), u64>> = BTreeMap::new();
    for session in 0..SESSIONS {
        if CORRUPT.contains(&session) {
            assert!(
                served_multiset(&handle, session).is_empty(),
                "session {session}: quarantined session must hold no verdicts"
            );
            continue;
        }
        let idx = session as usize % traces.len();
        let local = local_cache
            .entry(idx)
            .or_insert_with(|| local_multiset(&traces[idx].1, &jinn))
            .clone();
        let served = served_multiset(&handle, session);
        assert_eq!(
            served, local,
            "session {session} ({}): daemon verdicts diverge from replay check",
            traces[idx].0
        );
    }

    // Fleet accounting: the poison stayed contained.
    let fleet = handle.fleet();
    assert_eq!(fleet.opened, SESSIONS);
    assert_eq!(fleet.quarantined, CORRUPT.len() as u64);
    assert_eq!(fleet.judged, SESSIONS - CORRUPT.len() as u64);
    assert_eq!(fleet.live, 0);

    // Satellite 2: recorder policy counters surface in per-session stats.
    for session in 0..SESSIONS {
        if CORRUPT.contains(&session) {
            continue;
        }
        let stats = handle.session_stats(session).expect("stats");
        let json = stats.to_json();
        assert!(
            json.contains("\"obs\"") && json.contains("\"policy_epoch\""),
            "session {session}: judged session must expose obs counters, got {json}"
        );
    }

    daemon.shutdown();
}

/// Tentpole equivalence pin: a daemon serving manifested tenants from
/// specialized (discharged) pools must produce verdict multisets
/// identical to a plain full-pool daemon, across the whole corpus —
/// both for an honest manifest (every session specialized) and for a
/// deliberately lying one (every session falls back, is flagged, and
/// loses no verdicts).
#[test]
fn specialized_pool_daemon_matches_full_pool_daemon_across_corpus() {
    let names = corpus_names();
    assert!(names.len() >= 20, "corpus spans at least 20 traces");
    let traces: Vec<(String, Vec<u8>)> =
        names.iter().map(|n| (n.clone(), corpus_bytes(n))).collect();

    let full = Daemon::start(ServeConfig::default());
    let spec = Daemon::start(ServeConfig::default());
    let full_handle = full.handle();
    let spec_handle = spec.handle();

    // The honest manifest: the union of every corpus trace's own
    // call-site set, so every session is admitted to the specialized
    // pool. The lying manifest claims a workload that calls almost
    // nothing — every real trace must fall back.
    let mut union = std::collections::BTreeSet::new();
    for (_, bytes) in &traces {
        union.extend(
            Trace::parse(bytes)
                .expect("corpus trace")
                .called_functions(),
        );
    }
    let honest: Vec<String> = union.into_iter().collect();
    let summary = spec_handle
        .declare_manifest("honest", &honest)
        .expect("declare honest manifest");
    assert!(summary.discharged > 0, "discharge pass elides something");
    spec_handle
        .declare_manifest("liar", &["IsSameObject".to_string()])
        .expect("declare lying manifest");

    let liar_base = 1000u64;
    for (i, (_, bytes)) in traces.iter().enumerate() {
        let i = i as u64;
        for frame in decode_stream(&encode_ingest(i, "plain", "jinn", bytes, 4096)).unwrap() {
            full_handle.apply_frame(&frame).expect("full ingest");
        }
        for frame in decode_stream(&encode_ingest(i, "honest", "jinn", bytes, 4096)).unwrap() {
            spec_handle.apply_frame(&frame).expect("honest ingest");
        }
        let stream = encode_ingest(liar_base + i, "liar", "jinn", bytes, 4096);
        for frame in decode_stream(&stream).unwrap() {
            spec_handle.apply_frame(&frame).expect("liar ingest");
        }
    }
    full_handle.wait_idle();
    spec_handle.wait_idle();

    for (i, (name, _)) in traces.iter().enumerate() {
        let i = i as u64;
        let baseline = served_multiset(&full_handle, i);
        let honest_set = served_multiset(&spec_handle, i);
        let liar_set = served_multiset(&spec_handle, liar_base + i);
        assert_eq!(
            honest_set, baseline,
            "{name}: specialized-pool verdicts diverge from the full pool"
        );
        assert_eq!(
            liar_set, baseline,
            "{name}: fallback re-judging lost verdicts"
        );

        let hs = spec_handle.session_stats(i).expect("honest stats");
        assert_eq!(hs.state, SessionState::Judged, "{name}: {:?}", hs.reason);
        assert!(hs.specialized, "{name}: honest session not specialized");
        assert!(!hs.discharge_fallback);
        let ls = spec_handle
            .session_stats(liar_base + i)
            .expect("liar stats");
        assert!(
            !ls.specialized && ls.discharge_fallback,
            "{name}: lying manifest must be flagged, not served specialized"
        );
    }

    let fleet = spec_handle.fleet();
    assert_eq!(fleet.specialized_sessions, traces.len() as u64);
    assert_eq!(fleet.fallback_sessions, traces.len() as u64);
    assert_eq!(full_handle.fleet().specialized_sessions, 0);

    spec.shutdown();
    full.shutdown();
}

/// With `learn_after_sessions` set, a tenant that never declares a
/// manifest earns one from the union of its first K sessions — and a
/// later out-of-manifest trace falls back once, widens the learned
/// manifest, and is served specialized from then on.
#[test]
fn undeclared_tenants_learn_a_manifest_and_widen_on_fallback() {
    let daemon = Daemon::start(ServeConfig {
        learn_after_sessions: 2,
        ..ServeConfig::default()
    });
    let handle = daemon.handle();
    let narrow = corpus_bytes("LocalRefDangling");
    let wider = corpus_bytes("MonitorLeak");
    assert!(
        !Trace::parse(&wider)
            .unwrap()
            .called_functions()
            .is_subset(&Trace::parse(&narrow).unwrap().called_functions()),
        "test needs a trace outside the learned set"
    );

    let ingest = |id: u64, bytes: &[u8]| {
        for frame in decode_stream(&encode_ingest(id, "learner", "jinn", bytes, 4096)).unwrap() {
            handle.apply_frame(&frame).expect("ingest");
        }
        handle.wait_session(id).expect("session exists")
    };

    // Sessions 1 and 2 fill the learning window: neither is specialized.
    assert!(!ingest(1, &narrow).specialized);
    assert!(!ingest(2, &narrow).specialized);
    // Session 3 matches the learned union and is specialized.
    let s3 = ingest(3, &narrow);
    assert!(s3.specialized && !s3.discharge_fallback);
    // Session 4 calls outside it: flagged fallback, verdicts intact...
    let s4 = ingest(4, &wider);
    assert!(!s4.specialized && s4.discharge_fallback);
    let local = local_multiset(&wider, &ReplayConfig::parse("jinn").unwrap());
    assert_eq!(served_multiset(&handle, 4), local, "fallback lost verdicts");
    // ...and the learned manifest widened, so session 5 is specialized.
    let s5 = ingest(5, &wider);
    assert!(s5.specialized && !s5.discharge_fallback);
    assert_eq!(served_multiset(&handle, 5), local);

    daemon.shutdown();
}

#[test]
fn frame_stream_corruption_is_contained_to_its_connection() {
    // Stream-level corruption (bad frame checksum) — distinct from the
    // seal-declaration mismatch above — must poison only the sessions the
    // bad stream opened.
    let daemon = Daemon::start(ServeConfig::default());
    let handle = daemon.handle();
    let bytes = corpus_bytes("LocalRefDangling");

    // A healthy session first.
    let good = encode_ingest(1, "ok", "jinn", &bytes, 4096);
    for frame in decode_stream(&good).expect("decodes") {
        handle.apply_frame(&frame).expect("healthy ingest");
    }
    assert_eq!(handle.wait_session(1).unwrap().state, SessionState::Judged);

    // A corrupt frame stream: flip a byte inside a frame payload so the
    // frame checksum fails at decode time.
    let mut stream = encode_frame(&Frame::Open {
        session: 2,
        tenant: "bad".into(),
        config: "jinn".into(),
    });
    stream.extend_from_slice(&encode_frame(&Frame::Append {
        session: 2,
        chunk: bytes.clone(),
    }));
    let at = stream.len() - 64;
    stream[at] ^= 0x01;
    stream.extend_from_slice(&encode_frame(&Frame::Seal {
        session: 2,
        total_len: bytes.len() as u64,
        checksum: fnv1a(&bytes),
    }));

    // Drive it the way the socket does: open first, then hit the error.
    let mut decoder = jinn::replay::FrameDecoder::new();
    let preamble = jinn::replay::stream_preamble();
    let mut full = preamble.to_vec();
    full.extend_from_slice(&stream);
    decoder.feed(&full);
    let mut opened = Vec::new();
    let err = loop {
        match decoder.next_frame() {
            Ok(Some(frame)) => {
                if let Frame::Open { session, .. } = &frame {
                    opened.push(*session);
                }
                handle
                    .apply_frame(&frame)
                    .expect("pre-corruption frames apply");
            }
            Ok(None) => panic!("decoder should hit the corrupt frame"),
            Err(e) => break e,
        }
    };
    assert!(matches!(
        err,
        jinn::replay::FrameError::ChecksumMismatch { .. }
    ));
    for id in opened {
        handle.quarantine(id, "corrupt frame stream");
    }

    let s2 = handle.session_stats(2).expect("session 2");
    assert_eq!(s2.state, SessionState::Quarantined);
    // Session 1's history is untouched.
    let page = handle.query(&Query {
        session: Some(1),
        ..Query::default()
    });
    assert!(!page.items.is_empty(), "healthy session keeps its verdicts");
    daemon.shutdown();
}
