//! Drives **every one of the 229 JNI functions** through the generic
//! interposition pipeline with plausible arguments, in a fresh session per
//! function, under full Jinn. The invariant: the simulation never panics —
//! every call completes with a value, a Java exception, a checker report,
//! or a modelled death.

use std::rc::Rc;

use jinn::jni::registry::{CallMode, Op, ParamKind};
use jinn::jni::{registry, typed, FuncId, JniArg, JniError, RunOutcome, Session, Vm};
use jinn::jvm::{JRef, JValue, MemberFlags, PrimType};

/// Everything a plausible call might need, prepared inside the native
/// frame so Jinn has seen every acquisition.
struct Fixture {
    object: JRef,
    class_mirror: JRef,
    string: JRef,
    throwable: JRef,
    reflected_method: JRef,
    reflected_field: JRef,
    direct_buffer: JRef,
    object_array: JRef,
    prim_arrays: Vec<(PrimType, JRef)>,
    method_id: jinn::jvm::MethodId,
    static_method_id: jinn::jvm::MethodId,
    field_id: jinn::jvm::FieldId,
    static_field_id: jinn::jvm::FieldId,
}

fn build_fixture(env: &mut jinn::jni::JniEnv<'_>) -> Result<Fixture, JniError> {
    typed::ensure_local_capacity(env, 4096)?;
    let clazz = typed::find_class(env, "surface/Subject")?;
    let object = typed::alloc_object(env, clazz)?;
    let string = typed::new_string_utf(env, "fixture")?;
    let throwable_class = typed::find_class(env, "java/lang/RuntimeException")?;
    let throwable = typed::alloc_object(env, throwable_class)?;
    let method_id = typed::get_method_id(env, clazz, "tick", "()I")?;
    let static_method_id = typed::get_static_method_id(env, clazz, "stat", "()I")?;
    let field_id = typed::get_field_id(env, clazz, "x", "I")?;
    let static_field_id = typed::get_static_field_id(env, clazz, "S", "I")?;
    let reflected_method = typed::to_reflected_method(env, clazz, method_id, false)?;
    let reflected_field = typed::to_reflected_field(env, clazz, field_id, false)?;
    let direct_buffer = typed::new_direct_byte_buffer(env, 0x1000, 64)?;
    let object_array = {
        let oc = typed::find_class(env, "java/lang/Object")?;
        typed::new_object_array(env, 2, oc, JRef::NULL)?
    };
    let mut prim_arrays = Vec::new();
    for ty in PrimType::ALL {
        let arr = match ty {
            PrimType::Boolean => typed::new_boolean_array(env, 4)?,
            PrimType::Byte => typed::new_byte_array(env, 4)?,
            PrimType::Char => typed::new_char_array(env, 4)?,
            PrimType::Short => typed::new_short_array(env, 4)?,
            PrimType::Int => typed::new_int_array(env, 4)?,
            PrimType::Long => typed::new_long_array(env, 4)?,
            PrimType::Float => typed::new_float_array(env, 4)?,
            PrimType::Double => typed::new_double_array(env, 4)?,
        };
        prim_arrays.push((ty, arr));
    }
    Ok(Fixture {
        object,
        class_mirror: clazz,
        string,
        throwable,
        reflected_method,
        reflected_field,
        direct_buffer,
        object_array,
        prim_arrays,
        method_id,
        static_method_id,
        field_id,
        static_field_id,
    })
}

fn ref_for_fixed(fix: &Fixture, fixed: &[&str], op: &Op) -> JRef {
    if let Some(first) = fixed.first() {
        match *first {
            "java/lang/Class" => fix.class_mirror,
            "java/lang/String" => fix.string,
            "java/lang/Throwable" => fix.throwable,
            "java/lang/reflect/Method" => fix.reflected_method,
            "java/lang/reflect/Field" => fix.reflected_field,
            "java/nio/DirectByteBuffer" => fix.direct_buffer,
            "[*" | "[prim" => fix.prim_arrays[4].1, // int[]
            "[obj" => fix.object_array,
            desc if desc.starts_with('[') => {
                let ty = PrimType::from_descriptor_char(desc.chars().nth(1).unwrap_or('I'))
                    .unwrap_or(PrimType::Int);
                fix.prim_arrays
                    .iter()
                    .find(|(t, _)| *t == ty)
                    .expect("all types")
                    .1
            }
            _ => fix.object,
        }
    } else {
        // Unconstrained reference; several ops still want specific kinds.
        match op {
            Op::Throw => fix.throwable,
            _ => fix.object,
        }
    }
}

fn args_for(fix: &Fixture, func: FuncId) -> Vec<JniArg> {
    let spec = func.spec();
    let mut names = match spec.op {
        Op::FindClass | Op::DefineClass => vec!["surface/Fresh"],
        Op::GetMethodId { stat: false } => vec!["", "tick", "()I"],
        Op::GetMethodId { stat: true } => vec!["", "stat", "()I"],
        Op::GetFieldId { stat: false } => vec!["", "x", "I"],
        Op::GetFieldId { stat: true } => vec!["", "S", "I"],
        _ => vec!["payload"],
    }
    .into_iter();
    spec.params
        .iter()
        .map(|p| match &p.kind {
            ParamKind::Ref => JniArg::Ref(ref_for_fixed(fix, p.fixed_types, &spec.op)),
            ParamKind::MethodId => match spec.op {
                Op::Call {
                    mode: CallMode::Static,
                    ..
                } => JniArg::Method(fix.static_method_id),
                _ => JniArg::Method(fix.method_id),
            },
            ParamKind::FieldId => match spec.op {
                Op::GetField { stat: true, .. } | Op::SetField { stat: true, .. } => {
                    JniArg::Field(fix.static_field_id)
                }
                _ => JniArg::Field(fix.field_id),
            },
            ParamKind::Prim(ty) => JniArg::Val(JValue::default_of(*ty)),
            ParamKind::Size => JniArg::Size(1),
            ParamKind::Mode => JniArg::Size(0),
            ParamKind::Name => JniArg::Name(names.next().unwrap_or("payload").to_string()),
            ParamKind::Buffer => match spec.op {
                Op::DefineClass => JniArg::Bytes(vec![0xCA, 0xFE]),
                Op::NewString => JniArg::Chars(vec![104, 105]),
                Op::SetArrayRegion(ty) => JniArg::Prims(jinn::jvm::PrimArray::zeroed(ty, 1)),
                // Release* functions get no pin: the raw layer treats the
                // missing pointer as a no-op release.
                _ => JniArg::Opaque,
            },
            ParamKind::Args => JniArg::Args(Vec::new()),
            ParamKind::IsCopyOut | ParamKind::VmOut => JniArg::Opaque,
        })
        .collect()
}

/// Value arguments for `Set<T>Field`: the default prim matches the `I`
/// fixture fields only for Int; for the other types the raw layer's
/// type-confusion skip path is itself worth exercising.
#[test]
fn every_jni_function_is_invocable_without_panicking() {
    let total = registry().len();
    assert_eq!(total, 229);
    let mut invoked = 0;
    for idx in 0..total {
        let func = FuncId(idx as u16);
        let mut vm = Vm::permissive();
        let tick = vm.add_managed_code(Rc::new(|_e, _a| Ok(JValue::Int(1))));
        let stat = vm.add_managed_code(Rc::new(|_e, _a| Ok(JValue::Int(2))));
        vm.jvm_mut()
            .registry_mut()
            .define("surface/Subject")
            .field("x", "I", MemberFlags::public())
            .field("S", "I", MemberFlags::public_static())
            .method(
                "tick",
                "()I",
                MemberFlags::public(),
                jinn::jvm::MethodBody::Managed(tick),
            )
            .method(
                "stat",
                "()I",
                MemberFlags::public_static(),
                jinn::jvm::MethodBody::Managed(stat),
            )
            .build()
            .unwrap();
        let (_c, entry) = vm.define_native_class(
            "surface/Driver",
            "drive",
            "()V",
            true,
            Rc::new(move |env, _| {
                let fix = build_fixture(env)?;
                let args = args_for(&fix, func);
                match env.invoke(func, args) {
                    Ok(_) => {}
                    Err(JniError::Exception) => {
                        typed::exception_clear(env)?;
                    }
                    Err(e) => return Err(e),
                }
                Ok(JValue::Void)
            }),
        );
        let thread = vm.jvm().main_thread();
        let mut session = Session::new(vm);
        jinn::core::install(&mut session);
        // The outcome may be anything *modelled*; the test is that we get
        // an outcome at all, for every single function.
        let outcome = session.run_native(thread, entry, &[]);
        match outcome {
            RunOutcome::Completed(_)
            | RunOutcome::UncaughtException(_)
            | RunOutcome::Died(_)
            | RunOutcome::CheckerException(_) => invoked += 1,
        }
    }
    assert_eq!(invoked, total, "all 229 functions drove to an outcome");
}

/// The same sweep without Jinn, on both vendor models: raw dispatch for
/// all 229 functions is total under every vendor policy.
#[test]
fn every_jni_function_is_total_under_both_vendors() {
    for vendor in jinn_vendors_list() {
        for idx in 0..registry().len() {
            let func = FuncId(idx as u16);
            let mut vm = vendor();
            let tick = vm.add_managed_code(Rc::new(|_e, _a| Ok(JValue::Int(1))));
            vm.jvm_mut()
                .registry_mut()
                .define("surface/Subject")
                .field("x", "I", MemberFlags::public())
                .field("S", "I", MemberFlags::public_static())
                .method(
                    "tick",
                    "()I",
                    MemberFlags::public(),
                    jinn::jvm::MethodBody::Managed(tick),
                )
                .method(
                    "stat",
                    "()I",
                    MemberFlags::public_static(),
                    jinn::jvm::MethodBody::Managed(tick),
                )
                .build()
                .unwrap();
            let (_c, entry) = vm.define_native_class(
                "surface/Driver",
                "drive",
                "()V",
                true,
                Rc::new(move |env, _| {
                    let fix = build_fixture(env)?;
                    let args = args_for(&fix, func);
                    let _ = env.invoke(func, args);
                    Ok(JValue::Void)
                }),
            );
            let thread = vm.jvm().main_thread();
            let mut session = Session::new(vm);
            let _ = session.run_native(thread, entry, &[]);
        }
    }
}

fn jinn_vendors_list() -> [fn() -> Vm; 2] {
    [|| jinn::vendors::hotspot_vm(), || jinn::vendors::j9_vm()]
}
