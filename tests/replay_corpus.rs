//! Golden-corpus integration test: every checked-in `.jtrace` under
//! `tests/corpus/` replays to the same Table 1 verdicts as a live run,
//! under Jinn and both vendors' `-Xcheck:jni` models.
//!
//! Regenerate the corpus with
//! `cargo run --release -p jinn-bench --bin replay -- record --verify`.

use jinn::microbench::{run_scenario, scenarios, Behavior, Config};
use jinn::replay::{
    case_studies, check_version, diff_trace, microbench_programs, replay_trace, ReplayConfig,
    Trace, FORMAT_VERSION,
};
use jinn::vendors::Vendor;

fn corpus_bytes(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/corpus/{name}.jtrace", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{path}: {e} — regenerate with \
             `cargo run -p jinn-bench --bin replay -- record --verify`"
        )
    })
}

#[test]
fn corpus_is_complete_and_validates() {
    for p in microbench_programs().iter().chain(case_studies().iter()) {
        let bytes = corpus_bytes(&p.name);
        assert_eq!(
            check_version(&bytes).unwrap(),
            FORMAT_VERSION,
            "{}: corpus format drifted",
            p.name
        );
        let trace = Trace::parse(&bytes).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert_eq!(trace.program(), p.name);
        assert!(!trace.events.is_empty(), "{}: empty event stream", p.name);
    }
}

/// The heart of the satellite: for all sixteen microbenchmarks and all
/// five standard configurations, the verdict replayed from the corpus
/// trace equals the verdict of a live run — cell for cell, the whole
/// Table 1 matrix from recordings alone.
#[test]
fn replayed_matrix_matches_live_matrix() {
    let pairs = [
        (
            Config::Default(Vendor::HotSpot),
            ReplayConfig::Default(Vendor::HotSpot),
        ),
        (
            Config::Default(Vendor::J9),
            ReplayConfig::Default(Vendor::J9),
        ),
        (
            Config::Xcheck(Vendor::HotSpot),
            ReplayConfig::Xcheck(Vendor::HotSpot),
        ),
        (Config::Xcheck(Vendor::J9), ReplayConfig::Xcheck(Vendor::J9)),
        (
            Config::Jinn(Vendor::HotSpot),
            ReplayConfig::Jinn(Vendor::HotSpot),
        ),
    ];
    for scenario in scenarios() {
        let trace = Trace::parse(&corpus_bytes(scenario.name)).expect("corpus parses");
        for (live_config, replay_config) in &pairs {
            let live = run_scenario(&scenario, *live_config);
            let replayed = replay_trace(&trace, replay_config).expect("corpus replays");
            assert_eq!(
                replayed.behavior,
                live.behavior,
                "{} under {}: live {:?} vs replayed {:?}\n  live: {:?}\n  replayed: {:?}",
                scenario.name,
                live_config.label(),
                live.behavior,
                replayed.behavior,
                live.message,
                replayed.message
            );
        }
    }
}

/// The Section 6.4 case studies: Jinn diagnoses each recorded bug from
/// the trace alone, while the default HotSpot stack lets it pass or die
/// undiagnosed — never with a Jinn diagnosis.
#[test]
fn case_study_traces_are_diagnosed_by_jinn_only() {
    for p in case_studies() {
        let trace = Trace::parse(&corpus_bytes(&p.name)).expect("corpus parses");
        let jinn = replay_trace(&trace, &ReplayConfig::Jinn(Vendor::HotSpot)).unwrap();
        assert_eq!(
            jinn.behavior,
            Behavior::JinnException,
            "{}: Jinn must diagnose the recorded bug: {jinn:?}",
            p.name
        );
        let hs = replay_trace(&trace, &ReplayConfig::Default(Vendor::HotSpot)).unwrap();
        assert_ne!(
            hs.behavior,
            Behavior::JinnException,
            "{}: a bare vendor cannot produce a Jinn diagnosis",
            p.name
        );
    }
}

/// Figure 9 from the corpus file: the pending-exception trace makes
/// HotSpot `-Xcheck` warn, J9 `-Xcheck` abort, and Jinn throw — a
/// three-way disagreement reproduced without re-running the program.
#[test]
fn exception_state_corpus_shows_figure9_disagreement() {
    let trace = Trace::parse(&corpus_bytes("ExceptionState")).expect("corpus parses");
    let report = diff_trace(
        &trace,
        &[
            ReplayConfig::Xcheck(Vendor::HotSpot),
            ReplayConfig::Xcheck(Vendor::J9),
            ReplayConfig::Jinn(Vendor::HotSpot),
        ],
    )
    .unwrap();
    assert_eq!(report.outcomes[0].behavior, Behavior::Warning);
    assert_eq!(report.outcomes[1].behavior, Behavior::Error);
    assert_eq!(report.outcomes[2].behavior, Behavior::JinnException);
    assert_eq!(report.distinct_behaviors(), 3, "{}", report.render());
}
