//! Concurrent checking semantics: sharding per entity-owning thread must
//! not change verdicts. Disjoint-entity threads produce the same verdict
//! multiset as a serialized run, and a cross-thread (foreign `JNIEnv`)
//! touch — the paper's `EnvMismatch` pitfall — is reported exactly once,
//! without deadlock and without silently rehoming the entity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use jinn_core::{install_prebuilt, Jinn};
use jinn_fsm::{
    ConstraintClass, Direction, EntityKind, MachineSpec, ShardedStateStore, StateStore,
};
use jinn_vendors::Vendor;
use minijni::{RunOutcome, Session};

fn machine() -> MachineSpec {
    MachineSpec::builder("local-reference", ConstraintClass::Resource)
        .entity(EntityKind::Reference)
        .state("BeforeAcquire")
        .state("Acquired")
        .state("Released")
        .error_state("Error:Dangling", "use after release in {function}")
        .transition("Acquire", "BeforeAcquire", "Acquired", |t| {
            t.on(Direction::CallJavaToC, "native call")
        })
        .transition("Release", "Acquired", "Released", |t| {
            t.on(Direction::ReturnCToJava, "native return")
        })
        .transition("UseAfterRelease", "Released", "Error:Dangling", |t| {
            t.on(Direction::CallCToJava, "JNI call")
        })
        .build()
        .unwrap()
}

/// The per-entity script each thread runs: clean lifecycle for even
/// entities, use-after-release for odd ones.
fn script(entity: u64) -> &'static [&'static str] {
    if entity.is_multiple_of(2) {
        &["Acquire", "Release"]
    } else {
        &["Acquire", "Release", "UseAfterRelease"]
    }
}

/// Disjoint-entity threads against one sharded store must yield exactly
/// the verdict multiset of the same work applied serially to a plain
/// `StateStore`.
#[test]
fn disjoint_threads_match_serialized_verdict_multiset() {
    const THREADS: u16 = 4;
    const ENTITIES_PER_THREAD: u64 = 64;
    let keys = |t: u16| (0..ENTITIES_PER_THREAD).map(move |i| (u64::from(t) << 32) | i);

    // Serialized reference run.
    let mut serial: StateStore<u64> = StateStore::new(machine());
    let mut expected: Vec<(u64, String)> = Vec::new();
    for t in 0..THREADS {
        for key in keys(t) {
            for step in script(key) {
                if let Some(err) = serial.apply_named(&key, step).error() {
                    expected.push((key, err.state.clone()));
                }
            }
        }
    }

    // Concurrent sharded run.
    let store: Arc<ShardedStateStore<u64>> =
        Arc::new(ShardedStateStore::with_shards(machine(), THREADS as usize));
    let verdicts: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let cross = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let verdicts = Arc::clone(&verdicts);
            let cross = Arc::clone(&cross);
            scope.spawn(move || {
                for key in keys(t) {
                    for step in script(key) {
                        let out = store.apply_named(t, &key, step);
                        if out.cross_thread.is_some() {
                            cross.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(err) = out.outcome.error() {
                            verdicts
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push((key, err.state.clone()));
                        }
                    }
                }
            });
        }
    });

    expected.sort_unstable();
    let mut got = verdicts.lock().unwrap_or_else(|e| e.into_inner()).clone();
    got.sort_unstable();
    assert_eq!(got, expected, "verdict multiset must match serialized run");
    assert!(!got.is_empty(), "odd entities must error");
    assert_eq!(cross.load(Ordering::Relaxed), 0, "keys are disjoint");
    assert_eq!(store.len() as u64, u64::from(THREADS) * ENTITIES_PER_THREAD);

    // The leak sweep sees the same population, in sorted order.
    let dangling_id = store.machine().state_id("Error:Dangling").unwrap();
    assert_eq!(
        store.entities_in(dangling_id),
        serial.entities_in(dangling_id)
    );
}

/// A foreign-thread touch is the violation itself: the store flags it
/// exactly once, still applies the transition on the entity's home shard
/// (no rehoming), and does not deadlock.
#[test]
fn cross_thread_use_is_reported_exactly_once() {
    const THREADS: u16 = 4;
    let store: Arc<ShardedStateStore<u64>> =
        Arc::new(ShardedStateStore::with_shards(machine(), THREADS as usize));
    const SHARED_KEY: u64 = 0xDEAD_BEEF;
    store.apply_named(0, &SHARED_KEY, "Acquire");

    let reports = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let reports = Arc::clone(&reports);
            scope.spawn(move || {
                // Every thread churns its own entities...
                for i in 0..128u64 {
                    let key = (u64::from(t) << 40) | i;
                    store.apply_named(t, &key, "Acquire");
                    store.apply_named(t, &key, "Release");
                    store.evict(&key);
                }
                // ...and thread 3 alone touches thread 0's entity once.
                if t == 3 {
                    let out = store.apply_named(t, &SHARED_KEY, "Release");
                    assert!(out.outcome.applied(), "transition still applies");
                    if let Some(cross) = out.cross_thread {
                        assert_eq!(cross.owner, 0);
                        assert_eq!(cross.user, 3);
                        reports.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        reports.load(Ordering::Relaxed),
        1,
        "EnvMismatch reported exactly once"
    );
    // The entity stayed home: the owner keeps seeing its state.
    let released = store.machine().state_id("Released").unwrap();
    assert_eq!(store.state_of(0, &SHARED_KEY), released);
}

/// End-to-end: two full `JniSession`s with their own `Jinn` checkers —
/// built on the driver thread, moved into the workers — run a real
/// workload concurrently with zero violations and live checking stats.
#[test]
fn two_sessions_on_two_threads_check_cleanly() {
    let checkers: Vec<Jinn> = (0..2).map(|_| Jinn::new()).collect();
    let results: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = checkers
            .into_iter()
            .enumerate()
            .map(|(t, jinn)| {
                scope.spawn(move || {
                    let mut vm = Vendor::HotSpot.vm();
                    let (entry, args) = jinn_workloads::build_workload(&mut vm, 7 + t as u64);
                    let thread = vm.jvm().main_thread();
                    let mut session = Session::new(vm);
                    let stats = install_prebuilt(&mut session, jinn);
                    for _ in 0..64 {
                        let outcome = session.run_native(thread, entry, &args);
                        assert!(matches!(outcome, RunOutcome::Completed(_)));
                    }
                    assert!(session.shutdown().is_empty(), "workload is leak-free");
                    (stats.checks_executed(), stats.violations())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no worker panic"))
            .collect()
    });
    for (checks, violations) in results {
        assert!(checks > 0, "checker actually ran");
        assert_eq!(violations, 0, "workload is bug-free");
    }
}
