//! Integration test pinning the full Table 1 matrix and the Section 6.3
//! coverage numbers — the repository's headline reproduction results.

use jinn::microbench::{coverage, run_all, run_scenario, scenarios, Behavior, Config};
use jinn::vendors::Vendor;

/// The full expected matrix: (name, HotSpot, J9, HS-Xcheck, J9-Xcheck).
/// Jinn is `exception` on every row by the companion test below.
const MATRIX: [(&str, Behavior, Behavior, Behavior, Behavior); 16] = {
    use Behavior::*;
    [
        ("EnvMismatch", Running, Crash, Error, Crash),
        ("ExceptionState", Running, Crash, Warning, Error),
        ("CriticalCall", Deadlock, Deadlock, Warning, Error),
        ("CriticalUnmatchedRelease", Running, Running, Running, Error),
        ("JclassConfusion", Crash, Crash, Error, Error),
        ("IdConfusion", Crash, Crash, Error, Error),
        ("FinalFieldWrite", Npe, Npe, Npe, Npe),
        ("NullArgument", Running, Crash, Running, Crash),
        ("PinLeak", Leak, Leak, Running, Warning),
        ("PinDoubleFree", Running, Running, Error, Running),
        ("MonitorLeak", Leak, Leak, Running, Running),
        ("GlobalLeak", Leak, Leak, Running, Running),
        ("GlobalDangling", Crash, Crash, Error, Crash),
        ("LocalOverflow", Leak, Leak, Running, Warning),
        ("LocalRefDangling", Crash, Crash, Error, Error),
        ("LocalDoubleFree", Crash, Crash, Error, Crash),
    ]
};

#[test]
fn the_full_table_1_matrix_is_stable() {
    for (name, hs, j9, hsx, j9x) in MATRIX {
        let s = |cfg| {
            let scenario = scenarios()
                .into_iter()
                .find(|s| s.name == name)
                .expect("scenario exists");
            run_scenario(&scenario, cfg).behavior
        };
        assert_eq!(s(Config::Default(Vendor::HotSpot)), hs, "{name} HotSpot");
        assert_eq!(s(Config::Default(Vendor::J9)), j9, "{name} J9");
        assert_eq!(
            s(Config::Xcheck(Vendor::HotSpot)),
            hsx,
            "{name} HotSpot -Xcheck"
        );
        assert_eq!(s(Config::Xcheck(Vendor::J9)), j9x, "{name} J9 -Xcheck");
    }
}

#[test]
fn jinn_throws_on_all_sixteen_on_both_vendors() {
    for vendor in Vendor::ALL {
        for (name, o) in run_all(Config::Jinn(vendor)) {
            assert_eq!(o.behavior, Behavior::JinnException, "{name} on {vendor}");
        }
    }
}

#[test]
fn section_6_3_headline_numbers() {
    assert_eq!(
        coverage(Config::Jinn(Vendor::HotSpot)),
        (16, 16),
        "Jinn 100%"
    );
    assert_eq!(
        coverage(Config::Jinn(Vendor::J9)),
        (16, 16),
        "Jinn 100% on J9 too"
    );
    assert_eq!(
        coverage(Config::Xcheck(Vendor::HotSpot)),
        (9, 16),
        "HotSpot 56%"
    );
    assert_eq!(coverage(Config::Xcheck(Vendor::J9)), (8, 16), "J9 50%");
    // Defaults detect nothing (crashes and silence are not diagnoses).
    assert_eq!(coverage(Config::Default(Vendor::HotSpot)).0, 0);
    assert_eq!(coverage(Config::Default(Vendor::J9)).0, 0);
}

#[test]
fn jinn_always_explains_itself() {
    for s in scenarios() {
        let o = run_scenario(&s, Config::Jinn(Vendor::HotSpot));
        let msg = o.message.unwrap_or_default();
        assert!(
            !msg.is_empty(),
            "{}: Jinn reported without a diagnosis",
            s.name
        );
        assert!(
            msg.len() > 20,
            "{}: diagnosis too terse to act on: {msg}",
            s.name
        );
    }
}
