//! Soak test: a long, GC-heavy, correct workload under full Jinn — tens of
//! thousands of language transitions with the collector running at every
//! few safepoints — must finish clean, with zero reports and a consistent
//! VM.

use jinn::jni::{RunOutcome, Session};
use jinn::vendors::Vendor;
use jinn::workloads::{build_workload, Treatment};

#[test]
fn long_workload_under_jinn_is_clean_and_gc_heavy() {
    let mut vm = Vendor::HotSpot.vm();
    vm.jvm_mut().set_auto_gc_period(Some(64)); // very aggressive GC
    let (entry, args) = build_workload(&mut vm, 0x50AC);
    let thread = vm.jvm().main_thread();
    let mut session = Session::new(vm);
    let stats = jinn::core::install(&mut session);

    while session.vm().stats().total() < 40_000 {
        let outcome = session.run_native(thread, entry, &args);
        assert!(matches!(outcome, RunOutcome::Completed(_)), "{outcome:?}");
    }
    assert!(
        session.shutdown().is_empty(),
        "no leaks after 40k transitions"
    );

    let s = stats.snapshot();
    assert!(
        s.checks_executed > 50_000,
        "checks ran: {}",
        s.checks_executed
    );
    assert_eq!(s.violations, 0, "no false positives under soak");
    assert!(
        session.vm().jvm().heap().collections() > 100,
        "the collector really ran: {}",
        session.vm().jvm().heap().collections()
    );
    // The heap is bounded: the workload releases what it creates.
    assert!(
        session.vm().jvm().heap().len() < 2_000,
        "heap bounded: {}",
        session.vm().jvm().heap().len()
    );
}

#[test]
fn all_four_treatments_agree_on_workload_results() {
    // The checker must be observationally transparent on correct code:
    // the same seed produces the same holder-counter value under every
    // treatment.
    let mut results = Vec::new();
    for treatment in Treatment::ALL {
        let mut vm = Vendor::HotSpot.vm();
        let (entry, args) = build_workload(&mut vm, 0xD15E);
        let thread = vm.jvm().main_thread();
        let mut session = Session::new(vm);
        match treatment {
            Treatment::Baseline => {}
            Treatment::VendorCheck => session.attach(Vendor::HotSpot.xcheck()),
            Treatment::JinnInterposing => {
                session.attach(Box::new(jinn::core::Jinn::interpose_only()));
            }
            Treatment::JinnChecking => {
                jinn::core::install(&mut session);
            }
        }
        for _ in 0..50 {
            let outcome = session.run_native(thread, entry, &args);
            assert!(
                matches!(outcome, RunOutcome::Completed(_)),
                "{treatment}: {outcome:?}"
            );
        }
        // Read the holder's counter through the VM.
        let holder_ref = args[0].as_ref().unwrap();
        let oop = session
            .vm()
            .jvm()
            .resolve(thread, holder_ref)
            .unwrap()
            .unwrap();
        let class = session.vm().jvm().class_of(oop);
        let fid = session
            .vm()
            .jvm()
            .registry()
            .resolve_field(class, "counter", "I", false)
            .unwrap();
        let value = session.vm().jvm().get_instance_field(oop, fid);
        results.push((treatment.to_string(), value));
    }
    let first = results[0].1;
    for (name, v) in &results {
        assert_eq!(*v, first, "{name} diverged");
    }
}
